"""The ``symbolic-sweep`` suite: batch sweeps against per-point recompiles.

The symbolic plan layer (:mod:`repro.plan.symbolic`) exists so a batch
sweep costs one traced compile plus cheap specializations instead of one
full compile per point.  This suite measures that claim and guards its
preconditions:

- **measured** (wall-clock, excluded from the trajectory digest): the
  median time of a cold 7-point sweep (trace + 7 specializations), a warm
  sweep over the same traced set (7 specializations, zero compiles), and
  the per-point recompilation baseline (7 ``compile_graph`` calls).
- **guarded** (deterministic, digest-keyed and CI-gated): every sweep
  performs exactly ONE symbolic compile per (model, framework, GPU), the
  warm sweep performs ZERO, the symbolic path never calls the concrete
  compiler, and every specialized plan is bit-identical to the concrete
  compiler's output (:func:`repro.plan.symbolic.plan_difference`).

The sweep grids are chosen to sit inside one guard region (verified by
the gate, not assumed), so the one-compile guarantee is a property of the
suite's design rather than of a lucky trace hint.  Wall-clock numbers are
recorded under the ``measured`` field, which :meth:`BenchStore.append`
excludes from the record digest — reruns on unchanged code converge on
one trajectory record instead of appending a near-duplicate per run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import median

from repro.bench.store import BenchStore, environment_fingerprint
from repro.frameworks import get_framework
from repro.hardware.devices import QUADRO_P4000
from repro.models.registry import get_model
from repro.observability.tracer import trace_span
from repro.plan import compiler as plan_compiler
from repro.plan.symbolic import SymbolicPlanSet, plan_difference

SUITE_NAME = "symbolic-sweep"

#: Seven-point batch grids, one per architecture family, each chosen to
#: stay inside a single guard region of its model's symbolic trace.
SWEEP_CASES = (
    ("resnet-50", "mxnet", (4, 8, 12, 16, 20, 24, 28)),
    ("inception-v3", "tensorflow", (8, 12, 16, 20, 24, 28, 32)),
    ("nmt", "tensorflow", (4, 6, 8, 10, 12, 14, 16)),
    ("sockeye", "mxnet", (4, 6, 8, 10, 12, 14, 16)),
    ("transformer", "tensorflow", (128, 192, 256, 320, 384, 448, 512)),
)


@dataclass(frozen=True)
class SweepCaseResult:
    """One case's deterministic guards plus its wall-clock medians."""

    model: str
    framework: str
    batches: tuple
    #: Traced compiles during the cold sweep (the guard wants exactly 1).
    symbolic_compiles: int
    #: Traced compiles during the warm sweep (the guard wants exactly 0).
    warm_symbolic_compiles: int
    #: ``compile_graph`` calls observed on the symbolic path (wants 0).
    concrete_compiles_on_symbolic_path: int
    #: Every specialized plan bit-identical to the concrete compiler's.
    identical: bool
    cold_s: float
    warm_s: float
    concrete_s: float

    @property
    def name(self) -> str:
        return f"{self.model}/{self.framework}/{len(self.batches)}pt"

    @property
    def cold_speedup(self) -> float:
        return self.concrete_s / self.cold_s if self.cold_s > 0 else 0.0

    @property
    def warm_speedup(self) -> float:
        return self.concrete_s / self.warm_s if self.warm_s > 0 else 0.0

    @property
    def guards_ok(self) -> bool:
        return (
            self.symbolic_compiles == 1
            and self.warm_symbolic_compiles == 0
            and self.concrete_compiles_on_symbolic_path == 0
            and self.identical
        )

    def guard_doc(self) -> dict:
        """The digest-keyed (deterministic) half of the result."""
        return {
            "name": self.name,
            "model": self.model,
            "framework": self.framework,
            "batches": list(self.batches),
            "symbolic_compiles": self.symbolic_compiles,
            "warm_symbolic_compiles": self.warm_symbolic_compiles,
            "concrete_compiles_on_symbolic_path": (
                self.concrete_compiles_on_symbolic_path
            ),
            "identical": self.identical,
        }

    def measured_doc(self) -> dict:
        """The volatile (wall-clock) half of the result."""
        return {
            "cold_s": self.cold_s,
            "warm_s": self.warm_s,
            "concrete_s": self.concrete_s,
            "cold_speedup": self.cold_speedup,
            "warm_speedup": self.warm_speedup,
        }

    def format_row(self) -> str:
        status = "ok" if self.guards_ok else "GUARD-FAIL"
        return (
            f"{self.name:<32} compiles={self.symbolic_compiles} "
            f"warm={self.warm_symbolic_compiles} "
            f"cold x{self.cold_speedup:5.2f} warm x{self.warm_speedup:5.2f} "
            f"{status}"
        )


def _run_case(model: str, framework_key: str, batches, gpu, repeats: int):
    spec = get_model(model)
    framework = get_framework(framework_key)
    concrete_calls = []
    orig_compile_graph = plan_compiler.compile_graph

    def counting_compile_graph(*args, **kwargs):
        concrete_calls.append(1)
        return orig_compile_graph(*args, **kwargs)

    cold_times, warm_times, concrete_times = [], [], []
    symbolic_compiles = warm_compiles = 0
    for _ in range(max(1, int(repeats))):
        sset = SymbolicPlanSet(spec, framework, gpu)
        plan_compiler.compile_graph = counting_compile_graph
        try:
            start = time.perf_counter()
            for batch in batches:
                sset.specialize(batch)
            cold_times.append(time.perf_counter() - start)
            symbolic_compiles = sset.compile_count
            start = time.perf_counter()
            for batch in batches:
                sset.specialize(batch)
            warm_times.append(time.perf_counter() - start)
            warm_compiles = sset.compile_count - symbolic_compiles
        finally:
            plan_compiler.compile_graph = orig_compile_graph
        start = time.perf_counter()
        concrete = [
            plan_compiler.compile_graph(spec.build(batch), framework, gpu)
            for batch in batches
        ]
        concrete_times.append(time.perf_counter() - start)
    final_set = SymbolicPlanSet(spec, framework, gpu)
    identical = all(
        plan_difference(final_set.specialize(batch), plan) is None
        for batch, plan in zip(batches, concrete)
    )
    return SweepCaseResult(
        model=model,
        framework=framework_key,
        batches=tuple(batches),
        symbolic_compiles=symbolic_compiles,
        warm_symbolic_compiles=warm_compiles,
        concrete_compiles_on_symbolic_path=len(concrete_calls),
        identical=identical,
        cold_s=median(cold_times),
        warm_s=median(warm_times),
        concrete_s=median(concrete_times),
    )


def run_symbolic_sweep(repeats: int = 5, gpu=QUADRO_P4000, cases=SWEEP_CASES):
    """Run every sweep case; returns the :class:`SweepCaseResult` list."""
    results = []
    with trace_span(
        "bench.symbolic_sweep", cases=len(cases), repeats=repeats, gpu=gpu.name
    ):
        for model, framework_key, batches in cases:
            results.append(_run_case(model, framework_key, batches, gpu, repeats))
    return results


def gate_doc_for(results) -> dict:
    """The gate verdict: deterministic guards only — wall-clock speedups
    are recorded, never gated (they are machine-dependent)."""
    failures = [result.name for result in results if not result.guards_ok]
    return {"passed": not failures, "failures": sorted(failures)}


def build_sweep_record(results, repeats: int, gpu=QUADRO_P4000) -> dict:
    return {
        "suite": SUITE_NAME,
        "repeats": repeats,
        "environment": environment_fingerprint(gpu=gpu),
        "results": [result.guard_doc() for result in results],
        "measured": {result.name: result.measured_doc() for result in results},
        "gate": gate_doc_for(results),
    }


def run_and_record(store_dir: str, repeats: int = 5, gpu=QUADRO_P4000):
    """Run the suite and append one trajectory record; returns
    ``(results, gate_doc, path)``."""
    results = run_symbolic_sweep(repeats=repeats, gpu=gpu)
    store = BenchStore(store_dir)
    store.append(
        SUITE_NAME,
        build_sweep_record(results, repeats, gpu=gpu),
        volatile=("measured",),
    )
    return results, gate_doc_for(results), store.path(SUITE_NAME)
