"""Benchmark subjects: the things an A/B run measures.

A *subject* owns everything deterministic about one side of a comparison
— a compiled plan, or a distributed configuration — and exposes exactly
one operation: ``measure(stream)``, one noisy iteration time drawn under
one :class:`~repro.bench.noise.NoiseStream`.  All expensive work (graph
build, lowering, roofline timing) happens once in the constructor; the
per-sample path is the fast makespan recurrence from
:mod:`repro.plan.executor`.

``subject_for`` builds the standard subjects the CLI and suites use:
``baseline`` (the plan as compiled), a named plan transform
(``fused-rnn``, ``fp16-storage``), a full transform pipeline
(``pipeline:fused_rnn+fp16+offload:0.5`` — how the tune suite measures
autotuner winners), or ``slowdown:<pct>`` — a biased baseline used as
the harness's own negative control.
"""

from __future__ import annotations

from repro.plan.compiled import CompiledPlan
from repro.plan.executor import makespan_under_noise, plan_arrays
from repro.plan.transform import FusedRNNTransform, HalfPrecisionStorageTransform
from repro.training.session import TrainingSession


class Subject:
    """Base class: a label plus a ``measure(stream) -> seconds`` method."""

    def __init__(self, label: str):
        self.label = label

    def measure(self, stream) -> float:
        raise NotImplementedError

    def describe(self) -> dict:
        """Canonical-JSON-ready identity for the trajectory record."""
        return {"kind": type(self).__name__, "label": self.label}


class PlanSubject(Subject):
    """One compiled plan measured through the noisy dispatch/execute
    recurrence.  ``kernel_bias`` layers a deterministic slowdown on top of
    whatever bias the noise model itself carries (their product is what
    the executor sees) — the injected-regression probe."""

    def __init__(self, label: str, plan: CompiledPlan, kernel_bias: float = 1.0):
        super().__init__(label)
        if kernel_bias <= 0.0:
            raise ValueError("kernel_bias must be positive")
        self.plan = plan
        self.kernel_bias = kernel_bias
        self._durations, self._host_syncs = plan_arrays(plan.timings)
        if kernel_bias != 1.0:
            self._durations = [d * kernel_bias for d in self._durations]

    @property
    def noiseless_s(self) -> float:
        """The closed-form (noise-free) iteration time of this subject."""
        return self.plan.makespan_s * self.kernel_bias

    def measure(self, stream) -> float:
        return makespan_under_noise(
            self._durations, self._host_syncs, self.plan.framework, stream
        )

    def describe(self) -> dict:
        doc = super().describe()
        doc.update(
            {
                "model": self.plan.graph.model_name,
                "framework": self.plan.framework.key,
                "batch_size": self.plan.graph.batch_size,
                "gpu": self.plan.gpu.name,
                "kernels": len(self.plan.kernels),
                "kernel_bias": self.kernel_bias,
            }
        )
        return doc


class ClusterSubject(Subject):
    """A distributed data-parallel iteration under interconnect noise.

    The deterministic profile is computed once; per sample, the compute
    share rides the kernel-jitter channel and the communication share the
    interconnect channel — the measurement-layer view of a fabric whose
    latency wobbles under contention.
    """

    def __init__(self, label: str, profile):
        super().__init__(label)
        iteration = profile.iteration_time_s
        comm = iteration * profile.communication_fraction
        self._compute_s = iteration - comm
        self._comm_s = comm

    @property
    def noiseless_s(self) -> float:
        return self._compute_s + self._comm_s

    def measure(self, stream) -> float:
        compute_factor = float(stream.kernel_factors(1)[0])
        return (
            self._compute_s * compute_factor
            + self._comm_s * stream.interconnect_factor()
        )


#: Named treatments ``subject_for`` understands.
TRANSFORMS = {
    "fused-rnn": FusedRNNTransform,
    "fp16-storage": HalfPrecisionStorageTransform,
}


def subject_for(
    treatment: str,
    model: str,
    framework: str,
    batch_size: int | None = None,
    gpu=None,
) -> Subject:
    """Build one measurable subject for a ``(model, framework, batch)``
    point.

    ``treatment`` is ``"baseline"``, a :data:`TRANSFORMS` name,
    ``"pipeline:<spec>"`` (a full transform pipeline in
    :func:`~repro.plan.pipeline.parse_transform_spec` syntax), or
    ``"slowdown:<percent>"`` (e.g. ``slowdown:5`` for a deterministic 5%
    kernel-time regression — the gate's negative control).
    """
    kwargs = {"gpu": gpu} if gpu is not None else {}
    session = TrainingSession(model, framework, **kwargs)
    plan = session.compile(batch_size)
    if treatment == "baseline":
        return PlanSubject("baseline", plan)
    if treatment.startswith("slowdown:"):
        percent = float(treatment.split(":", 1)[1])
        if percent <= -100.0:
            raise ValueError("slowdown percent must exceed -100")
        return PlanSubject(treatment, plan, kernel_bias=1.0 + percent / 100.0)
    if treatment.startswith("pipeline:"):
        from repro.plan.pipeline import parse_transform_spec

        pipeline = parse_transform_spec(treatment.split(":", 1)[1])
        return PlanSubject(
            treatment, session.compile_transformed(batch_size, pipeline)
        )
    if treatment in TRANSFORMS:
        transformed = TRANSFORMS[treatment]().apply(plan)
        return PlanSubject(treatment, transformed)
    known = ", ".join(sorted(TRANSFORMS))
    raise ValueError(
        f"unknown treatment {treatment!r}; expected 'baseline', "
        f"'pipeline:<spec>', 'slowdown:<pct>', or one of: {known}"
    )
