"""``repro.bench`` — statistical differential benchmarking.

The paper's core contribution is measurement you can trust; this package
supplies the cross-run half of that trust.  A seeded :class:`NoiseModel`
makes repeated executions of a :class:`~repro.plan.compiled.CompiledPlan`
exhibit machine-like variance (jittered kernel times, dispatch gaps and
interconnect latency), an :class:`InterleavedRunner` alternates baseline
and treatment runs in randomized order so slow drift cancels out of the
A/B difference, and the verdict is statistical: median speedup, bootstrap
confidence interval, and a one-sided Welch p-value for "did this change
make things slower".

Results append to a schema-versioned ``BENCH_<suite>.json`` trajectory
(:class:`BenchStore`) keyed by the environment fingerprint from
:mod:`repro.engine.keys`, and :func:`evaluate_gate` turns one run into a
CI pass/fail that only fires on *statistically significant* slowdowns —
never on noise.  ``tbd bench run|compare|history|gate`` is the CLI.
"""

from repro.bench.gate import GateReport, evaluate_gate
from repro.bench.noise import NoiseModel, NoiseStream
from repro.bench.runner import BenchResult, InterleavedRunner
from repro.bench.store import BENCH_SCHEMA, BenchStore, environment_fingerprint
from repro.bench.subjects import PlanSubject, Subject, subject_for
from repro.bench.suites import BenchSuite, get_suite, run_suite, suite_catalog
from repro.bench.symbolic_sweep import (
    SweepCaseResult,
    run_symbolic_sweep,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "BenchStore",
    "BenchSuite",
    "GateReport",
    "InterleavedRunner",
    "NoiseModel",
    "NoiseStream",
    "PlanSubject",
    "Subject",
    "SweepCaseResult",
    "run_symbolic_sweep",
    "environment_fingerprint",
    "evaluate_gate",
    "get_suite",
    "run_suite",
    "subject_for",
    "suite_catalog",
]
