"""CLI surface of the bench harness: ``tbd bench run|compare|history|gate``.

Kept next to the harness (mirroring :mod:`repro.conformance.cli`) so flag
semantics and runner construction live in one place.

- ``run SUITE`` — run a suite, print the per-case table, and append one
  record to ``BENCH_<suite>.json`` under ``--dir``.
- ``compare MODEL TREATMENT`` — one ad-hoc A/B (no trajectory write).
- ``history SUITE`` — print the stored trajectory, newest last.
- ``gate SUITE`` — run + record + evaluate the regression gate; exit 1
  on a statistically significant slowdown (or, for control suites, on
  any verdict that contradicts the control's expectation).
"""

from __future__ import annotations

from repro.bench import schedule_suite, serve_suite, symbolic_sweep
from repro.bench.gate import evaluate_gate
from repro.bench.noise import NoiseModel
from repro.bench.runner import InterleavedRunner
from repro.bench.store import BenchStore, build_record
from repro.bench.subjects import subject_for
from repro.bench.suites import get_suite, run_suite, suite_catalog


def register_bench_command(subparsers) -> None:
    """Add ``tbd bench run|compare|history|gate`` to the subparser set."""
    bench = subparsers.add_parser(
        "bench",
        help="statistical differential benchmarking: noise-modeled "
        "interleaved A/B runs, BENCH_*.json trajectory, regression gate",
    )
    sub = bench.add_subparsers(dest="bench_command", required=True)

    def add_run_arguments(parser, with_store: bool) -> None:
        parser.add_argument(
            "--seed", type=int, default=0, help="noise-model seed (default 0)"
        )
        parser.add_argument(
            "--samples",
            type=int,
            default=None,
            help="per-side sample count (default: adaptive from pilot variance)",
        )
        parser.add_argument(
            "--alpha",
            type=float,
            default=0.05,
            help="significance level for verdicts (default 0.05)",
        )
        parser.add_argument(
            "--min-effect",
            type=float,
            default=0.01,
            help="median-effect noise floor below which verdicts stay "
            "'indistinguishable' (default 0.01 = 1%%)",
        )
        if with_store:
            parser.add_argument(
                "--dir",
                default="benchmarks/trajectory",
                help="trajectory directory holding BENCH_<suite>.json "
                "(default benchmarks/trajectory)",
            )
            parser.add_argument(
                "--repeats",
                type=int,
                default=5,
                help="wall-clock repeats for the symbolic-sweep suite "
                "(default 5; ignored by the A/B suites)",
            )

    run = sub.add_parser(
        "run", help="run one suite and append its trajectory record"
    )
    run.add_argument("suite", help="suite name (see 'tbd bench history --list')")
    add_run_arguments(run, with_store=True)

    compare = sub.add_parser(
        "compare", help="one ad-hoc A/B: a treatment vs baseline on one point"
    )
    compare.add_argument("model")
    compare.add_argument(
        "treatment",
        help="'fused-rnn', 'fp16-storage', 'pipeline:<spec>', or "
        "'slowdown:<pct>'",
    )
    compare.add_argument("-f", "--framework", default="tensorflow")
    compare.add_argument("-b", "--batch", type=int, default=None)
    add_run_arguments(compare, with_store=False)

    history = sub.add_parser("history", help="print a suite's stored trajectory")
    history.add_argument("suite", nargs="?", help="suite name")
    history.add_argument(
        "--dir",
        default="benchmarks/trajectory",
        help="trajectory directory (default benchmarks/trajectory)",
    )
    history.add_argument(
        "--list", action="store_true", help="list known suites and stored files"
    )

    gate = sub.add_parser(
        "gate",
        help="run one suite, record it, and fail on significant regressions",
    )
    gate.add_argument("suite")
    add_run_arguments(gate, with_store=True)

    bench.set_defaults(func=cmd_bench)


def _run_symbolic_sweep(args) -> bool:
    """Run the compile-count/bit-identity sweep suite; returns the gate
    verdict (it measures the compiler itself, so it bypasses the noise-model
    A/B machinery)."""
    results, gate_doc, path = symbolic_sweep.run_and_record(
        args.dir, repeats=args.repeats
    )
    for result in results:
        print(result.format_row())
    print(f"trajectory: {path}")
    if not gate_doc["passed"]:
        print("guard failures: " + ", ".join(gate_doc["failures"]))
    return gate_doc["passed"]


def _run_serve_suite(args) -> bool:
    """Run the serve load-test suite; returns the gate verdict (all its
    gated numbers are simulated/deterministic, so like the symbolic
    sweep it bypasses the noise-model A/B machinery)."""
    results, gate_doc, path = serve_suite.run_and_record(args.dir)
    for result in results:
        print(result.format_row())
    print(f"trajectory: {path}")
    if not gate_doc["passed"]:
        print("SLO/guard failures: " + ", ".join(gate_doc["failures"]))
    return gate_doc["passed"]


def _run_schedule_suite(args) -> bool:
    """Run the adaptive-vs-fixed schedule suite; returns the gate verdict
    (fully simulated, hence deterministic: the comparison itself is
    gated, not just its preconditions)."""
    results, gate_doc, path = schedule_suite.run_and_record(args.dir)
    for result in results:
        print(result.format_row())
    print(f"trajectory: {path}")
    if not gate_doc["passed"]:
        print("guard failures: " + ", ".join(gate_doc["failures"]))
    return gate_doc["passed"]


def _run_and_record(args, record: bool):
    suite = get_suite(args.suite)
    noise = NoiseModel(seed=args.seed)
    results = run_suite(
        suite,
        noise=noise,
        samples=args.samples,
        alpha=args.alpha,
        min_effect=args.min_effect,
    )
    report = evaluate_gate(suite, results)
    for result in results:
        print(result.format_row())
    if record:
        store = BenchStore(args.dir)
        store.append(
            suite.name,
            build_record(
                suite.name, args.seed, noise.to_doc(), results, report.to_doc()
            ),
        )
        print(f"trajectory: {store.path(suite.name)}")
    return report


def _cmd_run(args) -> int:
    if args.suite == symbolic_sweep.SUITE_NAME:
        _run_symbolic_sweep(args)
        return 0
    if args.suite == serve_suite.SUITE_NAME:
        _run_serve_suite(args)
        return 0
    if args.suite == schedule_suite.SUITE_NAME:
        _run_schedule_suite(args)
        return 0
    _run_and_record(args, record=True)
    return 0


def _cmd_gate(args) -> int:
    if args.suite == symbolic_sweep.SUITE_NAME:
        return 0 if _run_symbolic_sweep(args) else 1
    if args.suite == serve_suite.SUITE_NAME:
        return 0 if _run_serve_suite(args) else 1
    if args.suite == schedule_suite.SUITE_NAME:
        return 0 if _run_schedule_suite(args) else 1
    report = _run_and_record(args, record=True)
    print(report.format_summary())
    return 0 if report.passed else 1


def _cmd_compare(args) -> int:
    noise = NoiseModel(seed=args.seed)
    runner = InterleavedRunner(
        noise=noise, alpha=args.alpha, min_effect=args.min_effect
    )
    baseline = subject_for("baseline", args.model, args.framework, args.batch)
    treatment = subject_for(args.treatment, args.model, args.framework, args.batch)
    result = runner.run(baseline, treatment, samples=args.samples)
    print(result.format_row())
    print(
        f"  medians: baseline {result.median_baseline_s * 1e3:.3f} ms, "
        f"treatment {result.median_treatment_s * 1e3:.3f} ms "
        f"({result.slowdown_fraction * 100.0:+.2f}%)"
    )
    return 0


def _cmd_history(args) -> int:
    store = BenchStore(args.dir)
    if args.list or not args.suite:
        print("suites:")
        for suite in suite_catalog():
            print(f"  {suite.name:<12} {suite.description}")
        print(
            f"  {symbolic_sweep.SUITE_NAME:<12} batch sweeps vs per-point "
            "recompiles: compile-count guard + bit-identity, wall-clock "
            "speedups recorded"
        )
        print(
            f"  {'tune':<12} autotuner winners (tbd tune) vs baseline on "
            "the RNN workloads; derived on demand, every winner must "
            "verify as an improvement"
        )
        print(
            f"  {serve_suite.SUITE_NAME:<12} deterministic loadgen "
            "scenarios against the serve scheduler: p99 latency SLO, "
            "fairness floor, zero starvation"
        )
        print(
            f"  {schedule_suite.SUITE_NAME:<12} adaptive batch schedule "
            "vs fixed b32 on P4000 and Titan Xp, with and without a "
            "fault plan; conservation + fixed-equivalence guards"
        )
        stored = store.suites()
        print(f"stored trajectories under {store.root}: " + (", ".join(stored) or "none"))
        return 0
    records = store.records(args.suite)
    if not records:
        print(f"no trajectory for suite {args.suite!r} under {store.root}")
        return 0
    for record in records:
        gate = record["gate"]
        status = "PASS" if gate["passed"] else "FAIL"
        seed = f"seed={record['seed']} " if "seed" in record else ""
        print(
            f"record {record['key'][:12]} {seed}"
            f"code={record['environment']['code'][:12]} gate={status}"
        )
        for result in record["results"]:
            if "latency_p99_s" in result:
                p99 = result["latency_p99_s"]
                print(
                    f"  {result['name']:<40} "
                    f"completed={result['completed']} "
                    f"p99 i/s/b {p99['interactive']:.0f}/"
                    f"{p99['standard']:.0f}/{p99['batch']:.0f}s "
                    f"fair={result['fairness_index']:.3f} "
                    f"starved={result['starvation_events']}"
                )
                continue
            if "adaptive_s" in result:
                print(
                    f"  {result['name']:<40} "
                    f"fixed {result['fixed_s']:.0f}s adaptive "
                    f"{result['adaptive_s']:.0f}s x{result['speedup']:.3f} "
                    f"beats={result['adaptive_beats_fixed']} "
                    f"conserved={result['conservation_ok']} "
                    f"fixed-eq={result['fixed_equals_elastic']}"
                )
                continue
            if "speedup_ci" not in result:
                measured = record.get("measured", {}).get(result["name"], {})
                print(
                    f"  {result['name']:<40} "
                    f"compiles={result['symbolic_compiles']} "
                    f"warm={result['warm_symbolic_compiles']} "
                    f"cold x{measured.get('cold_speedup', 0.0):.2f} "
                    f"warm x{measured.get('warm_speedup', 0.0):.2f} "
                    f"identical={result['identical']}"
                )
                continue
            low, high = result["speedup_ci"]
            print(
                f"  {result['name']:<40} x{result['speedup']:.3f} "
                f"[{low:.3f}, {high:.3f}] p(slower)={result['p_regression']:.4f} "
                f"{result['verdict']}"
            )
    return 0


def cmd_bench(args) -> int:
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "history": _cmd_history,
        "gate": _cmd_gate,
    }
    return handlers[args.bench_command](args)
