"""The CI regression gate.

The gate's contract is asymmetric on purpose: it fails **only** on
statistically significant slowdowns — verdict ``regression``, which the
runner grants only when the one-sided Welch p-value clears alpha *and*
the median slowdown exceeds the ``min_effect`` noise floor.  Noise alone
(``indistinguishable``) and wins (``improvement``) both pass, so a green
gate means "nothing got measurably slower", not "nothing changed".

Suites that declare an expected verdict (the ``noop`` false-positive
control, the ``slowdown5`` power control) additionally fail the gate on
any mismatch — those suites exist to prove the *gate itself* still
discriminates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GateReport:
    """Outcome of gating one suite run."""

    suite: str
    passed: bool
    #: Case names that came back ``regression``.
    regressions: tuple
    #: ``(case name, expected, actual)`` for control-suite mismatches.
    mismatches: tuple
    cases: int

    def to_doc(self) -> dict:
        return {
            "suite": self.suite,
            "passed": self.passed,
            "regressions": list(self.regressions),
            "mismatches": [list(entry) for entry in self.mismatches],
            "cases": self.cases,
        }

    def format_summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        parts = [f"gate {status}: {self.cases} case(s)"]
        if self.regressions:
            parts.append(f"regressions: {', '.join(self.regressions)}")
        if self.mismatches:
            parts.append(
                "control mismatches: "
                + ", ".join(
                    f"{name} expected {expected} got {actual}"
                    for name, expected, actual in self.mismatches
                )
            )
        return "; ".join(parts)


def evaluate_gate(suite, results) -> GateReport:
    """Gate one suite run: fail on any ``regression`` verdict, and — for
    control suites with a declared expectation — on any verdict mismatch.
    ``suite`` is a :class:`~repro.bench.suites.BenchSuite` or a name used
    only for the report (no expectation)."""
    suite_name = suite if isinstance(suite, str) else suite.name
    expect = None if isinstance(suite, str) else suite.expect
    regressions = tuple(r.name for r in results if r.verdict == "regression")
    mismatches = ()
    if expect is not None:
        mismatches = tuple(
            (r.name, expect, r.verdict) for r in results if r.verdict != expect
        )
    passed = not mismatches if expect is not None else not regressions
    return GateReport(
        suite=suite_name,
        passed=passed,
        regressions=regressions,
        mismatches=mismatches,
        cases=len(results),
    )
