"""The ``BENCH_<suite>.json`` trajectory store.

One file per suite holds the repo's performance trajectory: every record
is one gated suite run — median speedups, CIs, p-values, the noise
configuration, and an *environment fingerprint* (the timing-model code
fingerprint plus device identity from :mod:`repro.engine.keys`).  Records
are keyed by the digest of everything that determines their content, so
re-running the same suite at the same seed against the same code
*replaces* its record instead of appending a duplicate — which is what
makes ``tbd bench run --seed 7`` byte-identical across invocations — while
any code or configuration change appends a new trajectory point.

Files are canonical JSON (sorted keys, compact separators, repr-exact
floats) with no wall-clock fields, so they diff cleanly in review and can
be committed as CI artifacts.
"""

from __future__ import annotations

import json
import os

from repro.engine.keys import (
    KEY_SCHEMA,
    canonical_json,
    code_fingerprint,
    digest,
    modules_fingerprint,
)
from repro.hardware.devices import QUADRO_P4000, XEON_E5_2680

#: Schema version of one BENCH_*.json document; bump on layout changes.
BENCH_SCHEMA = 1

#: Modules whose source participates in the bench environment fingerprint
#: beyond the shared timing core: the harness itself changes what the
#: numbers *mean*, so its edits must start a new trajectory point.
_BENCH_CODE = ("bench",)


def environment_fingerprint(gpu=QUADRO_P4000, cpu=XEON_E5_2680) -> dict:
    """The deterministic identity of the measurement environment."""
    return {
        "key_schema": KEY_SCHEMA,
        "code": code_fingerprint(),
        "bench_code": modules_fingerprint(_BENCH_CODE),
        "gpu": gpu.name,
        "cpu": cpu.name,
    }


def suite_filename(suite: str) -> str:
    return f"BENCH_{suite}.json"


class BenchStore:
    """Append-or-replace record store over one directory of
    ``BENCH_<suite>.json`` files."""

    def __init__(self, root: str | None = None):
        self.root = root if root is not None else os.getcwd()

    def path(self, suite: str) -> str:
        return os.path.join(self.root, suite_filename(suite))

    def load(self, suite: str) -> dict:
        """The suite's document (an empty skeleton if the file is absent)."""
        path = self.path(suite)
        if not os.path.exists(path):
            return {"schema": BENCH_SCHEMA, "suite": suite, "records": []}
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{path}: unsupported bench schema {document.get('schema')!r} "
                f"(this build reads schema {BENCH_SCHEMA})"
            )
        return document

    def records(self, suite: str) -> list:
        return self.load(suite)["records"]

    def append(self, suite: str, record: dict, volatile=()) -> str:
        """Insert ``record`` (replacing any record with the same key);
        returns the record key.

        The key is the digest of the record *without* the key field, so a
        byte-identical rerun lands on — and is absorbed by — its own
        previous entry.  Top-level fields named in ``volatile`` are stored
        but excluded from the digest: wall-clock measurements jitter
        between runs, and a suite that records them must still converge on
        one trajectory record per (code, configuration) state instead of
        appending a near-duplicate on every rerun.
        """
        body = {k: v for k, v in record.items() if k != "key"}
        key = digest({k: v for k, v in body.items() if k not in set(volatile)})
        stamped = dict(body)
        stamped["key"] = key
        document = self.load(suite)
        replaced = False
        for index, existing in enumerate(document["records"]):
            if existing.get("key") == key:
                document["records"][index] = stamped
                replaced = True
                break
        if not replaced:
            document["records"].append(stamped)
        self._write(suite, document)
        return key

    def _write(self, suite: str, document: dict) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self.path(suite)
        text = canonical_json(document) + "\n"
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)

    def suites(self) -> list:
        """Suite names with a trajectory file under this root, sorted."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if name.startswith("BENCH_") and name.endswith(".json"):
                out.append(name[len("BENCH_") : -len(".json")])
        return out


def build_record(
    suite: str,
    seed: int,
    noise_doc: dict,
    results: list,
    gate_doc: dict,
    gpu=QUADRO_P4000,
    cpu=XEON_E5_2680,
) -> dict:
    """Assemble one trajectory record from a suite run's results."""
    return {
        "suite": suite,
        "seed": seed,
        "noise": dict(sorted(noise_doc.items())),
        "environment": environment_fingerprint(gpu=gpu, cpu=cpu),
        "results": [result.to_doc() for result in results],
        "gate": dict(sorted(gate_doc.items())),
    }
