"""The ``schedule`` suite: adaptive batch schedules vs the fixed baseline.

Answers the question the schedule dimension exists for: *does growing the
batch along the convergence curve beat training at fixed batch 32*, on
two GPUs (Quadro P4000 and Titan Xp), with and without a fault plan.
Every number here is simulated and therefore deterministic, so — unlike
the wall-clock suites — the whole record is digest-keyed and the gate
can hold the comparison itself, not just its preconditions:

- **adaptive_beats_fixed**: the adaptive run's time-to-accuracy is
  strictly below the fixed run's on every case.
- **conservation**: the adaptive integration's segments tile
  ``[0, total_samples]`` exactly (the ``schedule-sample-conservation``
  invariant, re-checked at the bench boundary).
- **fixed_equals_elastic**: the fixed path through
  :func:`~repro.schedule.accuracy.scheduled_time_to_accuracy` reproduces
  :func:`~repro.distributed.time_to_accuracy.elastic_time_to_accuracy`
  bit-for-bit (the ``schedule-fixed-equivalence`` invariant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bench.store import BenchStore, environment_fingerprint
from repro.distributed.time_to_accuracy import elastic_time_to_accuracy
from repro.faults.plan import FaultPlan, StragglerFault, WorkerCrash
from repro.hardware.cluster import parse_configuration
from repro.hardware.devices import QUADRO_P4000, get_gpu
from repro.observability.tracer import trace_span
from repro.schedule.accuracy import scheduled_time_to_accuracy
from repro.schedule.integrator import integrate_schedule

SUITE_NAME = "schedule"

#: The question's fixed side: the paper's reference batch.
BASE_BATCH = 32
#: The adaptive side: noise-driven growth capped below the P4000's OOM
#: boundary for resnet-50.
ADAPTIVE_SPEC = "gns:ceiling=64,every=50"
MODEL = "resnet-50"
FRAMEWORK = "mxnet"
#: Two machines on 10GbE — the Fig. 10 configuration where communication
#: dominates, which is exactly where batch growth pays.
CLUSTER_LABEL = "2M1G"
CLUSTER_FABRIC = "ethernet"

#: One machine crash plus a straggler window — the same shape the fault
#: harness's elastic demo uses, deterministic under seed 0.
FAULTED_PLAN = FaultPlan(
    events=(
        StragglerFault(worker=1, factor=1.5, start_step=10, end_step=40),
        WorkerCrash(step=30, machines=1),
    ),
    seed=0,
)

#: (gpu key, fault label, plan) — the suite's four cases are the cross
#: product of two GPUs and {no faults, the crash+straggler plan}.
SCHEDULE_CASES = tuple(
    (gpu_key, fault_label, plan)
    for gpu_key in ("p4000", "titan xp")
    for fault_label, plan in (("none", None), ("crash+straggler", FAULTED_PLAN))
)


@dataclass(frozen=True)
class ScheduleCaseResult:
    """One adaptive-vs-fixed comparison; fully deterministic."""

    gpu: str
    fault_label: str
    fixed_s: float
    adaptive_s: float
    adaptive_segments: int
    final_batch: int
    fixed_final_machines: int
    adaptive_final_machines: int
    #: The three deterministic guards (see the module docstring).
    adaptive_beats_fixed: bool
    conservation_ok: bool
    fixed_equals_elastic: bool

    @property
    def name(self) -> str:
        return f"{MODEL}/{self.gpu}/faults={self.fault_label}"

    @property
    def speedup(self) -> float:
        return self.fixed_s / self.adaptive_s if self.adaptive_s > 0 else 0.0

    @property
    def guards_ok(self) -> bool:
        return (
            self.adaptive_beats_fixed
            and self.conservation_ok
            and self.fixed_equals_elastic
        )

    def guard_doc(self) -> dict:
        return {
            "name": self.name,
            "gpu": self.gpu,
            "faults": self.fault_label,
            "schedule": ADAPTIVE_SPEC,
            "fixed_s": self.fixed_s,
            "adaptive_s": self.adaptive_s,
            "speedup": self.speedup,
            "adaptive_segments": self.adaptive_segments,
            "final_batch": self.final_batch,
            "fixed_final_machines": self.fixed_final_machines,
            "adaptive_final_machines": self.adaptive_final_machines,
            "adaptive_beats_fixed": self.adaptive_beats_fixed,
            "conservation_ok": self.conservation_ok,
            "fixed_equals_elastic": self.fixed_equals_elastic,
        }

    def format_row(self) -> str:
        status = "ok" if self.guards_ok else "GUARD-FAIL"
        return (
            f"{self.name:<40} fixed {self.fixed_s:>11.0f}s  adaptive "
            f"{self.adaptive_s:>11.0f}s  x{self.speedup:.3f} "
            f"({self.adaptive_segments} seg, final b{self.final_batch}) "
            f"{status}"
        )


def _conservation_ok(integration) -> bool:
    """The schedule-sample-conservation tiling, restated at the bench
    boundary (exact contiguity, exact anchoring, conserved sample sum)."""
    segments = integration.segments
    total = integration.total_samples
    if segments[0].start_samples != 0.0 or segments[-1].end_samples != total:
        return False
    for prev, cur in zip(segments, segments[1:]):
        if cur.start_samples != prev.end_samples:
            return False
    covered = math.fsum(segment.samples for segment in segments)
    return abs(covered - total) <= 1e-9 * max(total, 1.0)


def _run_case(gpu_key: str, fault_label: str, plan) -> ScheduleCaseResult:
    cluster = parse_configuration(
        CLUSTER_LABEL, fabric=CLUSTER_FABRIC, gpu=get_gpu(gpu_key)
    )
    fixed = scheduled_time_to_accuracy(
        MODEL, FRAMEWORK, cluster, BASE_BATCH, plan=plan
    )
    adaptive = scheduled_time_to_accuracy(
        MODEL, FRAMEWORK, cluster, BASE_BATCH, ADAPTIVE_SPEC, plan=plan
    )
    elastic = elastic_time_to_accuracy(
        MODEL, FRAMEWORK, cluster, BASE_BATCH, plan=plan
    )
    integration = integrate_schedule(MODEL, ADAPTIVE_SPEC, BASE_BATCH)
    return ScheduleCaseResult(
        gpu=gpu_key,
        fault_label=fault_label,
        fixed_s=fixed.time_to_accuracy_s,
        adaptive_s=adaptive.time_to_accuracy_s,
        adaptive_segments=adaptive.segment_count,
        final_batch=adaptive.final_per_gpu_batch,
        fixed_final_machines=fixed.final_machines,
        adaptive_final_machines=adaptive.final_machines,
        adaptive_beats_fixed=adaptive.time_to_accuracy_s
        < fixed.time_to_accuracy_s,
        conservation_ok=_conservation_ok(integration),
        fixed_equals_elastic=(
            fixed.time_to_accuracy_s == elastic.time_to_accuracy_s
            and fixed.samples_needed == elastic.samples_needed
            and fixed.final_machines == elastic.final_machines
        ),
    )


def run_schedule_suite(cases=SCHEDULE_CASES):
    """Run every case; returns the :class:`ScheduleCaseResult` list."""
    results = []
    with trace_span("bench.schedule", cases=len(cases)):
        for gpu_key, fault_label, plan in cases:
            results.append(_run_case(gpu_key, fault_label, plan))
    return results


def gate_doc_for(results) -> dict:
    """The gate verdict: every guard on every case, no exceptions —
    the suite is fully deterministic, so even the comparison is gated."""
    failures = [result.name for result in results if not result.guards_ok]
    return {"passed": not failures, "failures": sorted(failures)}


def build_schedule_record(results, gpu=QUADRO_P4000) -> dict:
    return {
        "suite": SUITE_NAME,
        "schedule": ADAPTIVE_SPEC,
        "base_batch": BASE_BATCH,
        "cluster": f"{CLUSTER_LABEL}:{CLUSTER_FABRIC}",
        "environment": environment_fingerprint(gpu=gpu),
        "results": [result.guard_doc() for result in results],
        "gate": gate_doc_for(results),
    }


def run_and_record(store_dir: str):
    """Run the suite and append one trajectory record; returns
    ``(results, gate_doc, path)``."""
    results = run_schedule_suite()
    store = BenchStore(store_dir)
    store.append(SUITE_NAME, build_schedule_record(results))
    return results, gate_doc_for(results), store.path(SUITE_NAME)
