"""The ``serve`` suite: load-tested latency SLOs for the benchmark server.

Each case runs the deterministic load generator
(:mod:`repro.serve.loadgen`) at a fixed scale and seed, then gates on
three properties of the *simulated* outcome:

- **SLO**: per-priority-class p99 latency under the published ceilings,
  the Jain fairness index above its floor, zero starvation events
  (:data:`repro.serve.loadgen.DEFAULT_SLO`).
- **determinism**: the same config run twice yields a byte-identical
  report — the precondition for gating on simulated numbers at all.
- **conservation**: every submitted job completes (closed-loop clients
  retry typed rejections, so nothing may be silently dropped).

Everything the gate reads is simulated and therefore digest-keyed; only
the wall-clock cost of running the simulation itself goes under the
``measured`` field, which :meth:`BenchStore.append` excludes from the
record digest — reruns on unchanged code converge on one trajectory
record in ``BENCH_serve.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.store import BenchStore, environment_fingerprint
from repro.hardware.devices import QUADRO_P4000
from repro.observability.tracer import trace_span
from repro.serve.loadgen import (
    DEFAULT_SLO,
    LoadGenConfig,
    evaluate_slo,
    run_loadgen,
)

SUITE_NAME = "serve"

#: (name, LoadGenConfig) scenarios: CI scale and full acceptance scale.
SERVE_CASES = (
    ("smoke-200", LoadGenConfig(clients=200, seed=7)),
    ("heavy-1000", LoadGenConfig(clients=1000, seed=7)),
)


@dataclass(frozen=True)
class ServeCaseResult:
    """One load scenario's deterministic outcome plus its wall cost."""

    name: str
    report_doc: dict
    breaches: tuple
    deterministic: bool
    wall_s: float

    @property
    def conserved(self) -> bool:
        return self.report_doc["completed"] == self.report_doc["submitted"]

    @property
    def guards_ok(self) -> bool:
        return not self.breaches and self.deterministic and self.conserved

    def guard_doc(self) -> dict:
        """The digest-keyed (deterministic) half of the result."""
        classes = self.report_doc["classes"]
        return {
            "name": self.name,
            "clients": self.report_doc["config"]["clients"],
            "seed": self.report_doc["config"]["seed"],
            "submitted": self.report_doc["submitted"],
            "completed": self.report_doc["completed"],
            "starvation_events": self.report_doc["starvation_events"],
            "fairness_index": self.report_doc["fairness_index"],
            "latency_p99_s": {
                name: stats["latency_p99_s"] for name, stats in classes.items()
            },
            "rejected_by_code": self.report_doc["rejected_by_code"],
            "deterministic": self.deterministic,
            "breaches": list(self.breaches),
        }

    def measured_doc(self) -> dict:
        """The volatile (wall-clock) half of the result."""
        return {"wall_s": self.wall_s}

    def format_row(self) -> str:
        status = "ok" if self.guards_ok else "SLO-FAIL"
        p99 = self.guard_doc()["latency_p99_s"]
        return (
            f"{self.name:<12} n={self.report_doc['completed']:<5d} "
            f"p99 i/s/b {p99['interactive']:.0f}/{p99['standard']:.0f}/"
            f"{p99['batch']:.0f}s "
            f"fair {self.report_doc['fairness_index']:.3f} "
            f"starved {self.report_doc['starvation_events']} {status}"
        )


def _run_case(name: str, config: LoadGenConfig) -> ServeCaseResult:
    start = time.perf_counter()
    report = run_loadgen(config)
    wall = time.perf_counter() - start
    rerun = run_loadgen(config)
    return ServeCaseResult(
        name=name,
        report_doc=report.to_doc(),
        breaches=tuple(evaluate_slo(report)),
        deterministic=report.to_json() == rerun.to_json(),
        wall_s=wall,
    )


def run_serve_suite(cases=SERVE_CASES):
    """Run every load scenario; returns the :class:`ServeCaseResult` list."""
    results = []
    with trace_span("bench.serve_suite", cases=len(cases)):
        for name, config in cases:
            results.append(_run_case(name, config))
    return results


def gate_doc_for(results) -> dict:
    """The gate verdict: SLO, determinism, and conservation guards."""
    failures = sorted(
        result.name for result in results if not result.guards_ok
    )
    return {"passed": not failures, "failures": failures}


def build_serve_record(results, gpu=QUADRO_P4000) -> dict:
    return {
        "suite": SUITE_NAME,
        "slo": DEFAULT_SLO,
        "environment": environment_fingerprint(gpu=gpu),
        "results": [result.guard_doc() for result in results],
        "measured": {result.name: result.measured_doc() for result in results},
        "gate": gate_doc_for(results),
    }


def run_and_record(store_dir: str, cases=SERVE_CASES):
    """Run the suite and append one trajectory record; returns
    ``(results, gate_doc, path)``."""
    results = run_serve_suite(cases=cases)
    store = BenchStore(store_dir)
    store.append(
        SUITE_NAME,
        build_serve_record(results),
        volatile=("measured",),
    )
    return results, gate_doc_for(results), store.path(SUITE_NAME)
