"""The interleaved A/B runner.

Benchmarking baseline-then-treatment in two blocks confounds the
comparison with everything that drifts between the blocks — thermal
state, background load, allocator fragmentation.  The TorchDynamo harness
defeats that by *interleaving*: baseline and treatment alternate run by
run, in randomized order within each pair, so any slow drift lands on
both sides equally and cancels out of the difference.  This runner is
that idea against the simulated noise model.

Sample sizing is adaptive: a pilot block per side feeds
:func:`repro.profiling.statistics.required_sample_count`, so quiet
configurations stop early and noisy ones keep sampling until the target
CI half-width is met (bounded by ``max_samples``).  The verdict is
deliberately conservative — a *regression* requires both a one-sided
Welch p-value below alpha **and** a median slowdown above the
``min_effect`` noise floor, which is what lets CI gate on this without
flaking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.noise import NoiseModel
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.profiling.statistics import required_sample_count, welch_p_value

#: Salt separating the interleaving-order RNG from the measurement
#: streams (which are seeded ``(seed, run_index)``).
_ORDER_SALT = 0xBE9C


@dataclass(frozen=True)
class BenchResult:
    """One A/B comparison's statistical outcome."""

    name: str
    baseline: dict  # subject identity documents (Subject.describe)
    treatment: dict
    samples_per_side: int
    median_baseline_s: float
    median_treatment_s: float
    mean_baseline_s: float
    mean_treatment_s: float
    #: median_baseline / median_treatment — > 1 means the treatment is
    #: faster, matching the optimization literature's convention.
    speedup: float
    speedup_ci: tuple
    #: One-sided Welch p-value for "the treatment is *slower*".
    p_regression: float
    #: One-sided Welch p-value for "the treatment is *faster*".
    p_improvement: float
    alpha: float
    min_effect: float
    verdict: str  # "improvement" | "regression" | "indistinguishable"

    @property
    def slowdown_fraction(self) -> float:
        """Relative median slowdown of the treatment (negative = faster)."""
        return self.median_treatment_s / self.median_baseline_s - 1.0

    def to_doc(self) -> dict:
        """Canonical-JSON-ready record for the trajectory store."""
        return {
            "name": self.name,
            "baseline": dict(sorted(self.baseline.items())),
            "treatment": dict(sorted(self.treatment.items())),
            "samples_per_side": self.samples_per_side,
            "median_baseline_s": self.median_baseline_s,
            "median_treatment_s": self.median_treatment_s,
            "mean_baseline_s": self.mean_baseline_s,
            "mean_treatment_s": self.mean_treatment_s,
            "speedup": self.speedup,
            "speedup_ci": list(self.speedup_ci),
            "p_regression": self.p_regression,
            "p_improvement": self.p_improvement,
            "alpha": self.alpha,
            "min_effect": self.min_effect,
            "verdict": self.verdict,
        }

    def format_row(self) -> str:
        low, high = self.speedup_ci
        return (
            f"{self.name:28s} speedup x{self.speedup:6.3f} "
            f"[{low:6.3f}, {high:6.3f}]  p(slower)={self.p_regression:7.4f} "
            f"n={self.samples_per_side:<4d} {self.verdict}"
        )


def _bootstrap_speedup_ci(
    baseline, treatment, confidence: float, seed: int, resamples: int = 1000
) -> tuple:
    """Percentile-bootstrap CI for the ratio of medians."""
    a = np.asarray(baseline, dtype=float)
    b = np.asarray(treatment, dtype=float)
    if float(a.std()) == 0.0 and float(b.std()) == 0.0:
        ratio = float(np.median(a) / np.median(b))
        return (ratio, ratio)
    rng = np.random.default_rng(seed)
    medians_a = np.median(
        rng.choice(a, size=(resamples, a.size), replace=True), axis=1
    )
    medians_b = np.median(
        rng.choice(b, size=(resamples, b.size), replace=True), axis=1
    )
    ratios = medians_a / medians_b
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(ratios, alpha)),
        float(np.quantile(ratios, 1.0 - alpha)),
    )


class InterleavedRunner:
    """Alternates baseline and treatment measurements under one seeded
    noise model and returns a :class:`BenchResult`."""

    def __init__(
        self,
        noise: NoiseModel | None = None,
        alpha: float = 0.05,
        min_effect: float = 0.01,
        min_samples: int = 30,
        max_samples: int = 300,
        pilot_samples: int = 20,
        relative_precision: float = 0.005,
        confidence: float = 0.95,
    ):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if min_effect < 0.0:
            raise ValueError("min_effect must be non-negative")
        if not 2 <= min_samples <= max_samples:
            raise ValueError("need 2 <= min_samples <= max_samples")
        if pilot_samples < 2:
            raise ValueError("pilot_samples must be at least 2")
        self.noise = noise if noise is not None else NoiseModel()
        self.alpha = alpha
        self.min_effect = min_effect
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.pilot_samples = min(pilot_samples, max_samples)
        self.relative_precision = relative_precision
        self.confidence = confidence

    def _target_samples(self, baseline_times, treatment_times) -> int:
        needed = max(
            required_sample_count(
                baseline_times, relative_precision=self.relative_precision
            ),
            required_sample_count(
                treatment_times, relative_precision=self.relative_precision
            ),
        )
        return max(self.min_samples, min(self.max_samples, needed))

    def run(self, baseline, treatment, name: str | None = None, samples=None):
        """Measure ``baseline`` vs ``treatment`` interleaved.

        ``samples`` pins the per-side count explicitly; by default a pilot
        of ``pilot_samples`` pairs decides it from the observed variance.
        Every measurement consumes its own noise stream (seeded by the
        model seed and a global run index), and the within-pair order is
        randomized by a separate seeded RNG so neither side systematically
        sees the earlier index.
        """
        if baseline is treatment:
            raise ValueError(
                "baseline and treatment must be distinct subjects (build a "
                "second 'baseline' subject for a no-op A/B)"
            )
        label = name if name is not None else f"{baseline.label}-vs-{treatment.label}"
        span = trace_span(
            "bench.run",
            case=label,
            baseline=baseline.label,
            treatment=treatment.label,
            seed=self.noise.seed,
        )
        with span:
            order_rng = np.random.default_rng((self.noise.seed, _ORDER_SALT))
            times_a: list = []
            times_b: list = []
            run_index = 0

            def measure_pair() -> None:
                nonlocal run_index
                first, second = (
                    (baseline, treatment)
                    if order_rng.integers(0, 2) == 0
                    else (treatment, baseline)
                )
                for subject in (first, second):
                    value = subject.measure(self.noise.stream(run_index))
                    run_index += 1
                    (times_a if subject is baseline else times_b).append(value)

            target = samples
            if target is None:
                while len(times_a) < self.pilot_samples:
                    measure_pair()
                target = self._target_samples(times_a, times_b)
            if target < 2:
                raise ValueError("need at least 2 samples per side")
            while len(times_a) < target:
                measure_pair()
            times_a = times_a[:target]
            times_b = times_b[:target]

            result = self._verdict(label, baseline, treatment, times_a, times_b)
            span.set_attributes(
                samples_per_side=result.samples_per_side,
                speedup=result.speedup,
                p_regression=result.p_regression,
                verdict=result.verdict,
            )
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("bench_samples_total").inc(
                    2 * result.samples_per_side
                )
                metrics.counter(
                    "bench_verdicts_total", {"verdict": result.verdict}
                ).inc()
        return result

    def _verdict(self, label, baseline, treatment, times_a, times_b) -> BenchResult:
        a = np.asarray(times_a, dtype=float)
        b = np.asarray(times_b, dtype=float)
        median_a = float(np.median(a))
        median_b = float(np.median(b))
        speedup = median_a / median_b
        slowdown = median_b / median_a - 1.0
        p_regression = welch_p_value(b, a, "greater")
        p_improvement = welch_p_value(b, a, "less")
        if p_regression < self.alpha and slowdown > self.min_effect:
            verdict = "regression"
        elif p_improvement < self.alpha and -slowdown > self.min_effect:
            verdict = "improvement"
        else:
            verdict = "indistinguishable"
        return BenchResult(
            name=label,
            baseline=baseline.describe(),
            treatment=treatment.describe(),
            samples_per_side=int(a.size),
            median_baseline_s=median_a,
            median_treatment_s=median_b,
            mean_baseline_s=float(a.mean()),
            mean_treatment_s=float(b.mean()),
            speedup=speedup,
            speedup_ci=_bootstrap_speedup_ci(
                a, b, self.confidence, seed=self.noise.seed
            ),
            p_regression=p_regression,
            p_improvement=p_improvement,
            alpha=self.alpha,
            min_effect=self.min_effect,
            verdict=verdict,
        )
