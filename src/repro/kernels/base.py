"""The :class:`Kernel` description record that the roofline model consumes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

_FP32_BYTES = 4


class KernelCategory(enum.Enum):
    """Coarse kernel families, used for trace aggregation and for the memory
    profiler's workspace accounting."""

    GEMM = "gemm"
    CONV = "conv"
    NORM = "norm"
    ELEMENTWISE = "elementwise"
    POOLING = "pooling"
    RNN_POINTWISE = "rnn_pointwise"
    ATTENTION = "attention"
    EMBEDDING = "embedding"
    OPTIMIZER = "optimizer"
    LOSS = "loss"
    MEMCPY = "memcpy"
    COMMUNICATION = "communication"


@dataclass(frozen=True)
class Kernel:
    """Analytic description of one GPU kernel launch.

    Attributes:
        name: nvprof-style kernel name (e.g. ``magma_lds128_sgemm_kernel``).
        category: coarse family, see :class:`KernelCategory`.
        flops: single-precision floating point operations performed.
        bytes_accessed: DRAM bytes read plus written.
        max_compute_efficiency: ceiling on the fraction of peak FLOP/s this
            kernel family can reach at infinite size (e.g. ~0.85 for large
            SGEMM, ~0.3 for batch-norm whose FLOPs ride along a
            bandwidth-bound pass).
        max_memory_efficiency: ceiling on achievable fraction of peak DRAM
            bandwidth (stream-like kernels reach ~0.85, scattered access
            patterns less).
    """

    name: str
    category: KernelCategory
    flops: float
    bytes_accessed: float
    max_compute_efficiency: float = 0.80
    max_memory_efficiency: float = 0.80
    #: The framework must observe this kernel's result on the host before it
    #: can issue the next one (``tf.while_loop`` step boundaries, Python-side
    #: recurrence): the CPU dispatch pipeline drains and pays the framework's
    #: sync latency.  This is the serialization that keeps LSTM models from
    #: driving up GPU utilization (paper Observation 5).
    host_sync: bool = False

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"kernel {self.name!r} has negative flops")
        if self.bytes_accessed < 0:
            raise ValueError(f"kernel {self.name!r} has negative byte count")
        if not 0.0 < self.max_compute_efficiency <= 1.0:
            raise ValueError(
                f"kernel {self.name!r}: max_compute_efficiency must be in (0, 1]"
            )
        if not 0.0 < self.max_memory_efficiency <= 1.0:
            raise ValueError(
                f"kernel {self.name!r}: max_memory_efficiency must be in (0, 1]"
            )

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte; the roofline x-axis."""
        if self.bytes_accessed <= 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.bytes_accessed

    def scaled(self, factor: float) -> "Kernel":
        """Return a copy with work scaled by ``factor`` (used by data-parallel
        splitting, where each worker runs the same kernel on 1/n the batch)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self, flops=self.flops * factor, bytes_accessed=self.bytes_accessed * factor
        )


def fp32_bytes(elements: float) -> float:
    """DRAM bytes for ``elements`` FP32 values."""
    return elements * _FP32_BYTES
