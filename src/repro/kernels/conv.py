"""2-D convolution kernels (cuDNN) and their workspace requirements.

All three passes needed by training are modelled: forward, backward-data
(gradients w.r.t. the input feature map) and backward-filter (gradients
w.r.t. the weights).  FLOP counts follow the direct-convolution arithmetic;
the algorithm choice (implicit GEMM vs. Winograd) changes the efficiency
ceiling and the workspace bytes, mirroring cuDNN's auto-tuning behaviour
(paper Section 3.4.2: the auto-tuning warm-up phase picks algorithms and
workspace sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.base import Kernel, KernelCategory, fp32_bytes


@dataclass(frozen=True)
class ConvShape:
    """Geometry of one convolution layer application."""

    batch: int
    in_channels: int
    out_channels: int
    in_h: int
    in_w: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: int = 0
    #: Per-axis padding overrides (asymmetric kernels like Inception's 1x7 /
    #: 7x1 factorized convolutions); ``None`` falls back to ``padding``.
    padding_h: int = None
    padding_w: int = None
    #: Per-axis stride overrides (Deep Speech 2 strides (2, 1) over
    #: frequency/time); ``None`` falls back to ``stride``.
    stride_h: int = None
    stride_w: int = None

    def __post_init__(self) -> None:
        # Per-field checks (not ``min(...) <= 0``): ``min`` compares the
        # operands to each other, which would pin symbolic batch traces to
        # needlessly tight guard regions.
        if (
            self.batch <= 0
            or self.in_channels <= 0
            or self.out_channels <= 0
            or self.in_h <= 0
            or self.in_w <= 0
            or self.kernel_h <= 0
            or self.kernel_w <= 0
            or self.stride <= 0
        ):
            raise ValueError(f"invalid convolution shape: {self}")
        if self.out_h <= 0 or self.out_w <= 0:
            raise ValueError(f"convolution produces empty output: {self}")

    @property
    def pad_h(self) -> int:
        return self.padding if self.padding_h is None else self.padding_h

    @property
    def pad_w(self) -> int:
        return self.padding if self.padding_w is None else self.padding_w

    @property
    def str_h(self) -> int:
        return self.stride if self.stride_h is None else self.stride_h

    @property
    def str_w(self) -> int:
        return self.stride if self.stride_w is None else self.stride_w

    @property
    def out_h(self) -> int:
        return (self.in_h + 2 * self.pad_h - self.kernel_h) // self.str_h + 1

    @property
    def out_w(self) -> int:
        return (self.in_w + 2 * self.pad_w - self.kernel_w) // self.str_w + 1

    @property
    def output_elements(self) -> int:
        return self.batch * self.out_channels * self.out_h * self.out_w

    @property
    def input_elements(self) -> int:
        return self.batch * self.in_channels * self.in_h * self.in_w

    @property
    def weight_elements(self) -> int:
        return self.out_channels * self.in_channels * self.kernel_h * self.kernel_w

    @property
    def macs(self) -> float:
        """Multiply-accumulates of the direct algorithm."""
        # ``* 1.0`` (not ``float()``) so symbolic batch dims trace through;
        # the float conversion it performs is bit-identical.
        return (
            self.output_elements
            * 1.0
            * self.in_channels
            * self.kernel_h
            * self.kernel_w
        )


def _conv_kernel(shape: ConvShape, name: str, algorithm: str) -> Kernel:
    flops = 2.0 * shape.macs
    traffic = fp32_bytes(
        shape.input_elements + shape.weight_elements + shape.output_elements
    )
    if algorithm == "winograd":
        # Winograd F(2x2, 3x3) cuts multiplies by ~2.25x but its transforms
        # are bandwidth-hungry; net effect is a higher *effective* compute
        # efficiency w.r.t. direct-conv FLOPs.
        compute_eff = 0.95
        memory_eff = 0.70
    elif algorithm == "implicit_gemm":
        compute_eff = 0.75
        memory_eff = 0.80
    elif algorithm == "gemm":
        # Explicit im2col + GEMM: extra traffic for the lowered matrix.
        traffic += fp32_bytes(shape.macs / max(shape.out_channels, 1))
        compute_eff = 0.70
        memory_eff = 0.80
    else:
        raise ValueError(f"unknown convolution algorithm {algorithm!r}")
    return Kernel(
        name=name,
        category=KernelCategory.CONV,
        flops=flops,
        bytes_accessed=traffic,
        max_compute_efficiency=compute_eff,
        max_memory_efficiency=memory_eff,
    )


def _default_algorithm(shape: ConvShape) -> str:
    """Mimic cuDNN auto-tuning: 3x3 stride-1 convs pick Winograd, 1x1 convs
    are plain GEMMs, everything else uses implicit GEMM."""
    if shape.kernel_h == 3 and shape.kernel_w == 3 and shape.str_h == 1 and shape.str_w == 1:
        return "winograd"
    if shape.kernel_h == 1 and shape.kernel_w == 1:
        return "implicit_gemm"
    return "implicit_gemm"


def conv2d_forward(shape: ConvShape, algorithm: str | None = None) -> Kernel:
    """cuDNN forward convolution."""
    algo = algorithm or _default_algorithm(shape)
    name = _FORWARD_NAMES.get(algo)
    if name is None:
        raise ValueError(f"unknown convolution algorithm {algo!r}")
    return _conv_kernel(shape, name, algo)


_FORWARD_NAMES = {
    "winograd": "cudnn::winograd_nonfused::winogradForwardFilter4x4",
    "implicit_gemm": "cudnn::detail::implicit_convolve_sgemm",
    "gemm": "cudnn::detail::explicit_convolve_sgemm",
}


def conv2d_backward_data(shape: ConvShape, algorithm: str | None = None) -> Kernel:
    """cuDNN backward pass w.r.t. the input feature map (dgrad)."""
    algo = algorithm or _default_algorithm(shape)
    name = {
        "winograd": "cudnn::winograd_nonfused::winogradWgradData4x4",
        "implicit_gemm": "cudnn::detail::dgrad_engine",
        "gemm": "cudnn::detail::dgrad_explicit_gemm",
    }[algo]
    return _conv_kernel(shape, name, algo)


def conv2d_backward_filter(shape: ConvShape, algorithm: str | None = None) -> Kernel:
    """cuDNN backward pass w.r.t. the weights (wgrad).

    wgrad reduces over the batch which serialises part of the accumulation;
    its efficiency ceiling is a notch below forward.
    """
    algo = algorithm or _default_algorithm(shape)
    name = {
        "winograd": "cudnn::winograd_nonfused::winogradWgradDelta4x4",
        "implicit_gemm": "cudnn::detail::wgrad_alg0_engine",
        "gemm": "cudnn::detail::wgrad_explicit_gemm",
    }[algo]
    kernel = _conv_kernel(shape, name, algo)
    return Kernel(
        name=kernel.name,
        category=kernel.category,
        flops=kernel.flops,
        bytes_accessed=kernel.bytes_accessed,
        max_compute_efficiency=kernel.max_compute_efficiency * 0.9,
        max_memory_efficiency=kernel.max_memory_efficiency,
    )


def conv_workspace_bytes(shape: ConvShape, algorithm: str | None = None) -> float:
    """Scratch memory cuDNN requests for this layer (the *workspace* class of
    the paper's memory breakdown, Fig. 9).

    Winograd needs transformed-tile buffers proportional to the lowered
    input; explicit GEMM needs the full im2col matrix; implicit GEMM needs a
    small column buffer.
    """
    algo = algorithm or _default_algorithm(shape)
    lowered = shape.macs / max(shape.out_channels, 1)  # im2col elements
    if algo == "winograd":
        return fp32_bytes(lowered * 0.25)
    if algo == "gemm":
        return fp32_bytes(lowered * 0.6)
    return fp32_bytes(lowered * 0.05)
