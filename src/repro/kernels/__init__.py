"""Kernel catalog: analytic FLOP/byte models of the GPU kernels that DNN
layers lower to (the cuDNN / cuBLAS / framework-kernel equivalents).

Each factory returns a :class:`~repro.kernels.base.Kernel` carrying the
kernel's name (matching the naming style seen in nvprof traces, so Tables 5
and 6 of the paper can be reproduced verbatim), FLOP count, DRAM traffic,
and efficiency ceiling.

Factories live in the submodules — several share names with their module
(``gemm.gemm``, ``elementwise.elementwise``), so import the submodules
rather than star-importing::

    from repro.kernels import gemm, conv, norm
    kernel = gemm.gemm(1024, 1024, 1024)
"""

from repro.kernels import (
    attention,
    base,
    conv,
    elementwise,
    gemm,
    misc,
    norm,
    rnn,
)
from repro.kernels.base import Kernel, KernelCategory

__all__ = [
    "Kernel",
    "KernelCategory",
    "attention",
    "base",
    "conv",
    "elementwise",
    "gemm",
    "misc",
    "norm",
    "rnn",
]
