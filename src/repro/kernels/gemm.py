"""Dense matrix-multiplication kernels (cuBLAS / MAGMA sgemm)."""

from __future__ import annotations

from repro.kernels.base import Kernel, KernelCategory, fp32_bytes

#: Large well-tiled SGEMM reaches ~85% of peak on Pascal-class parts.
_GEMM_MAX_COMPUTE_EFF = 0.85
_GEMM_MAX_MEMORY_EFF = 0.85
#: min(m, n) at which the tiling reaches half its peak efficiency.  SGEMM
#: tiles are ~128x64; a GEMM whose output matrix is narrower than a tile
#: leaves most of each SM's threads idle — the mechanism behind the low
#: FP32 utilization of per-timestep RNN GEMMs (paper Observation 7).
_TILE_HALF_DIM = 192


def _shape_efficiency(m: int, n: int) -> float:
    """Fraction of the efficiency ceiling reachable for this output shape."""
    narrow = min(m, n)
    return narrow / (narrow + _TILE_HALF_DIM)


def gemm(m: int, n: int, k: int, name: str = "magma_lds128_sgemm_kernel") -> Kernel:
    """C[m,n] = A[m,k] @ B[k,n].

    FLOPs: 2*m*n*k.  DRAM traffic assumes each operand is streamed once
    (cache-blocked implementation): A + B read, C written.
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError(f"gemm dims must be positive, got m={m} n={n} k={k}")
    flops = 2.0 * m * n * k
    traffic = fp32_bytes(m * k + k * n + m * n)
    return Kernel(
        name=name,
        category=KernelCategory.GEMM,
        flops=flops,
        bytes_accessed=traffic,
        max_compute_efficiency=_GEMM_MAX_COMPUTE_EFF * _shape_efficiency(m, n),
        max_memory_efficiency=_GEMM_MAX_MEMORY_EFF,
    )


def batched_gemm(
    batch: int, m: int, n: int, k: int, name: str = "cublas_sgemm_batched"
) -> Kernel:
    """``batch`` independent GEMMs fused into one launch (used by attention
    and by cuDNN's fused RNN implementations)."""
    if batch <= 0:
        raise ValueError("batch must be positive")
    base = gemm(m, n, k, name=name)
    return base.scaled(batch)
