"""Recurrent-cell pointwise kernels.

An LSTM step is two GEMMs (input and recurrent projections, emitted via
:mod:`repro.kernels.gemm` by the lowering pass) plus this pointwise kernel
that applies the gate nonlinearities and state update.  The defining
performance property — the reason the paper's Observations 5 and 7 find
RNN models at 2-3x lower GPU utilization — is that these kernels are *small*
and there are *hundreds of them per iteration* (sequence length x layers x
direction x passes), so training is launch- and dispatch-bound.
"""

from __future__ import annotations

from repro.kernels.base import Kernel, KernelCategory, fp32_bytes

_RNN_MAX_COMPUTE_EFF = 0.35
_RNN_MAX_MEMORY_EFF = 0.75


def lstm_cell_pointwise(batch: int, hidden: int, backward: bool = False) -> Kernel:
    """Gate nonlinearities + cell/hidden state update for one LSTM step.

    Four gates (sigmoid x3, tanh x1) plus the state arithmetic: ~30 FLOPs
    per hidden unit.  Traffic covers the 4*hidden pre-activations, previous
    cell state and the two outputs.
    """
    if batch <= 0 or hidden <= 0:
        raise ValueError("lstm cell needs positive batch and hidden size")
    elements = batch * hidden
    direction = "bw" if backward else "fw"
    factor = 1.5 if backward else 1.0  # backward also produces gate grads
    return Kernel(
        name=f"cudnn::detail::lstm_cell_{direction}_pointwise",
        category=KernelCategory.RNN_POINTWISE,
        flops=30.0 * elements * factor,
        bytes_accessed=fp32_bytes(7.0 * elements * factor),
        max_compute_efficiency=_RNN_MAX_COMPUTE_EFF,
        max_memory_efficiency=_RNN_MAX_MEMORY_EFF,
    )


def gru_cell_pointwise(batch: int, hidden: int, backward: bool = False) -> Kernel:
    """Gate nonlinearities + state update for one GRU step (three gates)."""
    if batch <= 0 or hidden <= 0:
        raise ValueError("gru cell needs positive batch and hidden size")
    elements = batch * hidden
    direction = "bw" if backward else "fw"
    factor = 1.5 if backward else 1.0
    return Kernel(
        name=f"cudnn::detail::gru_cell_{direction}_pointwise",
        category=KernelCategory.RNN_POINTWISE,
        flops=22.0 * elements * factor,
        bytes_accessed=fp32_bytes(5.5 * elements * factor),
        max_compute_efficiency=_RNN_MAX_COMPUTE_EFF,
        max_memory_efficiency=_RNN_MAX_MEMORY_EFF,
    )


def vanilla_rnn_pointwise(batch: int, hidden: int, backward: bool = False) -> Kernel:
    """tanh/ReLU update of a plain recurrent cell (Deep Speech 2 uses these
    rather than LSTMs — one source of its better GPU utilization)."""
    if batch <= 0 or hidden <= 0:
        raise ValueError("rnn cell needs positive batch and hidden size")
    elements = batch * hidden
    direction = "bw" if backward else "fw"
    factor = 1.5 if backward else 1.0
    return Kernel(
        name=f"cudnn::detail::rnn_cell_{direction}_pointwise",
        category=KernelCategory.RNN_POINTWISE,
        flops=6.0 * elements * factor,
        bytes_accessed=fp32_bytes(3.0 * elements * factor),
        max_compute_efficiency=_RNN_MAX_COMPUTE_EFF,
        max_memory_efficiency=_RNN_MAX_MEMORY_EFF,
    )
