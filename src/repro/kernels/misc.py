"""Embedding, optimizer, loss, and host/device transfer kernels."""

from __future__ import annotations

from repro.kernels.base import Kernel, KernelCategory, fp32_bytes


def embedding_lookup(tokens: int, embed_dim: int, backward: bool = False) -> Kernel:
    """Gather rows of an embedding table (forward) or scatter-add gradients
    into it (backward).  Gather/scatter access patterns cap bandwidth."""
    if tokens <= 0 or embed_dim <= 0:
        raise ValueError("embedding lookup needs positive dims")
    elements = tokens * embed_dim
    direction = "bw" if backward else "fw"
    return Kernel(
        name=f"embedding_{direction}_kernel",
        category=KernelCategory.EMBEDDING,
        flops=1.0 * elements if backward else 0.0,
        bytes_accessed=fp32_bytes(2.0 * elements),
        max_compute_efficiency=0.2,
        max_memory_efficiency=0.45,
    )


def sgd_update(parameters: int, momentum: bool = True) -> Kernel:
    """SGD (+momentum) weight update: read weight, grad (and velocity),
    write weight (and velocity)."""
    if parameters <= 0:
        raise ValueError("sgd update needs positive parameter count")
    passes = 5.0 if momentum else 3.0
    flops = (4.0 if momentum else 2.0) * parameters
    return Kernel(
        name="sgd_momentum_update_kernel" if momentum else "sgd_update_kernel",
        category=KernelCategory.OPTIMIZER,
        flops=flops,
        bytes_accessed=fp32_bytes(passes * parameters),
        max_compute_efficiency=0.25,
        max_memory_efficiency=0.85,
    )


def adam_update(parameters: int) -> Kernel:
    """Adam update: weight, grad, first and second moments in and out."""
    if parameters <= 0:
        raise ValueError("adam update needs positive parameter count")
    return Kernel(
        name="adam_update_kernel",
        category=KernelCategory.OPTIMIZER,
        flops=12.0 * parameters,
        bytes_accessed=fp32_bytes(7.0 * parameters),
        max_compute_efficiency=0.30,
        max_memory_efficiency=0.85,
    )


def cross_entropy_loss(batch: int, classes: int, backward: bool = False) -> Kernel:
    """Softmax cross-entropy over the output layer."""
    if batch <= 0 or classes <= 0:
        raise ValueError("loss needs positive dims")
    elements = batch * classes
    direction = "bw" if backward else "fw"
    return Kernel(
        name=f"softmax_cross_entropy_{direction}",
        category=KernelCategory.LOSS,
        flops=6.0 * elements,
        bytes_accessed=fp32_bytes(2.0 * elements),
        max_compute_efficiency=0.30,
        max_memory_efficiency=0.80,
    )


def ctc_loss(batch: int, time_steps: int, labels: int, vocab: int) -> Kernel:
    """Connectionist temporal classification loss (Deep Speech 2).

    The alpha-beta dynamic program is sequential over time — intrinsically
    low parallelism, hence the very low compute ceiling.
    """
    if batch <= 0 or time_steps <= 0 or labels <= 0 or vocab <= 0:
        raise ValueError("ctc loss needs positive dims")
    flops = 10.0 * batch * time_steps * labels
    traffic = fp32_bytes(batch * time_steps * (vocab + 2.0 * labels))
    return Kernel(
        name="ctc_loss_alpha_beta_kernel",
        category=KernelCategory.LOSS,
        flops=flops,
        bytes_accessed=traffic,
        max_compute_efficiency=0.10,
        max_memory_efficiency=0.40,
    )


def memcpy_h2d(num_bytes: float, pcie_bandwidth_gbs: float = 16.0) -> Kernel:
    """Host-to-device copy of one mini-batch of input data.

    Modelled as a memory-category kernel whose effective bandwidth is the
    PCIe link, expressed through the bytes/efficiency terms relative to the
    GPU's DRAM bandwidth at timing time; we approximate by scaling traffic
    so that ``bytes / (bw * eff)`` equals the PCIe transfer time for a
    243 GB/s-class device.
    """
    if num_bytes < 0:
        raise ValueError("memcpy needs non-negative byte count")
    # A P4000-class device: DRAM 243 GB/s, PCIe 3.0 x16 ~ 12.8 GB/s effective.
    dram_over_pcie = 243.0 / pcie_bandwidth_gbs
    return Kernel(
        name="[CUDA memcpy HtoD]",
        category=KernelCategory.MEMCPY,
        flops=0.0,
        bytes_accessed=num_bytes * dram_over_pcie,
        max_compute_efficiency=1.0,
        max_memory_efficiency=0.80,
    )


def memcpy_d2h(num_bytes: float, pcie_bandwidth_gbs: float = 16.0) -> Kernel:
    """Device-to-host copy (loss scalars, gradient exchange staging)."""
    kernel = memcpy_h2d(num_bytes, pcie_bandwidth_gbs)
    return Kernel(
        name="[CUDA memcpy DtoH]",
        category=KernelCategory.MEMCPY,
        flops=0.0,
        bytes_accessed=kernel.bytes_accessed,
        max_compute_efficiency=1.0,
        max_memory_efficiency=0.80,
    )
