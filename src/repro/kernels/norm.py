"""Batch-normalization kernels.

These are the stars of the paper's Tables 5 and 6: long-running cuDNN
kernels (``bn_fw_tr_1C11_kernel_new`` / ``bn_bw_1C11_kernel_new``) with FP32
utilization 20-45% — far below the model average — because they are
bandwidth-bound (a handful of FLOPs per element over multiple passes of the
feature map).
"""

from __future__ import annotations

from repro.kernels.base import Kernel, KernelCategory, fp32_bytes

#: BN does ~10 FLOPs/element forward but streams the map several times;
#: its compute ceiling w.r.t. peak FLOP/s is intrinsically low.
_BN_MAX_COMPUTE_EFF = 0.50
_BN_MAX_MEMORY_EFF = 0.80


def batchnorm_forward(elements: int, channels: int) -> Kernel:
    """cuDNN training-mode forward batch normalization.

    Two passes over the map (statistics, then normalize) plus per-channel
    parameter traffic.
    """
    if elements <= 0 or channels <= 0:
        raise ValueError("batchnorm needs positive elements and channels")
    flops = 10.0 * elements
    traffic = fp32_bytes(3.0 * elements + 4.0 * channels)
    return Kernel(
        name="cudnn::detail::bn_fw_tr_1C11_kernel_new",
        category=KernelCategory.NORM,
        flops=flops,
        bytes_accessed=traffic,
        max_compute_efficiency=_BN_MAX_COMPUTE_EFF,
        max_memory_efficiency=_BN_MAX_MEMORY_EFF,
    )


def batchnorm_backward(elements: int, channels: int) -> Kernel:
    """cuDNN backward batch normalization: reads the saved feature map, the
    incoming gradient, and writes the outgoing gradient — three maps of
    traffic plus reductions, ~15 FLOPs/element."""
    if elements <= 0 or channels <= 0:
        raise ValueError("batchnorm needs positive elements and channels")
    flops = 15.0 * elements
    traffic = fp32_bytes(4.0 * elements + 6.0 * channels)
    return Kernel(
        name="cudnn::detail::bn_bw_1C11_kernel_new",
        category=KernelCategory.NORM,
        flops=flops,
        bytes_accessed=traffic,
        max_compute_efficiency=_BN_MAX_COMPUTE_EFF,
        max_memory_efficiency=_BN_MAX_MEMORY_EFF,
    )


def layernorm_forward(elements: int) -> Kernel:
    """Layer normalization (Transformer); same bandwidth-bound character."""
    if elements <= 0:
        raise ValueError("layernorm needs positive elements")
    return Kernel(
        name="layer_norm_fwd_kernel",
        category=KernelCategory.NORM,
        flops=8.0 * elements,
        bytes_accessed=fp32_bytes(3.0 * elements),
        max_compute_efficiency=_BN_MAX_COMPUTE_EFF,
        max_memory_efficiency=_BN_MAX_MEMORY_EFF,
    )


def layernorm_backward(elements: int) -> Kernel:
    """Backward layer normalization."""
    if elements <= 0:
        raise ValueError("layernorm needs positive elements")
    return Kernel(
        name="layer_norm_bwd_kernel",
        category=KernelCategory.NORM,
        flops=12.0 * elements,
        bytes_accessed=fp32_bytes(4.0 * elements),
        max_compute_efficiency=_BN_MAX_COMPUTE_EFF,
        max_memory_efficiency=_BN_MAX_MEMORY_EFF,
    )
