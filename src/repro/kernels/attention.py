"""Attention kernels (Transformer).

Scaled dot-product attention lowers to two *large batched* GEMMs
(scores = Q@K^T, context = softmax(scores)@V) plus a batched softmax.  The
batched GEMMs are big enough to keep the GPU saturated — the mechanism
behind the paper's note (Observation 5) that the low-utilization problem is
specific to the recurrent *layer type*, not to machine translation: the
Transformer's attention layers do not suffer it.
"""

from __future__ import annotations

from repro.kernels.base import Kernel, KernelCategory
from repro.kernels.elementwise import softmax
from repro.kernels.gemm import batched_gemm


def attention_scores(
    batch_heads: int, seq_q: int, seq_k: int, head_dim: int, backward: bool = False
) -> Kernel:
    """Q@K^T (forward) or its gradient GEMMs (backward, ~2x work)."""
    kernel = batched_gemm(
        batch_heads,
        seq_q,
        seq_k,
        head_dim,
        name="attention_scores_batched_gemm" + ("_bw" if backward else ""),
    )
    if backward:
        kernel = kernel.scaled(2.0)
    return kernel


def attention_context(
    batch_heads: int, seq_q: int, seq_k: int, head_dim: int, backward: bool = False
) -> Kernel:
    """softmax(scores)@V (forward) or its gradient GEMMs (backward)."""
    kernel = batched_gemm(
        batch_heads,
        seq_q,
        head_dim,
        seq_k,
        name="attention_context_batched_gemm" + ("_bw" if backward else ""),
    )
    if backward:
        kernel = kernel.scaled(2.0)
    return kernel


def attention_softmax(batch_heads: int, seq_q: int, seq_k: int) -> Kernel:
    """Row-wise softmax over the score matrix, fused across heads."""
    base = softmax(batch_heads * seq_q, seq_k)
    return Kernel(
        name="attention_softmax_fused",
        category=KernelCategory.ATTENTION,
        flops=base.flops,
        bytes_accessed=base.bytes_accessed,
        max_compute_efficiency=base.max_compute_efficiency,
        max_memory_efficiency=base.max_memory_efficiency,
    )
