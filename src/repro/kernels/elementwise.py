"""Element-wise, pooling and softmax kernels.

All of these are bandwidth-bound streaming kernels: a few FLOPs per element,
one or two reads and a write per element.  In nvprof traces they appear under
framework-specific names (``Eigen::internal::EigenMetaKernel`` for
TensorFlow, ``mxnet_generic_kernel`` for MXNet) — the names are injected by
the framework personality, see :mod:`repro.frameworks`.
"""

from __future__ import annotations

from repro.kernels.base import Kernel, KernelCategory, fp32_bytes

_EW_MAX_COMPUTE_EFF = 0.30
_EW_MAX_MEMORY_EFF = 0.85


def elementwise(
    elements: int,
    flops_per_element: float = 1.0,
    reads: int = 1,
    writes: int = 1,
    name: str = "elementwise_kernel",
) -> Kernel:
    """Generic element-wise map over ``elements`` values."""
    if elements <= 0:
        raise ValueError("elementwise kernel needs positive element count")
    if reads < 0 or writes < 0:
        raise ValueError("reads/writes must be non-negative")
    return Kernel(
        name=name,
        category=KernelCategory.ELEMENTWISE,
        flops=flops_per_element * elements,
        bytes_accessed=fp32_bytes((reads + writes) * elements),
        max_compute_efficiency=_EW_MAX_COMPUTE_EFF,
        max_memory_efficiency=_EW_MAX_MEMORY_EFF,
    )


def activation_forward(elements: int, kind: str = "relu") -> Kernel:
    """Forward activation (ReLU/sigmoid/tanh)."""
    flops = {"relu": 1.0, "sigmoid": 4.0, "tanh": 5.0}.get(kind, 2.0)
    return elementwise(
        elements,
        flops_per_element=flops,
        name=f"cudnn::detail::activation_fw_4d_kernel<{kind}>",
    )


def activation_backward(elements: int, kind: str = "relu") -> Kernel:
    """Backward activation: reads activation + incoming grad, writes grad."""
    flops = {"relu": 1.0, "sigmoid": 3.0, "tanh": 3.0}.get(kind, 2.0)
    kernel = elementwise(
        elements,
        flops_per_element=flops,
        reads=2,
        writes=1,
        name=f"cudnn::detail::activation_bw_4d_kernel<{kind}>",
    )
    return kernel


def bias_add(elements: int, name: str = "BiasNHWCKernel") -> Kernel:
    """Broadcast bias addition."""
    return elementwise(elements, flops_per_element=1.0, name=name)


def dropout(elements: int) -> Kernel:
    """Dropout forward (mask generation + multiply)."""
    return elementwise(
        elements, flops_per_element=3.0, reads=1, writes=2, name="dropout_kernel"
    )


def pooling_forward(in_elements: int, out_elements: int, window: int = 9) -> Kernel:
    """Max/average pooling forward."""
    if in_elements <= 0 or out_elements <= 0:
        raise ValueError("pooling needs positive element counts")
    return Kernel(
        name="cudnn::detail::pooling_fw_4d_kernel",
        category=KernelCategory.POOLING,
        flops=out_elements * 1.0 * window,
        bytes_accessed=fp32_bytes(in_elements + out_elements),
        max_compute_efficiency=_EW_MAX_COMPUTE_EFF,
        max_memory_efficiency=_EW_MAX_MEMORY_EFF,
    )


def pooling_backward(in_elements: int, out_elements: int, window: int = 9) -> Kernel:
    """Pooling backward (scatter of gradients through the window argmax)."""
    if in_elements <= 0 or out_elements <= 0:
        raise ValueError("pooling needs positive element counts")
    return Kernel(
        name="cudnn::detail::pooling_bw_4d_kernel",
        category=KernelCategory.POOLING,
        flops=out_elements * 1.0 * window,
        bytes_accessed=fp32_bytes(2 * in_elements + out_elements),
        max_compute_efficiency=_EW_MAX_COMPUTE_EFF,
        max_memory_efficiency=0.6,  # scattered writes
    )


def softmax(rows: int, cols: int) -> Kernel:
    """Row-wise softmax (max, exp, sum, divide — four passes)."""
    if rows <= 0 or cols <= 0:
        raise ValueError("softmax needs positive dims")
    elements = rows * cols
    return Kernel(
        name="softmax_warp_forward",
        category=KernelCategory.ELEMENTWISE,
        flops=5.0 * elements,
        bytes_accessed=fp32_bytes(2.0 * elements),
        max_compute_efficiency=_EW_MAX_COMPUTE_EFF,
        max_memory_efficiency=_EW_MAX_MEMORY_EFF,
    )
