"""``tbd`` — command-line interface to the suite and toolchain.

Subcommands:

- ``tbd run MODEL [-f FW] [-b BATCH] [-g GPU]`` — one configuration, all
  headline metrics.
- ``tbd sweep MODEL [-f FW] [--jobs N] [--cache-dir DIR] [--no-cache]
  [--faults SPEC] [--transforms SPEC] [--schedule SPEC]`` — the model's
  mini-batch sweep, fanned out across worker processes and memoized in
  the content-addressed result cache; ``--faults`` runs every point
  under a fault scenario, ``--transforms`` under an optimization
  pipeline, and ``--schedule`` under an adaptive batch schedule (each
  its own cache dimension).
- ``tbd schedule show|compare`` — adaptive batch schedules: print a
  spec's canonical form and segment tiling, or race it against the
  fixed baseline on a cluster (optionally under a fault scenario).
- ``tbd tune MODEL [-f FW] [-b BATCH] [-g GPU]`` — the cost-model-guided
  autotuner: enumerate transform pipelines under the analytic OOM
  boundary, rank by modeled makespan, confirm the winner with the
  interleaved A/B runner, and persist it in the result cache.
- ``tbd faults run|show|demo`` — fault-injection scenarios: run one
  model through a scenario, describe a parsed spec, or the elastic
  recovery demo (crash mid-training, finish anyway).
- ``tbd cache stats|clear`` — inspect or empty the sweep result cache.
- ``tbd conformance run|list|shrink`` — the conformance harness: check
  the paper's physical invariants over the grid plus seeded fuzz cases,
  list the registries, or shrink one failing spec to a minimal
  counterexample.
- ``tbd bench run|compare|history|gate`` — statistical differential
  benchmarking: interleaved A/B runs under a seeded noise model, the
  ``BENCH_<suite>.json`` trajectory store, and the CI regression gate
  that fails only on statistically significant slowdowns.
- ``tbd serve run|submit|status|loadgen`` — sweep-as-a-service: the
  multi-tenant async benchmark server (bounded fair queue, sharded
  LRU result cache, streaming per-point events) and its deterministic
  load generator with a p50/p99 latency SLO gate.
- ``tbd analyze MODEL [-f FW] [-b BATCH]`` — the full Fig. 3 pipeline
  report, plus the optimization advisor's recommendations.
- ``tbd exhibit NAME [...]`` — regenerate tables/figures (``all`` = paper
  order).
- ``tbd observations`` — verify the 13 observations.
- ``tbd memory MODEL [-f FW] [-b BATCH]`` — the five-way breakdown.
- ``tbd distributed [-b BATCH]`` — the Fig. 10 configurations.
- ``tbd trace MODEL [-f FW] [-b BATCH]`` — run the pipeline under
  telemetry: span tree to stdout, JSONL events + Chrome trace + metrics
  archived under the runs directory.
- ``tbd runs list|show|diff`` — query the archived-run provenance store.
- ``tbd plan show MODEL [-f FW] [-b BATCH] [-g GPU]`` — dump one
  configuration's compiled execution plan (kernel stream, timeline,
  allocation trace) from :mod:`repro.plan`.
- ``tbd models`` / ``tbd frameworks`` / ``tbd datasets`` — the catalogs.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.cli import register_bench_command
from repro.conformance.cli import register_conformance_command
from repro.core.analysis import AnalysisPipeline
from repro.core.observations import verify_all
from repro.core.recommendations import advise
from repro.core.suite import standard_suite, TBDSuite
from repro.data.registry import dataset_catalog
from repro.engine.cli import (
    add_engine_arguments,
    add_faults_argument,
    add_schedule_argument,
    add_transforms_argument,
    register_cache_command,
)
from repro.schedule.cli import register_schedule_command
from repro.serve.cli import register_serve_command
from repro.tune.cli import register_tune_command
from repro.frameworks.registry import framework_catalog
from repro.hardware.devices import get_gpu
from repro.models.registry import extension_catalog, model_catalog


def _suite(args) -> TBDSuite:
    gpu = get_gpu(args.gpu) if getattr(args, "gpu", None) else None
    return TBDSuite(gpu=gpu) if gpu else standard_suite()


def _cmd_run(args) -> int:
    suite = _suite(args)
    metrics = suite.run(args.model, args.framework, args.batch)
    print(metrics.format_row())
    return 0


def _cmd_sweep(args) -> int:
    from repro.engine.cli import engine_from_args, format_engine_summary

    suite = _suite(args)
    engine = engine_from_args(args, gpu=suite.gpu)
    if args.schedule:
        from repro.schedule.spec import ScheduleSpecError, parse_schedule_spec

        try:
            parse_schedule_spec(args.schedule)
        except ScheduleSpecError as exc:
            print(f"bad schedule spec: {exc}")
            return 2
    if args.faults or args.transforms or args.schedule:
        points = engine.sweep(
            args.model,
            args.framework,
            faults=args.faults,
            transforms=args.transforms,
            schedule=args.schedule,
        )
    else:
        points = suite.sweep(args.model, args.framework, engine=engine)
    for point in points:
        if point.oom:
            print(f"b={point.batch_size:<6d} OOM")
        else:
            print(point.metrics.format_row())
    print(format_engine_summary(engine))
    return 0


def _cmd_analyze(args) -> int:
    gpu = get_gpu(args.gpu) if args.gpu else None
    kwargs = {"gpu": gpu} if gpu else {}
    report = AnalysisPipeline(args.model, args.framework, **kwargs).run(args.batch)
    print(report.summary())
    recommendations = advise(report)
    if recommendations:
        print("\nrecommendations:")
        for recommendation in recommendations:
            print(f"  {recommendation}")
    else:
        print("\nno optimization recommendations triggered")
    return 0


def _render_exhibit(names) -> int:
    from repro.experiments import ALL_EXPERIMENTS, table5_6

    order = (
        "table1", "fig1_fig3", "table2_3", "fig2", "table4", "fig4", "fig5",
        "fig6", "table5_6", "fig7", "fig8", "fig9", "fig10",
    )
    wanted = list(order) if names == ["all"] else names
    unknown = [name for name in wanted if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown exhibit(s): {unknown}; known: {sorted(ALL_EXPERIMENTS)}")
        return 2
    for name in wanted:
        module = ALL_EXPERIMENTS[name]
        print("=" * 72)
        print(name)
        print("=" * 72)
        print(module.render_both() if module is table5_6 else module.render())
        print()
    return 0


def _cmd_observations(_args) -> int:
    results = verify_all()
    failures = 0
    for result in results:
        mark = "PASS" if result.holds else "FAIL"
        failures += 0 if result.holds else 1
        print(f"[{mark}] Obs {result.number:2d}: {result.title}")
        print(f"       {result.evidence}")
    return 1 if failures else 0


def _cmd_memory(args) -> int:
    from repro.profiling.memory_profiler import MemoryProfiler

    gpu = get_gpu(args.gpu) if args.gpu else None
    profile = MemoryProfiler(gpu=gpu).profile(
        args.model, args.framework, args.batch or _suite(args).model(args.model).reference_batch
    )
    print(profile.format_row())
    return 0


def _cmd_distributed(args) -> int:
    from repro.distributed import DataParallelTrainer
    from repro.distributed.topology import standard_configurations

    batch = args.batch or 32
    for label, cluster in standard_configurations().items():
        trainer = DataParallelTrainer(args.model, args.framework, cluster)
        profile = trainer.run_iteration(batch)
        print(
            f"{label:22s} {profile.throughput:9.1f} samples/s  "
            f"(eff {profile.scaling_efficiency * 100:5.1f}%, "
            f"comm {profile.communication_fraction * 100:4.1f}%)"
        )
    return 0


def _cmd_models(_args) -> int:
    for spec in model_catalog().values():
        frameworks = ",".join(spec.frameworks)
        print(
            f"{spec.key:16s} {spec.application:28s} layers={spec.paper_layer_count:<4d} "
            f"[{frameworks}]"
        )
    print("-- extensions --")
    for spec in extension_catalog().values():
        print(f"{spec.key:16s} {spec.application:28s} {spec.notes[:50]}")
    return 0


def _cmd_frameworks(_args) -> int:
    for framework in framework_catalog().values():
        print(
            f"{framework.name:12s} v{framework.version:8s} "
            f"dispatch={framework.dispatch_cost_s * 1e6:.0f}us "
            f"pool={framework.pool_overhead:.2f} "
            f"momentum={framework.momentum_allocation.value}"
        )
    return 0


def _cmd_inspect(args) -> int:
    from repro.models.inspect import render_summary

    print(render_summary(args.model, args.batch))
    return 0


def _cmd_report(args) -> int:
    from repro.core.html_report import write_report

    write_report(args.output, observations=not args.no_observations)
    print(f"wrote {args.output}")
    return 0


def _cmd_compare(args) -> int:
    from repro.profiling.comparison import ab_compare

    report = ab_compare(
        args.model, args.framework_a, args.framework_b, args.batch
    )
    print(
        f"{report.label_a}: {report.mean_a:.1f} "
        f"[{report.ci_a[0]:.1f}, {report.ci_a[1]:.1f}]  vs  "
        f"{report.label_b}: {report.mean_b:.1f} "
        f"[{report.ci_b[0]:.1f}, {report.ci_b[1]:.1f}]"
    )
    print(report.verdict)
    return 0


def _cmd_trace(args) -> int:
    from repro.observability.runner import traced_run

    gpu = get_gpu(args.gpu) if args.gpu else None
    result = traced_run(
        args.model,
        args.framework,
        batch_size=args.batch,
        gpu=gpu,
        archive=not args.no_archive,
        archive_root=args.dir,
    )
    print(result.tracer.render_tree())
    print()
    if result.run_dir:
        print(f"archived run {result.manifest.run_id} -> {result.run_dir}")
        for kind, name in sorted(result.artifacts.items()):
            print(f"  {kind:10s} {name}")
    else:
        print(f"run {result.manifest.run_id} (not archived)")
    return 0


def _cmd_runs(args) -> int:
    from repro.observability.archive import RunArchive

    archive = RunArchive(args.dir)
    if args.runs_command == "list":
        runs = archive.list()
        if not runs:
            print(f"no archived runs under {archive.root}")
            return 0
        for run_id in runs:
            manifest = archive.load(run_id)
            throughput = manifest.metrics.get("throughput", 0.0)
            print(
                f"{run_id:36s} {manifest.device:14s} {throughput:9.1f} samples/s  "
                f"{manifest.created_at}"
            )
        return 0
    if args.runs_command == "show":
        manifest = archive.load(args.run_id)
        print(manifest.to_json(), end="")
        return 0
    # diff
    drifts = archive.diff(args.baseline, args.candidate)
    print(archive.delta_table(args.baseline, args.candidate))
    if drifts:
        print(f"\n{len(drifts)} metric(s) outside tolerance:")
        for drift in drifts:
            print(f"  {drift}")
        return 1
    print("\nall headline metrics within tolerance")
    return 0


def _cmd_plan(args) -> int:
    from repro.training.session import TrainingSession

    gpu = get_gpu(args.gpu) if args.gpu else None
    kwargs = {"gpu": gpu} if gpu else {}
    session = TrainingSession(args.model, args.framework, **kwargs)
    if getattr(args, "symbolic", False):
        from repro.plan.symbolic import TraceEscape

        try:
            session.compile(args.batch)  # trace + specialize the region
            print(session._symbolic_set().describe())
        except TraceEscape as exc:
            print(
                f"{args.model} on {args.framework} escapes the symbolic "
                f"tracer ({exc}); showing the concrete plan instead\n"
            )
            print(session.compile(args.batch).describe())
        return 0
    plan = session.compile(args.batch)
    print(plan.describe())
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import (
        FaultSpecError,
        FaultTolerantTrainer,
        UnrecoverableFaultError,
        parse_fault_spec,
    )

    if args.faults_command == "show":
        try:
            scenario = parse_fault_spec(args.spec)
        except FaultSpecError as exc:
            print(f"bad fault spec: {exc}")
            return 2
        print(scenario.describe())
        return 0

    if args.faults_command == "demo":
        return _faults_demo(args)

    # run
    try:
        scenario = parse_fault_spec(args.spec)
    except FaultSpecError as exc:
        print(f"bad fault spec: {exc}")
        return 2
    trainer = FaultTolerantTrainer(
        args.model,
        args.framework,
        scenario.cluster,
        args.batch or 16,
        plan=scenario.plan,
    )
    try:
        result = trainer.run(steps=scenario.steps)
    except UnrecoverableFaultError as exc:
        print(f"UNRECOVERABLE ({exc.kind} at step {exc.step}): {exc}")
        return 1
    print(scenario.describe())
    print(
        f"{result.model} on {result.framework}, {result.configuration}, "
        f"b={result.per_gpu_batch}"
    )
    print(
        f"  {result.steps_completed:g} step(s) in {result.wall_clock_s:.2f}s "
        f"({result.lost_s:.2f}s lost to faults)"
    )
    print(
        f"  throughput {result.throughput:.1f} vs fault-free "
        f"{result.baseline_throughput:.1f} samples/s "
        f"(slowdown x{result.slowdown:.3f})"
    )
    if result.shrank:
        print(
            f"  elastic shrink: {result.initial_machines} -> "
            f"{result.final_machines} machine(s)"
        )
    print(result.event_log())
    return 0


def _faults_demo(args) -> int:
    """Fig.-10-style elastic-recovery demo: lose a machine mid-training
    and still reach the accuracy target, just later."""
    from repro.distributed.time_to_accuracy import elastic_time_to_accuracy
    from repro.faults import (
        AllReduceTimeout,
        FaultPlan,
        StragglerFault,
        WorkerCrash,
    )
    from repro.hardware.cluster import parse_configuration
    from repro.observability.tracer import tracing

    cluster = parse_configuration("4M1G", fabric="infiniband")
    plan = FaultPlan(
        events=(
            StragglerFault(worker=1, factor=1.4, start_step=10, end_step=25),
            AllReduceTimeout(step=20, failures=2, timeout_s=0.5),
            WorkerCrash(step=30, machines=1),
        ),
        seed=args.seed,
    )
    with tracing() as tracer:
        point = elastic_time_to_accuracy(
            args.model, args.framework, cluster, args.batch or 16, plan=plan
        )
    result = point.result
    print(f"elastic-recovery demo: {args.model} on {args.framework}, {cluster.name}")
    print(plan.describe())
    print(
        f"  time-to-accuracy {point.time_to_accuracy_s:.1f}s vs fault-free "
        f"{point.baseline_time_s:.1f}s (x{point.overhead:.3f})"
    )
    print(
        f"  machines {result.initial_machines} -> {result.final_machines}, "
        f"{result.samples:.0f} samples over {result.steps_completed:.1f} step(s)"
    )
    print(result.event_log())
    span_names = set()

    def collect(record):
        span_names.add(record.name)
        for child in record.children:
            collect(child)

    for root in tracer.roots:
        collect(root)
    interesting = sorted(
        name
        for name in span_names
        if name.startswith("fault.") or name.startswith("recovery.")
    )
    print(f"  trace spans: {', '.join(interesting)}")
    return 0


def _cmd_datasets(_args) -> int:
    for dataset in dataset_catalog().values():
        samples = f"{dataset.num_samples:,}" if dataset.num_samples else "N/A"
        print(f"{dataset.key:22s} {samples:>10s}  {dataset.size_description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``tbd`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="tbd", description="TBD: Training Benchmark for DNNs (reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_config(p, batch_default=None):
        p.add_argument("model")
        p.add_argument("-f", "--framework", default="tensorflow")
        p.add_argument("-b", "--batch", type=int, default=batch_default)
        p.add_argument("-g", "--gpu", default=None, help="p4000 | 'titan xp' | gtx580")

    run = sub.add_parser("run", help="run one configuration")
    add_config(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="mini-batch sweep (parallel + cached)")
    sweep.add_argument("model")
    sweep.add_argument("-f", "--framework", default="tensorflow")
    sweep.add_argument("-g", "--gpu", default=None)
    add_engine_arguments(sweep)
    add_faults_argument(sweep)
    add_transforms_argument(sweep)
    add_schedule_argument(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    register_cache_command(sub)
    register_conformance_command(sub)
    register_bench_command(sub)
    register_tune_command(sub)
    register_serve_command(sub)
    register_schedule_command(sub)

    analyze = sub.add_parser("analyze", help="full analysis pipeline + advice")
    add_config(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    exhibit = sub.add_parser("exhibit", help="regenerate tables/figures")
    exhibit.add_argument("names", nargs="+", help="fig4 table5_6 ... or 'all'")
    exhibit.set_defaults(func=lambda args: _render_exhibit(args.names))

    observations = sub.add_parser("observations", help="verify the 13 observations")
    observations.set_defaults(func=_cmd_observations)

    memory = sub.add_parser("memory", help="five-way memory breakdown")
    add_config(memory)
    memory.set_defaults(func=_cmd_memory)

    distributed = sub.add_parser("distributed", help="Fig. 10 configurations")
    distributed.add_argument("model", nargs="?", default="resnet-50")
    distributed.add_argument("-f", "--framework", default="mxnet")
    distributed.add_argument("-b", "--batch", type=int, default=None)
    distributed.set_defaults(func=_cmd_distributed)

    inspect = sub.add_parser("inspect", help="per-layer model summary")
    inspect.add_argument("model")
    inspect.add_argument("-b", "--batch", type=int, default=None)
    inspect.set_defaults(func=_cmd_inspect)

    report = sub.add_parser("report", help="write the full HTML report")
    report.add_argument("-o", "--output", default="tbd_report.html")
    report.add_argument("--no-observations", action="store_true")
    report.set_defaults(func=_cmd_report)

    trace = sub.add_parser("trace", help="instrumented run: span tree + archive")
    add_config(trace)
    trace.add_argument(
        "--dir", default=None, help="runs directory (default ./runs or $TBD_RUNS_DIR)"
    )
    trace.add_argument(
        "--no-archive", action="store_true", help="print the trace without archiving"
    )
    trace.set_defaults(func=_cmd_trace)

    runs = sub.add_parser("runs", help="query the run archive")
    runs.add_argument(
        "--dir", default=None, help="runs directory (default ./runs or $TBD_RUNS_DIR)"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser("list", help="list archived runs")
    show = runs_sub.add_parser("show", help="print one run's manifest")
    show.add_argument("run_id")
    diff = runs_sub.add_parser("diff", help="headline-metric deltas of two runs")
    diff.add_argument("baseline")
    diff.add_argument("candidate")
    runs.set_defaults(func=_cmd_runs)

    plan = sub.add_parser("plan", help="inspect compiled execution plans")
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    plan_show = plan_sub.add_parser("show", help="dump one configuration's plan")
    add_config(plan_show)
    plan_show.add_argument(
        "--symbolic",
        action="store_true",
        help="show the traced symbolic plan set (guard regions, closed-form "
        "FLOP/byte/memory polynomials) instead of one concrete plan",
    )
    plan.set_defaults(func=_cmd_plan)

    faults = sub.add_parser(
        "faults", help="fault-injection scenarios and elastic recovery"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_run = faults_sub.add_parser(
        "run", help="run one model through a fault scenario"
    )
    faults_run.add_argument("spec", help="fault scenario, e.g. 'crash=1@30; steps=60'")
    faults_run.add_argument("model", nargs="?", default="resnet-50")
    faults_run.add_argument("-f", "--framework", default="mxnet")
    faults_run.add_argument("-b", "--batch", type=int, default=None)
    faults_show = faults_sub.add_parser("show", help="parse and describe a scenario")
    faults_show.add_argument("spec")
    faults_demo = faults_sub.add_parser(
        "demo", help="elastic-recovery demo: crash mid-training, finish anyway"
    )
    faults_demo.add_argument("model", nargs="?", default="resnet-50")
    faults_demo.add_argument("-f", "--framework", default="mxnet")
    faults_demo.add_argument("-b", "--batch", type=int, default=None)
    faults_demo.add_argument("--seed", type=int, default=0)
    faults.set_defaults(func=_cmd_faults)

    compare = sub.add_parser("compare", help="A/B framework comparison")
    compare.add_argument("model")
    compare.add_argument("framework_a")
    compare.add_argument("framework_b")
    compare.add_argument("-b", "--batch", type=int, required=True)
    compare.set_defaults(func=_cmd_compare)

    for name, handler in (
        ("models", _cmd_models),
        ("frameworks", _cmd_frameworks),
        ("datasets", _cmd_datasets),
    ):
        lister = sub.add_parser(name, help=f"list {name}")
        lister.set_defaults(func=handler)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
