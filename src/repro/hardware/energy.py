"""Energy and efficiency modelling.

The paper motivates its hardware-sensitivity study with "different GPU
models provide a tradeoff between cost, performance, area and power"
(Section 4.1) but evaluates performance only.  This module supplies the
power axis: a utilization-scaled board-power model,

    P = idle + (tdp - idle) x gpu_utilization

integrated over iteration time to give energy per iteration, samples per
joule, and — combined with the convergence curves — energy-to-accuracy.
TDPs are the boards' published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.devices import GPUSpec

#: Published board TDPs (watts).
TDP_WATTS = {
    "Quadro P4000": 105.0,
    "TITAN Xp": 250.0,
    "GeForce GTX 580": 244.0,
}

#: Idle draw as a fraction of TDP (Pascal boards idle at ~10-15%).
_IDLE_FRACTION = 0.12

#: Host-side power charged to the run (CPU + memory + NIC share), watts.
HOST_POWER_WATTS = 120.0


def tdp_of(gpu: GPUSpec) -> float:
    """Board TDP in watts.

    Raises:
        KeyError: for devices without a published TDP in the table.
    """
    if gpu.name not in TDP_WATTS:
        known = ", ".join(sorted(TDP_WATTS))
        raise KeyError(f"no TDP on record for {gpu.name!r}; known: {known}")
    return TDP_WATTS[gpu.name]


@dataclass(frozen=True)
class EnergyProfile:
    """Energy accounting for one training configuration."""

    model: str
    device: str
    batch_size: int
    gpu_power_watts: float
    total_power_watts: float
    energy_per_iteration_j: float
    samples_per_joule: float
    throughput: float

    @property
    def joules_per_sample(self) -> float:
        return 1.0 / self.samples_per_joule if self.samples_per_joule else float("inf")


def energy_profile(profile, gpu: GPUSpec, include_host: bool = True) -> EnergyProfile:
    """Derive energy metrics from an
    :class:`~repro.training.session.IterationProfile`.

    The GPU draws idle power for the whole iteration and the active delta
    only while busy (utilization-scaled); host power is constant.
    """
    tdp = tdp_of(gpu)
    idle = _IDLE_FRACTION * tdp
    gpu_power = idle + (tdp - idle) * profile.gpu_utilization
    total_power = gpu_power + (HOST_POWER_WATTS if include_host else 0.0)
    energy = total_power * profile.iteration_time_s
    return EnergyProfile(
        model=profile.model,
        device=gpu.name,
        batch_size=profile.batch_size,
        gpu_power_watts=gpu_power,
        total_power_watts=total_power,
        energy_per_iteration_j=energy,
        samples_per_joule=profile.effective_samples / energy,
        throughput=profile.throughput,
    )


def energy_to_accuracy_j(
    model_key: str, energy: EnergyProfile, target: float
) -> float:
    """Joules to reach ``target`` on the model's convergence curve."""
    from repro.training.convergence import time_to_metric

    seconds = time_to_metric(model_key, energy.throughput, target)
    return seconds * energy.total_power_watts


def perf_per_watt_comparison(model: str, framework: str, batch: int, devices) -> list:
    """Samples/joule for one configuration across several devices —
    the missing column of the paper's Fig. 8."""
    from repro.training.session import TrainingSession

    results = []
    for gpu in devices:
        profile = TrainingSession(model, framework, gpu=gpu).run_iteration(batch)
        results.append(energy_profile(profile, gpu))
    return results
