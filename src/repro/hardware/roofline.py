"""Roofline kernel-timing model.

Every GPU kernel is characterised by its FLOP count, its DRAM traffic and an
*efficiency profile* (how close it gets to peak compute / peak bandwidth as a
function of how much work it carries).  The execution time of a kernel on a
device is then

    t = max(flops / (peak_flops * eff_c), bytes / (peak_bw * eff_m))
        + launch_latency

which is the standard roofline model plus a fixed launch cost.  This model is
deliberately simple: the paper's phenomena — batch-size scaling, launch-bound
RNNs, memory-bound batch-normalization kernels, Titan Xp under-utilization —
are all first-order consequences of exactly these terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.devices import GPUSpec
from repro.kernels.base import Kernel


@dataclass(frozen=True)
class KernelTiming:
    """Resolved timing of one kernel launch on a specific device."""

    kernel: Kernel
    duration_s: float
    compute_time_s: float
    memory_time_s: float
    launch_latency_s: float

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_time_s >= self.compute_time_s

    @property
    def fp32_utilization(self) -> float:
        """Fraction of the device's peak FLOP/s this kernel achieved while
        running (paper Eq. 2, applied per-kernel)."""
        if self.duration_s <= 0.0:
            return 0.0
        achieved = self.kernel.flops / self.duration_s
        return achieved / self._peak_flops

    # Stored at construction so the property needs no device handle.
    _peak_flops: float = 0.0


class RooflineModel:
    """Maps :class:`~repro.kernels.base.Kernel` descriptions to execution
    times on a :class:`~repro.hardware.devices.GPUSpec`.

    The occupancy model: a kernel pays a fixed *ramp* before its blocks fill
    every SM and the roofline rate is reached,

        t = max(flops / (peak_flops * eff_c), bytes / (peak_bw * eff_m))
            + ramp + launch_latency

    The ramp scales with the device's parallel width relative to the P4000
    baseline: a wider, faster GPU (Titan Xp) needs more wavefronts in flight
    before it saturates, so the same kernel stream utilizes it *less* — the
    mechanism behind the paper's Observation 10.  The additive form keeps
    execution time strictly monotone in work (a kernel with more FLOPs and
    traffic is never faster), which the multiplicative "efficiency ramps"
    commonly used for this are not.
    """

    #: Occupancy ramp of the P4000 (seconds); wider devices scale it up.
    _BASE_OCCUPANCY_RAMP_S = 10e-6
    _BASE_PEAK_FLOPS = 1792 * 1480.0e6 * 2.0  # the P4000 reference width

    def __init__(self, device: GPUSpec):
        self.device = device
        self._ramp_s = self._BASE_OCCUPANCY_RAMP_S * (
            device.peak_fp32_flops / self._BASE_PEAK_FLOPS
        ) ** 0.5

    def time_kernel(self, kernel: Kernel) -> KernelTiming:
        """Resolve one kernel's execution time on this device."""
        eff_c = kernel.max_compute_efficiency
        eff_m = kernel.max_memory_efficiency

        if kernel.flops > 0 and eff_c > 0:
            t_compute = kernel.flops / (self.device.peak_fp32_flops * eff_c)
        else:
            t_compute = 0.0
        if kernel.bytes_accessed > 0 and eff_m > 0:
            t_memory = kernel.bytes_accessed / (
                self.device.memory_bandwidth_bytes * eff_m
            )
        else:
            t_memory = 0.0

        launch = self.device.kernel_launch_latency_s
        duration = max(t_compute, t_memory) + self._ramp_s + launch
        return KernelTiming(
            kernel=kernel,
            duration_s=duration,
            compute_time_s=t_compute,
            memory_time_s=t_memory,
            launch_latency_s=launch,
            _peak_flops=self.device.peak_fp32_flops,
        )

    def time_kernels(self, kernels) -> list:
        """Vectorised convenience: time a sequence of kernels."""
        return [self.time_kernel(k) for k in kernels]

    def arithmetic_intensity_breakeven(self) -> float:
        """FLOP/byte ratio above which kernels are compute bound on this
        device (at max efficiency); useful for analysis and tests."""
        return self.device.peak_fp32_flops / self.device.memory_bandwidth_bytes


def speed_of_light_time(kernel: Kernel, device: GPUSpec) -> float:
    """Lower bound on a kernel's time assuming perfect efficiency and zero
    launch cost.  Used by the analysis pipeline to report optimization
    headroom (paper Section 3.4.3, FP32-utilization discussion)."""
    t_c = kernel.flops / device.peak_fp32_flops if kernel.flops else 0.0
    t_m = (
        kernel.bytes_accessed / device.memory_bandwidth_bytes
        if kernel.bytes_accessed
        else 0.0
    )
    return max(t_c, t_m)


def efficiency_gap(timing: KernelTiming, device: GPUSpec) -> float:
    """Multiplicative speed-up available if the kernel ran at the roofline
    speed-of-light (>= 1.0)."""
    ideal = speed_of_light_time(timing.kernel, device)
    if ideal <= 0.0:
        return 1.0
    return timing.duration_s / ideal


def estimate_max_batch_size(
    bytes_per_sample: float, fixed_bytes: float, device: GPUSpec
) -> int:
    """Largest mini-batch whose footprint fits in device memory, given a
    linear memory model ``fixed + batch * per_sample`` (paper Obs. 12)."""
    available = device.memory_bytes - fixed_bytes
    if available <= 0 or bytes_per_sample <= 0:
        return 0
    return int(math.floor(available / bytes_per_sample))
