"""GPU memory allocator with the paper's five-way allocation tagging.

The paper's memory profilers (Section 3.4.3) classify every allocation as
one of: **weights**, **weight gradients**, **feature maps**, **workspace**,
or **dynamic** (data structures a framework allocates *during* iterations,
e.g. MXNet's momentum buffers).  Consumption is reported as the maximum
amount ever allocated per class.  This module implements exactly that
accounting, plus capacity enforcement so that over-large mini-batches fail
with an out-of-memory error just as they do on a real 8 GB card.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AllocationTag(enum.Enum):
    """The five data-structure classes of the paper's memory breakdown."""

    WEIGHTS = "weights"
    WEIGHT_GRADIENTS = "weight gradients"
    FEATURE_MAPS = "feature maps"
    WORKSPACE = "workspace"
    DYNAMIC = "dynamic"


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the device's memory capacity."""


@dataclass
class Allocation:
    """One live allocation."""

    handle: int
    num_bytes: float
    tag: AllocationTag
    label: str = ""


@dataclass
class MemorySnapshot:
    """Peak bytes per allocation class (what Fig. 9 plots)."""

    peak_by_tag: dict
    peak_total: float

    def fraction(self, tag: AllocationTag) -> float:
        """Peak share of one class relative to the sum of class peaks."""
        total = sum(self.peak_by_tag.values())
        if total <= 0:
            return 0.0
        return self.peak_by_tag.get(tag, 0.0) / total

    @property
    def feature_map_fraction(self) -> float:
        """Convenience accessor for the paper's headline number (Obs. 11)."""
        return self.fraction(AllocationTag.FEATURE_MAPS)


class GPUMemoryAllocator:
    """Capacity-checked allocator with per-tag peak tracking.

    ``pool_overhead`` models a framework's allocator slack (pool rounding,
    fragmentation): each request is charged ``bytes * pool_overhead`` against
    device capacity.  TensorFlow's BFC allocator is tighter than MXNet's
    pooled allocator, which is one mechanism behind the paper's note that
    TensorFlow fits mini-batch 128 for Seq2Seq where MXNet tops out at 64.
    """

    def __init__(self, capacity_bytes: float, pool_overhead: float = 1.0):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if pool_overhead < 1.0:
            raise ValueError("pool overhead cannot be below 1.0")
        self.capacity_bytes = float(capacity_bytes)
        self.pool_overhead = float(pool_overhead)
        self._allocations: dict = {}
        self._next_handle = 1
        self._current_by_tag: dict = {tag: 0.0 for tag in AllocationTag}
        self._peak_by_tag: dict = {tag: 0.0 for tag in AllocationTag}
        self._peak_total = 0.0

    @property
    def allocated_bytes(self) -> float:
        """Bytes currently charged against capacity (incl. pool overhead)."""
        return sum(self._current_by_tag.values())

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, num_bytes: float, tag: AllocationTag, label: str = "") -> int:
        """Reserve ``num_bytes`` (plus pool overhead) or raise
        :class:`OutOfMemoryError`.  Returns an opaque handle for ``free``."""
        if num_bytes < 0:
            raise ValueError("allocation size cannot be negative")
        charged = num_bytes * self.pool_overhead
        if self.allocated_bytes + charged > self.capacity_bytes:
            raise OutOfMemoryError(
                f"allocating {charged / 1024**2:.1f} MiB ({tag.value}"
                f"{': ' + label if label else ''}) exceeds capacity: "
                f"{self.allocated_bytes / 1024**2:.1f} MiB in use of "
                f"{self.capacity_bytes / 1024**2:.1f} MiB"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = Allocation(handle, charged, tag, label)
        self._current_by_tag[tag] += charged
        if self._current_by_tag[tag] > self._peak_by_tag[tag]:
            self._peak_by_tag[tag] = self._current_by_tag[tag]
        if self.allocated_bytes > self._peak_total:
            self._peak_total = self.allocated_bytes
        return handle

    def free(self, handle: int) -> None:
        """Release a previous allocation."""
        allocation = self._allocations.pop(handle, None)
        if allocation is None:
            raise KeyError(f"unknown or already-freed allocation handle {handle}")
        self._current_by_tag[allocation.tag] -= allocation.num_bytes

    def current_bytes(self, tag: AllocationTag) -> float:
        """Live bytes for one class."""
        return self._current_by_tag[tag]

    def snapshot(self) -> MemorySnapshot:
        """Peak-per-class snapshot — the quantity the paper's Fig. 9 plots."""
        return MemorySnapshot(
            peak_by_tag=dict(self._peak_by_tag), peak_total=self._peak_total
        )

    def reset_peaks(self) -> None:
        """Restart peak tracking from the current live state (used after the
        warm-up phase so auto-tuning probes don't pollute the profile)."""
        self._peak_by_tag = dict(self._current_by_tag)
        self._peak_total = self.allocated_bytes
