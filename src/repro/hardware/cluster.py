"""Machine and cluster topology descriptions.

The paper's testbed: a 16-machine cluster, each node a 28-core Xeon with one
to four Quadro P4000 GPUs, connected by both Ethernet and 100 Gb/s
InfiniBand.  Configurations in Fig. 10 are named ``<m>M<g>G`` (machines x
GPUs-per-machine), e.g. ``2M1G (ethernet)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.hardware.devices import CPUSpec, GPUSpec, QUADRO_P4000, XEON_E5_2680
from repro.hardware.interconnect import (
    ETHERNET_10G,
    INFINIBAND_100G,
    Interconnect,
    PCIE_3_X16,
    get_interconnect,
)


@dataclass(frozen=True)
class MachineSpec:
    """One cluster node: a CPU host plus ``gpu_count`` identical GPUs behind
    an intra-machine link (PCIe)."""

    cpu: CPUSpec = XEON_E5_2680
    gpu: GPUSpec = QUADRO_P4000
    gpu_count: int = 1
    intra_link: Interconnect = PCIE_3_X16

    def __post_init__(self) -> None:
        if self.gpu_count < 0:
            raise ValueError("gpu_count cannot be negative")

    @property
    def total_gpus(self) -> int:
        return self.gpu_count


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`MachineSpec` nodes joined by one
    inter-machine fabric."""

    machine: MachineSpec = MachineSpec()
    machine_count: int = 1
    inter_link: Interconnect = INFINIBAND_100G

    def __post_init__(self) -> None:
        if self.machine_count <= 0:
            raise ValueError("machine_count must be positive")

    @property
    def total_gpus(self) -> int:
        return self.machine_count * self.machine.gpu_count

    @property
    def is_distributed(self) -> bool:
        return self.machine_count > 1

    @property
    def name(self) -> str:
        """Paper-style configuration label, e.g. ``2M1G (10GbE)``."""
        label = f"{self.machine_count}M{self.machine.gpu_count}G"
        if self.is_distributed:
            label += f" ({self.inter_link.name})"
        return label

    def shrink(self, machines: int = 1) -> "ClusterSpec":
        """The elastic-recovery cluster after losing ``machines`` nodes.

        Raises:
            ValueError: if no machines would remain — the caller decides
                whether that is an :class:`~repro.faults.UnrecoverableFaultError`.
        """
        if machines < 0:
            raise ValueError("cannot shrink by a negative machine count")
        remaining = self.machine_count - machines
        if remaining < 1:
            raise ValueError(
                f"shrinking {self.machine_count} machine(s) by {machines} "
                "leaves an empty cluster"
            )
        if machines == 0:
            return self
        return ClusterSpec(
            machine=self.machine,
            machine_count=remaining,
            inter_link=self.inter_link,
        )

    def with_degraded_link(
        self,
        bandwidth_factor: float = 1.0,
        packet_loss: float = 0.0,
        extra_latency_s: float = 0.0,
    ) -> "ClusterSpec":
        """The cluster seen through a degraded inter-machine fabric (the
        identity degradation returns ``self`` so a zero-magnitude link
        fault stays byte-identical to none)."""
        link = self.inter_link.degraded(
            bandwidth_factor=bandwidth_factor,
            packet_loss=packet_loss,
            extra_latency_s=extra_latency_s,
        )
        if link is self.inter_link:
            return self
        return ClusterSpec(
            machine=self.machine, machine_count=self.machine_count, inter_link=link
        )


_CONFIG_RE = re.compile(r"^(\d+)M(\d+)G$", re.IGNORECASE)


def parse_configuration(
    spec: str,
    fabric: str = "infiniband",
    gpu: GPUSpec = QUADRO_P4000,
    cpu: CPUSpec = XEON_E5_2680,
) -> ClusterSpec:
    """Build a :class:`ClusterSpec` from a paper-style label.

    >>> parse_configuration("1M4G").total_gpus
    4
    >>> parse_configuration("2M1G", fabric="ethernet").inter_link.name
    '10GbE'
    """
    match = _CONFIG_RE.match(spec.strip())
    if not match:
        raise ValueError(
            f"bad configuration {spec!r}; expected '<machines>M<gpus>G' "
            "like '1M4G' or '2M1G'"
        )
    machines, gpus = int(match.group(1)), int(match.group(2))
    if machines <= 0 or gpus <= 0:
        raise ValueError(f"configuration {spec!r} needs positive counts")
    machine = MachineSpec(cpu=cpu, gpu=gpu, gpu_count=gpus)
    link = get_interconnect(fabric) if machines > 1 else ETHERNET_10G
    return ClusterSpec(machine=machine, machine_count=machines, inter_link=link)


#: The paper's full testbed.
PAPER_TESTBED = ClusterSpec(
    machine=MachineSpec(gpu_count=4), machine_count=16, inter_link=INFINIBAND_100G
)
