"""Simulated hardware substrate: devices, roofline timing, memory,
interconnects, and cluster topologies.

The paper evaluates on a 16-machine cluster of 28-core Xeon E5-2680 hosts
with 1-4 NVidia Quadro P4000 GPUs each (plus a Titan Xp sensitivity study),
connected by Ethernet and 100 Gb/s InfiniBand.  This package models those
components at the granularity the paper's metrics need: per-kernel execution
time, GPU memory capacity, and link bandwidth/latency.
"""

from repro.hardware.devices import (
    CPUSpec,
    GPUSpec,
    GTX_580,
    QUADRO_P4000,
    TITAN_XP,
    XEON_E5_2680,
    cpu_catalog,
    get_cpu,
    get_gpu,
    gpu_catalog,
)
from repro.hardware.interconnect import (
    ETHERNET_10G,
    ETHERNET_1G,
    INFINIBAND_100G,
    NVLINK_1,
    PCIE_3_X16,
    Interconnect,
    get_interconnect,
)
from repro.hardware.memory import AllocationTag, GPUMemoryAllocator, OutOfMemoryError
from repro.hardware.roofline import KernelTiming, RooflineModel
from repro.hardware.cluster import ClusterSpec, MachineSpec

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "QUADRO_P4000",
    "TITAN_XP",
    "GTX_580",
    "XEON_E5_2680",
    "gpu_catalog",
    "cpu_catalog",
    "get_gpu",
    "get_cpu",
    "Interconnect",
    "PCIE_3_X16",
    "ETHERNET_1G",
    "ETHERNET_10G",
    "INFINIBAND_100G",
    "NVLINK_1",
    "get_interconnect",
    "GPUMemoryAllocator",
    "AllocationTag",
    "OutOfMemoryError",
    "RooflineModel",
    "KernelTiming",
    "ClusterSpec",
    "MachineSpec",
]
