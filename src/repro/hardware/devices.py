"""Device specifications (the paper's Table 4) and a device catalog.

Peak single-precision throughput is derived the standard way for NVidia
parts: ``cores x boost clock x 2`` (one fused multiply-add per core per
cycle counts as two FLOPs).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU.

    Field values for the built-in devices are taken verbatim from Table 4 of
    the paper; derived quantities (peak FLOP/s) follow from them.
    """

    name: str
    multiprocessors: int
    core_count: int
    max_clock_mhz: float
    memory_gb: float
    llc_mb: float
    memory_bus: str
    memory_bandwidth_gbs: float
    bus_interface: str
    memory_speed_mhz: float
    #: Fixed device-side cost of starting one kernel, seconds.  ~5 us is the
    #: commonly measured CUDA launch latency of this hardware generation.
    kernel_launch_latency_s: float = 5e-6

    @property
    def peak_fp32_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s (cores x clock x 2 FLOP/cycle)."""
        return self.core_count * self.max_clock_mhz * 1e6 * 2.0

    @property
    def memory_bytes(self) -> int:
        """Usable device memory in bytes."""
        return int(self.memory_gb * 1024**3)

    @property
    def memory_bandwidth_bytes(self) -> float:
        """Peak memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gbs * 1e9

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.core_count} cores @ {self.max_clock_mhz} MHz, "
            f"{self.memory_gb} GB {self.memory_bus}, "
            f"{self.memory_bandwidth_gbs} GB/s"
        )


@dataclass(frozen=True)
class CPUSpec:
    """Static description of a host CPU (Table 4, rightmost column)."""

    name: str
    core_count: int
    max_clock_mhz: float
    memory_gb: float
    llc_mb: float
    memory_bus: str
    memory_bandwidth_gbs: float
    memory_speed_mhz: float
    #: Sustained FLOP/s per core for the numpy/Eigen/MKL style code the
    #: framework frontend runs (not the theoretical AVX peak).
    flops_per_core: float = 2.0e10

    @property
    def peak_flops(self) -> float:
        return self.core_count * self.flops_per_core


#: NVidia Quadro P4000 — the paper's primary evaluation GPU (Table 4).
QUADRO_P4000 = GPUSpec(
    name="Quadro P4000",
    multiprocessors=14,
    core_count=1792,
    max_clock_mhz=1480.0,
    memory_gb=8.0,
    llc_mb=2.0,
    memory_bus="GDDR5",
    memory_bandwidth_gbs=243.0,
    bus_interface="PCIe 3.0",
    memory_speed_mhz=3802.0,
)

#: NVidia Titan Xp — the paper's hardware-sensitivity GPU (Table 4).
TITAN_XP = GPUSpec(
    name="TITAN Xp",
    multiprocessors=30,
    core_count=3840,
    max_clock_mhz=1582.0,
    memory_gb=12.0,
    llc_mb=3.0,
    memory_bus="GDDR5X",
    memory_bandwidth_gbs=547.6,
    bus_interface="PCIe 3.0",
    memory_speed_mhz=5705.0,
)

#: NVidia GTX 580 — the GPU that trained AlexNet in 2012 (Section 2.2);
#: included for the historical single-GPU comparison example.
GTX_580 = GPUSpec(
    name="GeForce GTX 580",
    multiprocessors=16,
    core_count=512,
    max_clock_mhz=1544.0,
    memory_gb=1.5,
    llc_mb=0.75,
    memory_bus="GDDR5",
    memory_bandwidth_gbs=192.4,
    bus_interface="PCIe 2.0",
    memory_speed_mhz=4008.0,
    kernel_launch_latency_s=8e-6,
)

#: Intel Xeon E5-2680 (28 cores across both sockets) — the paper's host CPU.
XEON_E5_2680 = CPUSpec(
    name="Intel Xeon E5-2680",
    core_count=28,
    max_clock_mhz=2900.0,
    memory_gb=128.0,
    llc_mb=35.0,
    memory_bus="DDR4",
    memory_bandwidth_gbs=76.8,
    memory_speed_mhz=2400.0,
)

_GPU_CATALOG = {
    "p4000": QUADRO_P4000,
    "quadro p4000": QUADRO_P4000,
    "titan xp": TITAN_XP,
    "titanxp": TITAN_XP,
    "gtx 580": GTX_580,
    "gtx580": GTX_580,
}

_CPU_CATALOG = {
    "xeon e5-2680": XEON_E5_2680,
    "xeon": XEON_E5_2680,
}


def gpu_catalog() -> dict:
    """Return the known GPUs keyed by canonical name."""
    return {spec.name: spec for spec in (QUADRO_P4000, TITAN_XP, GTX_580)}


def cpu_catalog() -> dict:
    """Return the known CPUs keyed by canonical name."""
    return {XEON_E5_2680.name: XEON_E5_2680}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by (case-insensitive) name.

    Raises:
        KeyError: if the name does not match any catalog entry.
    """
    key = name.strip().lower()
    if key not in _GPU_CATALOG:
        known = ", ".join(sorted(set(s.name for s in _GPU_CATALOG.values())))
        raise KeyError(f"unknown GPU {name!r}; known devices: {known}")
    return _GPU_CATALOG[key]


def get_cpu(name: str) -> CPUSpec:
    """Look up a CPU by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in _CPU_CATALOG:
        known = ", ".join(sorted(set(s.name for s in _CPU_CATALOG.values())))
        raise KeyError(f"unknown CPU {name!r}; known devices: {known}")
    return _CPU_CATALOG[key]
