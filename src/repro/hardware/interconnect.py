"""Interconnect models: PCIe, Ethernet, InfiniBand, NVLink.

A transfer of ``n`` bytes over a link costs ``latency + n / bandwidth``.
``efficiency`` discounts protocol overhead (TCP/IP on Ethernet is far less
efficient than RDMA on InfiniBand — the other half of the paper's Fig. 10
cliff between the two-machine Ethernet and InfiniBand configurations).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interconnect:
    """A point-to-point communication link."""

    name: str
    bandwidth_gbs: float  # GB/s, raw signalling rate
    latency_s: float
    efficiency: float = 0.9  # achievable fraction of raw bandwidth

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def effective_bandwidth_bytes(self) -> float:
        return self.bandwidth_gbs * 1e9 * self.efficiency

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` across the link."""
        if num_bytes < 0:
            raise ValueError("byte count cannot be negative")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes / self.effective_bandwidth_bytes

    def degraded(
        self,
        bandwidth_factor: float = 1.0,
        packet_loss: float = 0.0,
        extra_latency_s: float = 0.0,
    ) -> "Interconnect":
        """A derived link under fault conditions: signalling rate scaled by
        ``bandwidth_factor``, efficiency cut by retransmissions at
        ``packet_loss`` (must be < 1: a fully dead link has no finite
        transfer time and is modelled as an outage by ``repro.faults``),
        and ``extra_latency_s`` of added per-transfer delay.

        The identity degradation returns ``self`` unchanged, so a
        zero-magnitude fault is byte-identical to no fault at all.
        """
        if not 0.0 < bandwidth_factor <= 1.0:
            raise ValueError("bandwidth factor must be in (0, 1]")
        if not 0.0 <= packet_loss < 1.0:
            raise ValueError("packet loss must be in [0, 1); 1.0 is an outage")
        if extra_latency_s < 0:
            raise ValueError("extra latency cannot be negative")
        if bandwidth_factor == 1.0 and packet_loss == 0.0 and extra_latency_s == 0.0:
            return self
        return Interconnect(
            name=f"{self.name} [degraded]",
            bandwidth_gbs=self.bandwidth_gbs * bandwidth_factor,
            latency_s=self.latency_s + extra_latency_s,
            efficiency=self.efficiency * (1.0 - packet_loss),
        )


#: PCIe 3.0 x16: 16 GB/s nominal, ~12.8 GB/s achievable; intra-machine
#: GPU-to-GPU traffic goes through this (paper: "PCIe 3.0 gives enough
#: bandwidth (16 GB/s)").
PCIE_3_X16 = Interconnect(
    name="PCIe 3.0 x16", bandwidth_gbs=16.0, latency_s=5e-6, efficiency=0.80
)

#: Commodity gigabit Ethernet.
ETHERNET_1G = Interconnect(
    name="1GbE", bandwidth_gbs=0.125, latency_s=50e-6, efficiency=0.70
)

#: Datacenter 10-gigabit Ethernet (the paper's "ethernet" configuration).
ETHERNET_10G = Interconnect(
    name="10GbE", bandwidth_gbs=1.25, latency_s=30e-6, efficiency=0.70
)

#: 100 Gb/s Mellanox InfiniBand (the paper's fast fabric).
INFINIBAND_100G = Interconnect(
    name="InfiniBand 100Gb", bandwidth_gbs=12.5, latency_s=2e-6, efficiency=0.90
)

#: First-generation NVLink, for the what-if analysis example.
NVLINK_1 = Interconnect(
    name="NVLink 1.0", bandwidth_gbs=40.0, latency_s=2e-6, efficiency=0.85
)

_CATALOG = {
    "pcie": PCIE_3_X16,
    "pcie3": PCIE_3_X16,
    "pcie 3.0 x16": PCIE_3_X16,
    "ethernet": ETHERNET_10G,
    "10gbe": ETHERNET_10G,
    "1gbe": ETHERNET_1G,
    "infiniband": INFINIBAND_100G,
    "infiniband 100gb": INFINIBAND_100G,
    "ib": INFINIBAND_100G,
    "nvlink": NVLINK_1,
    "nvlink 1.0": NVLINK_1,
}


def get_interconnect(name: str) -> Interconnect:
    """Look up an interconnect by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in _CATALOG:
        known = ", ".join(sorted(set(i.name for i in _CATALOG.values())))
        raise KeyError(f"unknown interconnect {name!r}; known: {known}")
    return _CATALOG[key]
