"""Symbolic plan compilation: trace once per (model, framework, GPU),
specialize per batch.

``compile_symbolic`` runs the *existing* concrete pipeline — model
builder, kernel lowering, framework specialization, roofline timing,
allocation recording — with a :class:`~repro.plan.symexpr.SymValue`
standing in for the batch size.  The result is a :class:`SymbolicPlan`:
every batch-dependent quantity in the graph, kernel stream, timings and
allocation trace is an expression DAG, and every branch the concrete code
took is pinned by a guard.  ``specialize(batch)`` substitutes a concrete
batch into the DAG (replaying the recorded operations exactly) and runs
the real dispatch/execute replay, producing a
:class:`~repro.plan.compiled.CompiledPlan` that is bit-for-bit identical
to what ``compile_graph`` would have built — the differential harness in
``tests/test_symbolic_differential.py`` is the proof.

:class:`SymbolicPlanSet` manages guard regions the way TorchDynamo does:
a specialization whose batch violates a variant's guards re-traces with
that batch as the new hint, so models whose kernel selection flips with
batch (gemm efficiency tiers, transformer sentence packing) get one
variant per region instead of one compile per point.  On top of the
traced expressions it solves analytically for OOM boundaries and
throughput-saturation points — evaluations of the traced allocation /
timing expressions instead of per-batch recompiles.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.hardware.memory import GPUMemoryAllocator, OutOfMemoryError
from repro.hardware.roofline import RooflineModel
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.plan import compiler as plan_compiler
from repro.plan.compiled import CompiledPlan
from repro.plan.executor import replay
from repro.plan.symexpr import (
    GuardViolation,
    LinearTape,
    NotPolynomial,
    Polynomial,
    SymTracer,
    SymValue,
    TraceEscape,
    as_polynomial,
)

__all__ = [
    "GuardViolation",
    "NotPolynomial",
    "SymbolicPlan",
    "SymbolicPlanSet",
    "TraceEscape",
    "compile_symbolic",
    "plan_difference",
    "plan_fingerprint",
    "shared_plan_set",
    "shared_plan_sets_clear",
]

#: Leaf types the materializer passes through untouched.
_ATOMS = (str, bytes, bool, int, float, complex, type(None))


def _compile_recipe(obj, tape: LinearTape, registry: dict):
    """Compile a traced object graph into a *materialization recipe*.

    Returns ``None`` when the subtree is batch-independent (specialize
    reuses the template object as-is) or a builder ``f(slots, memo)`` that
    constructs the concrete object from a :class:`LinearTape` slot array.
    The walk — ``isinstance`` chains, ``dataclasses.fields``, unchanged
    detection — happens exactly once per variant; each ``specialize`` then
    only executes the builders for the batch-dependent spine.

    ``registry`` memoizes recipes by template identity and ``memo``
    (per specialize call) memoizes built objects the same way, so a
    timing's ``kernel`` stays the same object as its entry in the kernel
    list, exactly like the concrete compiler's output.  Dataclasses are
    rebuilt field-by-field without re-running ``__post_init__``: the
    validations already ran at trace time and their outcomes are pinned
    by guards."""
    if isinstance(obj, SymValue):
        slot = tape.slot(obj)
        return lambda slots, memo, _slot=slot: slots[_slot]
    if isinstance(obj, _ATOMS) or isinstance(obj, enum.Enum):
        return None
    key = id(obj)
    if key in registry:
        return registry[key]
    cls = type(obj)
    recipe = None
    if cls is list or cls is tuple:
        parts = [_compile_recipe(item, tape, registry) for item in obj]
        if any(part is not None for part in parts):
            pairs = [(i, part) for i, part in enumerate(parts) if part is not None]
            template = list(obj)

            def recipe(slots, memo, _key=key, _cls=cls, _template=template, _pairs=pairs):
                built = memo.get(_key)
                if built is None:
                    built = _template.copy()
                    for index, part in _pairs:
                        built[index] = part(slots, memo)
                    if _cls is tuple:
                        built = tuple(built)
                    memo[_key] = built
                return built

    elif cls is dict:
        parts = {k: _compile_recipe(v, tape, registry) for k, v in obj.items()}
        if any(part is not None for part in parts.values()):
            pairs = [(k, part) for k, part in parts.items() if part is not None]

            def recipe(slots, memo, _key=key, _template=obj, _pairs=pairs):
                built = memo.get(_key)
                if built is None:
                    built = dict(_template)
                    for name, part in _pairs:
                        built[name] = part(slots, memo)
                    memo[_key] = built
                return built

    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        static = []
        dynamic = []
        for field in dataclasses.fields(obj):
            current = getattr(obj, field.name)
            part = _compile_recipe(current, tape, registry)
            if part is None:
                static.append((field.name, current))
            else:
                dynamic.append((field.name, part))
        if dynamic:

            def recipe(slots, memo, _key=key, _cls=cls, _static=static, _dynamic=dynamic):
                built = memo.get(_key)
                if built is None:
                    built = object.__new__(_cls)
                    setattr_ = object.__setattr__
                    for name, current in _static:
                        setattr_(built, name, current)
                    for name, part in _dynamic:
                        setattr_(built, name, part(slots, memo))
                    memo[_key] = built
                return built

    registry[key] = recipe
    return recipe


def compile_symbolic(spec, framework, gpu, roofline=None, hint=None) -> "SymbolicPlan":
    """Trace one model through the concrete compiler with a symbolic batch.

    ``hint`` picks the guard region (the concrete value branches resolve
    against); it defaults to the model's reference batch.  Raises
    :class:`TraceEscape` when the model's builder performs an operation
    the tracer cannot keep exact — callers fall back to ``compile_graph``.
    """
    hint = int(spec.reference_batch if hint is None else hint)
    with trace_span(
        "plan.symbolic.compile",
        model=spec.key,
        framework=framework.key,
        device=gpu.name,
        hint=hint,
    ) as span:
        tracer = SymTracer(name="batch", hint=hint)
        batch = tracer.value()
        model = roofline if roofline is not None else RooflineModel(gpu)
        graph = spec.build(batch)
        kernels = plan_compiler.lower_kernels(graph, framework)
        timings = model.time_kernels(kernels)
        allocations = plan_compiler.record_allocations(graph, framework)
        backward_spans = plan_compiler._backward_spans(graph)
        span.set_attributes(guards=len(tracer.guards), kernels=len(kernels))
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "plan_symbolic_compiles_total", {"model": spec.key}
            ).inc()
    return SymbolicPlan(
        spec=spec,
        framework=framework,
        gpu=gpu,
        tracer=tracer,
        graph=graph,
        kernels=kernels,
        timings=timings,
        allocations=allocations,
        backward_spans=backward_spans,
    )


class SymbolicPlan:
    """One traced (model, framework, GPU) point: symbolic templates plus
    the guards that delimit the batch region they are valid in."""

    def __init__(
        self,
        spec,
        framework,
        gpu,
        tracer: SymTracer,
        graph,
        kernels: list,
        timings: list,
        allocations: list,
        backward_spans: tuple,
    ):
        self.spec = spec
        self.framework = framework
        self.gpu = gpu
        self.tracer = tracer
        self.graph = graph
        self.kernels = kernels
        self.timings = timings
        self.allocations = allocations
        self.backward_spans = tuple(backward_spans)
        # Compiled lazily on first use: the trace flattened to a linear
        # instruction tape plus materialization recipes for each template.
        self._tape: LinearTape | None = None
        self._recipes = None
        self._timing_plan = None
        self._slots_cache: dict = {}

    @property
    def hint(self) -> int:
        return self.tracer.hint

    @property
    def guards(self) -> list:
        return self.tracer.guards

    def _ensure_compiled(self) -> LinearTape:
        tape = self._tape
        if tape is None:
            tape = LinearTape(self.tracer)
            registry: dict = {}
            self._recipes = tuple(
                _compile_recipe(template, tape, registry)
                for template in (
                    self.graph,
                    self.kernels,
                    self.timings,
                    self.allocations,
                )
            )
            self._timing_plan = [
                (
                    tape.slot(timing.duration_s)
                    if isinstance(timing.duration_s, SymValue)
                    else None,
                    timing.duration_s,
                    timing.kernel.host_sync,
                )
                for timing in self.timings
            ]
            self._tape = tape
        return tape

    def _slots(self, value: int) -> list:
        """Every traced expression evaluated at ``value`` (cached)."""
        slots = self._slots_cache.get(value)
        if slots is None:
            slots = self._ensure_compiled().run(value)
            if len(self._slots_cache) >= 64:
                self._slots_cache.pop(next(iter(self._slots_cache)))
            self._slots_cache[value] = slots
        return slots

    def guards_hold(self, batch: int) -> bool:
        """Is ``batch`` inside this variant's guard region?  An arithmetic
        error while replaying the trace (e.g. a division that was safe in
        the traced region) counts as outside."""
        value = int(batch)
        try:
            slots = self._slots(value)
        except ArithmeticError:
            return False
        return self._tape.guards_hold(slots)

    # -- specialization (the bit-identity path) -------------------------

    def specialize(self, batch: int) -> CompiledPlan:
        """The concrete :class:`CompiledPlan` at ``batch`` — bit-identical
        to ``compile_graph(spec.build(batch), framework, gpu)``.

        Raises:
            GuardViolation: ``batch`` lies outside this variant's guard
                region (the caller should re-trace with ``hint=batch``).
        """
        value = int(batch)
        if not self.guards_hold(value):
            raise GuardViolation(self._violation_message(value))
        slots = self._slots(value)
        memo: dict = {}
        graph_r, kernels_r, timings_r, allocations_r = self._recipes
        graph = self.graph if graph_r is None else graph_r(slots, memo)
        kernels = self.kernels if kernels_r is None else kernels_r(slots, memo)
        timings = self.timings if timings_r is None else timings_r(slots, memo)
        allocations = (
            self.allocations
            if allocations_r is None
            else allocations_r(slots, memo)
        )
        execution = replay(timings, self.framework)
        return CompiledPlan(
            graph=graph,
            framework=self.framework,
            gpu=self.gpu,
            kernels=kernels,
            timings=timings,
            execution=execution,
            allocations=allocations,
            backward_spans=self.backward_spans,
        )

    def _violation_message(self, value: int) -> str:
        try:
            guard = self.tracer.first_failing_guard(value)
            detail = (
                "arithmetic outside the traced domain"
                if guard is None
                else guard.describe()
            )
        except ArithmeticError:
            detail = "arithmetic outside the traced domain"
        return (
            f"batch {value} violates trace guard {detail} "
            f"(traced at hint {self.hint})"
        )

    # -- analytic views (evaluation, never recompilation) ---------------

    def _eval(self, quantity, slots: list):
        if isinstance(quantity, SymValue):
            return slots[self._tape.slot(quantity)]
        return quantity

    def allocation_bytes(self, batch: int) -> list:
        """The concrete ``(num_bytes, tag, label)`` trace at ``batch``."""
        slots = self._slots(int(batch))
        return [
            (self._eval(record.num_bytes, slots), record.tag, record.label)
            for record in self.allocations
        ]

    def check_memory(self, batch: int, capacity_bytes: float):
        """Replay the evaluated allocation trace through a real
        :class:`GPUMemoryAllocator` — same prefix sums, same pool
        overhead, same error message as the specialized plan would give."""
        allocator = GPUMemoryAllocator(
            capacity_bytes, pool_overhead=self.framework.pool_overhead
        )
        for num_bytes, tag, label in self.allocation_bytes(batch):
            allocator.allocate(num_bytes, tag, label)
        return allocator.snapshot()

    def fits(self, batch: int, capacity_bytes: float) -> bool:
        try:
            self.check_memory(batch, capacity_bytes)
        except OutOfMemoryError:
            return False
        return True

    def charged_memory_polynomial(self) -> Polynomial:
        """Total allocator-charged bytes as an exact polynomial of batch
        (allocation bytes times the framework's pool overhead).  With no
        frees in a plan trace the final total is the peak, so the OOM
        boundary is the largest integer root region of
        ``poly(b) <= capacity``.  Raises :class:`NotPolynomial` when any
        record's size is not polynomial in batch."""
        total = Polynomial.constant(0)
        for record in self.allocations:
            total = total + as_polynomial(record.num_bytes)
        return total * Polynomial.constant(self.framework.pool_overhead)

    def flops_polynomial(self) -> Polynomial:
        """Iteration FLOPs as an exact polynomial of batch."""
        total = Polynomial.constant(0)
        for kernel in self.kernels:
            total = total + as_polynomial(kernel.flops)
        return total

    def bytes_polynomial(self) -> Polynomial:
        """Iteration DRAM traffic as an exact polynomial of batch."""
        total = Polynomial.constant(0)
        for kernel in self.kernels:
            total = total + as_polynomial(kernel.bytes_accessed)
        return total

    def lean_makespan(self, batch: int) -> float:
        """Device makespan at ``batch`` via the dispatch/execute recurrence
        over evaluated durations — no event timeline, no plan object."""
        slots = self._slots(int(batch))
        dispatch = self.framework.dispatch_cost_s
        sync = self.framework.sync_latency_s
        cpu_ready = self.framework.frontend_cost_s
        gpu_free = 0.0
        for slot, const, host_sync in self._timing_plan:
            duration = const if slot is None else slots[slot]
            cpu_ready += dispatch
            start = cpu_ready if cpu_ready > gpu_free else gpu_free
            gpu_free = start + duration
            if host_sync:
                cpu_ready = gpu_free + sync
        return gpu_free if gpu_free > cpu_ready else cpu_ready

    def effective_samples(self, batch: int) -> float:
        value = int(batch)
        samples = self.graph.samples_per_iteration
        if samples is not None:
            return self._eval(samples, self._slots(value))
        return float(value)

    def device_throughput(self, batch: int) -> float:
        """Samples per device-second — the saturation-analysis proxy
        (host-side pipeline costs are batch-smooth and excluded)."""
        return self.effective_samples(batch) / self.lean_makespan(batch)

    # -- presentation ----------------------------------------------------

    def describe(self) -> str:
        lines = [
            f"symbolic plan: {self.spec.key} / {self.framework.name} on "
            f"{self.gpu.name} (traced at hint batch={self.hint})",
            f"  kernels        {len(self.kernels)}",
            f"  allocations    {len(self.allocations)}",
            f"  guards         {len(self.guards)}",
        ]
        for name, fn in (
            ("flops(b)", self.flops_polynomial),
            ("bytes(b)", self.bytes_polynomial),
            ("memory(b)", self.charged_memory_polynomial),
        ):
            try:
                poly = fn()
            except NotPolynomial as exc:
                lines.append(f"  {name:12s} not polynomial ({exc})")
            else:
                lines.append(f"  {name:12s} {poly!r}")
        return "\n".join(lines)


class SymbolicPlanSet:
    """Guard-region registry for one (model, framework, GPU): the unit the
    session/engine integration holds.  One symbolic compile per region,
    cheap specializations for every batch inside it."""

    def __init__(self, spec, framework, gpu, roofline=None):
        self.spec = spec
        self.framework = framework
        self.gpu = gpu
        self.roofline = roofline if roofline is not None else RooflineModel(gpu)
        self.variants: list = []
        self.compile_count = 0
        self.specialize_count = 0
        self.guard_misses = 0

    def variant_for(self, batch: int) -> SymbolicPlan:
        """The variant whose guard region contains ``batch``, tracing a
        new one (dynamo-style) when every existing region excludes it."""
        value = int(batch)
        for variant in self.variants:
            if variant.guards_hold(value):
                return variant
        metrics = get_metrics()
        if self.variants:
            self.guard_misses += 1
            if metrics.enabled:
                metrics.counter(
                    "plan_symbolic_guard_misses_total", {"model": self.spec.key}
                ).inc()
        variant = compile_symbolic(
            self.spec, self.framework, self.gpu, roofline=self.roofline, hint=value
        )
        self.compile_count += 1
        self.variants.append(variant)
        return variant

    def specialize(self, batch: int) -> CompiledPlan:
        """The concrete plan at ``batch`` (one traced compile per guard
        region, then pure expression evaluation)."""
        value = int(batch)
        with trace_span(
            "plan.symbolic.specialize",
            model=self.spec.key,
            framework=self.framework.key,
            batch_size=value,
        ) as span:
            variant = self.variant_for(value)
            plan = variant.specialize(value)
            span.set_attributes(hint=variant.hint, variants=len(self.variants))
        self.specialize_count += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(
                "plan_symbolic_specializations_total", {"model": self.spec.key}
            ).inc()
        return plan

    # -- analytic queries ------------------------------------------------

    def fits(self, batch: int, capacity_bytes: float) -> bool:
        return self.variant_for(batch).fits(batch, capacity_bytes)

    def max_batch_size(self, candidates, capacity_bytes: float) -> int:
        """Largest candidate that fits, stopping at the first that does
        not — the searched loop's exact semantics, zero plan compiles."""
        best = 0
        for batch in sorted(candidates):
            if not self.fits(int(batch), capacity_bytes):
                break
            best = batch
        return best

    def oom_boundary(self, capacity_bytes: float, limit: int = 1 << 22) -> int:
        """The exact OOM boundary: the largest batch in ``[1, limit]``
        whose allocation trace fits ``capacity_bytes``.

        The peak-memory polynomial seeds the bracket (root-finding on
        exact rational coefficients); the allocator replay then confirms
        the boundary, because the ground truth accumulates in floating
        point with the framework's pool overhead and the analytic answer
        must match the searched answer bit-for-bit.  Memory footprints
        are nondecreasing in batch (a registered conformance invariant),
        which is what makes the bracket/bisect exact."""
        if not self.fits(1, capacity_bytes):
            return 0
        lo = 1  # known fitting
        hi = None  # known not fitting
        seed = self._polynomial_boundary_seed(capacity_bytes, limit)
        if seed is not None:
            for probe in (seed, seed + 1):
                probe = max(1, min(probe, limit))
                if self.fits(probe, capacity_bytes):
                    lo = max(lo, probe)
                else:
                    hi = probe if hi is None else min(hi, probe)
        while hi is None:
            probe = min(lo * 2, limit)
            if self.fits(probe, capacity_bytes):
                lo = probe
                if probe == limit:
                    return limit
            else:
                hi = probe
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.fits(mid, capacity_bytes):
                lo = mid
            else:
                hi = mid
        return lo

    def _polynomial_boundary_seed(self, capacity_bytes: float, limit: int):
        """Largest integer where the charged-memory polynomial stays under
        capacity — exact rational bisection, no allocator calls.  None when
        the trace is not polynomial or not provably monotone."""
        try:
            poly = self.variant_for(1).charged_memory_polynomial()
        except (NotPolynomial, TraceEscape):
            return None
        if poly.degree < 1 or not poly.has_nonnegative_coefficients:
            return None
        if poly.evaluate(1) > capacity_bytes:
            return 1
        lo, hi = 1, None
        probe = 2
        while hi is None and probe <= limit:
            if poly.evaluate(probe) <= capacity_bytes:
                lo = probe
                probe *= 2
            else:
                hi = probe
        if hi is None:
            return limit
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if poly.evaluate(mid) <= capacity_bytes:
                lo = mid
            else:
                hi = mid
        return lo

    def saturation_batch(
        self, theta: float = 0.95, limit: int | None = None
    ) -> int:
        """Smallest batch whose device throughput reaches ``theta`` of the
        throughput at the largest feasible batch (the paper's
        diminishing-returns knee), found by bisection over the traced
        timing expressions — no recompiles, no plan objects."""
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        if limit is None:
            limit = self.oom_boundary(self.gpu.memory_bytes)
        if limit < 1:
            return 0
        target = theta * self.variant_for(limit).device_throughput(limit)
        lo, hi = 1, limit
        while lo < hi:
            mid = (lo + hi) // 2
            if self.variant_for(mid).device_throughput(mid) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def describe(self) -> str:
        lines = [
            f"symbolic plan set: {self.spec.key} / {self.framework.name} on "
            f"{self.gpu.name}",
            f"  variants       {len(self.variants)} "
            f"(hints: {[v.hint for v in self.variants]})",
            f"  compiles       {self.compile_count}",
            f"  specializations {self.specialize_count}",
            f"  guard misses   {self.guard_misses}",
        ]
        for variant in self.variants:
            lines.append("")
            lines.append(variant.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# process-wide shared sets (trace once per process, not once per session)
# ----------------------------------------------------------------------

_SHARED_SETS: dict = {}
_SHARED_SETS_CAP = 32


def _shared_key(spec, framework, gpu, roofline, constants) -> tuple:
    """Everything a traced expression can bake in.

    Specs are registry singletons, so ``(key, id)`` identifies one (the
    cache holds a strong reference via the set, pinning the id).  The
    framework is keyed by ``repr`` — it is a frozen dataclass whose dict
    field defeats hashing, and sensitivity sweeps build value-variants
    with ``dataclasses.replace``.  The roofline contributes its instance
    state *and* the current class methods, so a monkeypatched timing
    model (the conformance mutants, the ramp-exponent sweep) misses the
    cache instead of replaying a stale trace.  ``_TILE_HALF_DIM`` is the
    one module-level calibration constant experiments mutate in place.
    """
    from repro.kernels import gemm as _gemm

    return (
        spec.key,
        id(spec),
        repr(framework),
        gpu,
        type(roofline),
        roofline.device,
        roofline._ramp_s,
        RooflineModel.time_kernel,
        RooflineModel.__init__,
        _gemm._TILE_HALF_DIM,
        tuple(constants),
    )


def shared_plan_set(
    spec, framework, gpu, roofline=None, constants=()
) -> SymbolicPlanSet:
    """The process-wide :class:`SymbolicPlanSet` for this configuration.

    Sessions come and go per test / per CLI invocation, but the trace
    only depends on the configuration — so the expensive symbolic
    compile is shared across every session in the process.  Anything
    that could invalidate a trace participates in the key (see
    :func:`_shared_key`); ``shared_plan_sets_clear`` drops the cache
    when a test wants a provably cold trace.
    """
    roofline = roofline if roofline is not None else RooflineModel(gpu)
    key = _shared_key(spec, framework, gpu, roofline, constants)
    sset = _SHARED_SETS.get(key)
    metrics = get_metrics()
    if sset is None:
        if len(_SHARED_SETS) >= _SHARED_SETS_CAP:
            _SHARED_SETS.pop(next(iter(_SHARED_SETS)))
        sset = SymbolicPlanSet(spec, framework, gpu, roofline=roofline)
        _SHARED_SETS[key] = sset
        if metrics.enabled:
            metrics.counter(
                "plan_symbolic_shared_misses_total", {"model": spec.key}
            ).inc()
    elif metrics.enabled:
        metrics.counter(
            "plan_symbolic_shared_hits_total", {"model": spec.key}
        ).inc()
    return sset


def shared_plan_sets_clear() -> None:
    """Drop every cached shared set (tests that need a cold trace)."""
    _SHARED_SETS.clear()


# ----------------------------------------------------------------------
# bit-identity fingerprints (the differential harness's comparator)
# ----------------------------------------------------------------------


def _exact(value):
    """A float-exact, type-distinguishing token (repr keeps every bit and
    ``int`` vs ``float`` distinct, which ``==`` would conflate)."""
    return f"{type(value).__name__}:{value!r}"


def plan_fingerprint(plan: CompiledPlan) -> dict:
    """Every observable quantity of a plan, rendered exactly.  Two plans
    with equal fingerprints are interchangeable for every consumer in the
    repo (sessions, transforms, exporters, the memory checker)."""
    graph = plan.graph
    timeline = plan.timeline
    return {
        "graph": {
            "model_name": graph.model_name,
            "batch_size": _exact(graph.batch_size),
            "input_bytes": _exact(graph.input_bytes),
            "samples_per_iteration": (
                None
                if graph.samples_per_iteration is None
                else _exact(graph.samples_per_iteration)
            ),
            "feature_map_overallocation": _exact(graph.feature_map_overallocation),
            "layers": [
                {
                    "name": layer.name,
                    "kind": layer.kind,
                    "weight_elements": _exact(layer.weight_elements),
                    "output_elements": _exact(layer.output_elements),
                    "workspace_bytes": _exact(layer.workspace_bytes),
                    "inplace": layer.inplace,
                    "forward_kernels": len(layer.forward_kernels),
                    "backward_kernels": len(layer.backward_kernels),
                }
                for layer in graph.layers
            ],
        },
        "kernels": [
            {
                "name": kernel.name,
                "category": kernel.category.value,
                "flops": _exact(kernel.flops),
                "bytes_accessed": _exact(kernel.bytes_accessed),
                "max_compute_efficiency": _exact(kernel.max_compute_efficiency),
                "max_memory_efficiency": _exact(kernel.max_memory_efficiency),
                "host_sync": kernel.host_sync,
            }
            for kernel in plan.kernels
        ],
        "timings": [
            {
                "duration_s": _exact(timing.duration_s),
                "compute_time_s": _exact(timing.compute_time_s),
                "memory_time_s": _exact(timing.memory_time_s),
                "launch_latency_s": _exact(timing.launch_latency_s),
            }
            for timing in plan.timings
        ],
        "execution": {
            "makespan_s": _exact(plan.makespan_s),
            "gpu_busy_s": _exact(plan.gpu_busy_s),
            "dispatch_cpu_s": _exact(plan.dispatch_cpu_s),
            "events": [
                (
                    event.name,
                    _exact(event.issued_s),
                    _exact(event.start_s),
                    _exact(event.end_s),
                )
                for event in timeline.events
            ],
            "gaps": [
                (gap.cause, _exact(gap.start_s), _exact(gap.end_s))
                for gap in timeline.gaps
            ],
        },
        "allocations": [
            (record.tag.value, record.label, _exact(record.num_bytes))
            for record in plan.allocations
        ],
        "backward_spans": list(plan.backward_spans),
        "total_flops": _exact(plan.total_flops),
    }


def plan_difference(a: CompiledPlan, b: CompiledPlan) -> str | None:
    """First point of disagreement between two plans' fingerprints, as a
    dotted path — None when bit-identical.  The conformance invariant and
    the differential harness both report through this."""
    return _first_difference(plan_fingerprint(a), plan_fingerprint(b), "plan")


def _first_difference(a, b, path):
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for key in a:
            if key not in b:
                return f"{path}.{key}: missing on right"
            found = _first_difference(a[key], b[key], f"{path}.{key}")
            if found:
                return found
        extra = [key for key in b if key not in a]
        if extra:
            return f"{path}.{extra[0]}: missing on left"
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for index, (left, right) in enumerate(zip(a, b)):
            found = _first_difference(left, right, f"{path}[{index}]")
            if found:
                return found
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None
