"""In-process memoization of compiled plans.

Compiling a plan (graph build + kernel lowering + roofline timing +
replay) is the dominant cost of every simulated path, and before this
layer existed the same point was compiled two to three times per question
— once for the memory check, once for the timing run, and once more per
profiling query.  ``PlanCache`` collapses those into one compile per key.

The cache is deliberately *per session* rather than global: telemetry
exports must be byte-identical across repeated fresh runs in one process,
so hit/miss sequences (which show up as spans and counters) have to reset
with the session that owns them.  Sessions are themselves reused across a
sweep, the engine's worker payloads, and the analysis pipeline, which is
where the dedup pays off.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span


@dataclass(frozen=True)
class PlanCacheStats:
    """Hit/miss accounting of one cache."""

    hits: int
    misses: int
    entries: int

    @property
    def compile_count(self) -> int:
        return self.misses


class PlanCache:
    """A small LRU of :class:`~repro.plan.compiled.CompiledPlan` objects.

    ``get`` is the single entry point: it looks the key up, calls the
    factory on a miss, and publishes the outcome as a span plus the
    ``plan_cache_hits_total`` / ``plan_cache_misses_total`` counters.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("plan cache needs capacity for at least one plan")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    def get(self, key, factory):
        """The plan under ``key``, compiling it via ``factory()`` once."""
        span = trace_span("plan.cache.lookup", key=str(key))
        with span:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                outcome = "hit"
            else:
                plan = factory()
                self._entries[key] = plan
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                self.misses += 1
                outcome = "miss"
            span.set_attribute("outcome", outcome)
            metrics = get_metrics()
            if metrics.enabled:
                if outcome == "hit":
                    metrics.counter("plan_cache_hits_total").inc()
                else:
                    metrics.counter("plan_cache_misses_total").inc()
        return plan

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    @property
    def stats(self) -> PlanCacheStats:
        return PlanCacheStats(
            hits=self.hits, misses=self.misses, entries=len(self._entries)
        )
