"""Symbolic integer/float expressions for plan compilation.

This module is the ``sizevars.py`` layer of the plan stack: a tiny tracer
value (:class:`SymValue`) stands in for the mini-batch size while the
*existing* model builders, kernel constructors, framework specialization
and roofline timing run unchanged.  Arithmetic on the value records an
operation DAG (operator, exact operand order, original Python numeric
types); comparisons and truth tests resolve against a concrete *hint*
value and record a :class:`Guard`, exactly like TorchInductor's guarded
size variables.  Substituting a batch size replays the recorded operations
through the :mod:`operator` module, so within a guard region the result is
bit-for-bit what the concrete code would have computed — not an
approximation of it.

Two views of a traced expression exist:

- :func:`evaluate` — the replay path.  Exact by construction; this is what
  plan specialization uses.
- :func:`as_polynomial` — the analytic path.  Extracts a polynomial with
  exact :class:`fractions.Fraction` coefficients when the expression is
  polynomial in the symbol (floor-division or division *by* the symbol
  raise :class:`NotPolynomial`).  This is what closed-form OOM boundary
  solving and monotonicity analysis use; it is never used for
  specialization, so its rational arithmetic cannot introduce drift.
"""

from __future__ import annotations

import operator
from fractions import Fraction


class TraceEscape(RuntimeError):
    """The traced code performed an operation the tracer cannot represent
    symbolically (``int()``, ``str()``, hashing, ...).  Callers fall back
    to the concrete compiler — correctness is never at risk, only reuse."""


class GuardViolation(RuntimeError):
    """A substitution value disagrees with a guard recorded at trace time;
    the expression DAG is only valid inside its guard region."""


class NotPolynomial(ValueError):
    """The expression is not a polynomial in the symbol (e.g. it contains
    a floor-division or a division by a symbolic subexpression)."""


_BIN_OPS = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "truediv": operator.truediv,
    "floordiv": operator.floordiv,
    "mod": operator.mod,
    "pow": operator.pow,
}

_UNARY_OPS = {"neg": operator.neg}

_CMP_OPS = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "eq": operator.eq,
    "ne": operator.ne,
}

_CMP_SYMBOLS = {
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
}

#: Concrete numeric types the tracer lifts into constants.  ``bool`` is an
#: ``int`` subclass and arithmetic on it matches ``int`` semantics.
_NUMERIC = (int, float, Fraction)


# ----------------------------------------------------------------------
# expression nodes (hash-consed per tracer)
# ----------------------------------------------------------------------


class Expr:
    """Base node of the traced operation DAG."""

    __slots__ = ()


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return repr(self.value)


class Sym(Expr):
    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op
        self.operand = operand

    def __repr__(self):
        return f"(-{self.operand!r})"


class Binop(Expr):
    __slots__ = ("op", "lhs", "rhs")

    _GLYPH = {
        "add": "+",
        "sub": "-",
        "mul": "*",
        "truediv": "/",
        "floordiv": "//",
        "mod": "%",
        "pow": "**",
    }

    def __init__(self, op, lhs, rhs):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self):
        return f"({self.lhs!r} {self._GLYPH[self.op]} {self.rhs!r})"


def evaluate(node: Expr, value, cache: dict | None = None):
    """Replay the operation DAG rooted at ``node`` with the symbol bound
    to ``value``.

    The replay applies the *same* Python operators to the *same* operand
    types in the same order the concrete code did, so the result is
    bit-identical to the untraced computation.  ``cache`` memoizes by node
    identity — pass one dict across many evaluations of the same trace so
    shared subexpressions (per-layer element counts, running sums) are
    computed once.
    """
    if cache is None:
        cache = {}
    stack = [node]
    while stack:
        top = stack[-1]
        key = id(top)
        if key in cache:
            stack.pop()
            continue
        kind = type(top)
        if kind is Const:
            cache[key] = top.value
            stack.pop()
        elif kind is Sym:
            cache[key] = value
            stack.pop()
        elif kind is Unary:
            operand_key = id(top.operand)
            if operand_key in cache:
                cache[key] = _UNARY_OPS[top.op](cache[operand_key])
                stack.pop()
            else:
                stack.append(top.operand)
        else:  # Binop
            lhs_key, rhs_key = id(top.lhs), id(top.rhs)
            ready = True
            if rhs_key not in cache:
                stack.append(top.rhs)
                ready = False
            if lhs_key not in cache:
                stack.append(top.lhs)
                ready = False
            if ready:
                cache[key] = _BIN_OPS[top.op](cache[lhs_key], cache[rhs_key])
                stack.pop()
    return cache[id(node)]


# ----------------------------------------------------------------------
# guards
# ----------------------------------------------------------------------


class Guard:
    """One comparison (or truth test) resolved against the hint at trace
    time.  The traced DAG is valid exactly for the values where every
    recorded guard re-resolves to the same outcome."""

    __slots__ = ("lhs", "op", "rhs", "outcome")

    def __init__(self, lhs: Expr, op: str, rhs: Expr | None, outcome: bool):
        self.lhs = lhs
        self.op = op  # a _CMP_OPS key, or "truth"
        self.rhs = rhs
        self.outcome = outcome

    def holds(self, value, cache: dict | None = None) -> bool:
        left = evaluate(self.lhs, value, cache)
        if self.op == "truth":
            return bool(left) == self.outcome
        right = evaluate(self.rhs, value, cache)
        return _CMP_OPS[self.op](left, right) == self.outcome

    def describe(self) -> str:
        if self.op == "truth":
            return f"bool({self.lhs!r}) is {self.outcome}"
        relation = f"{self.lhs!r} {_CMP_SYMBOLS[self.op]} {self.rhs!r}"
        return relation if self.outcome else f"not ({relation})"

    def __repr__(self):
        return f"Guard({self.describe()})"


# ----------------------------------------------------------------------
# the tracer
# ----------------------------------------------------------------------


class SymTracer:
    """Owns one symbol, the interned node table, and the guard list of one
    trace.  Nodes are hash-consed so identical subexpressions share one
    node (one evaluation, one guard identity)."""

    def __init__(self, name: str = "batch", hint: int = 32):
        if not isinstance(hint, int) or isinstance(hint, bool):
            raise TypeError(f"hint must be an int, got {type(hint).__name__}")
        self.name = name
        self.hint = hint
        self._nodes: dict = {}
        self.symbol = Sym(name)
        self._nodes[("s", name)] = self.symbol
        self.guards: list = []
        self._guard_keys: set = set()

    def value(self) -> "SymValue":
        """The symbolic stand-in to feed through concrete code."""
        return SymValue(self, self.symbol, self.hint)

    # -- node interning -------------------------------------------------

    def const(self, value) -> Const:
        # The type sits in the key: Const(4) and Const(4.0) hash equal but
        # must stay distinct nodes (replay preserves operand types).
        key = ("c", type(value), value)
        node = self._nodes.get(key)
        if node is None:
            node = self._nodes[key] = Const(value)
        return node

    def binop(self, op: str, lhs: Expr, rhs: Expr) -> Binop:
        key = ("b", op, id(lhs), id(rhs))
        node = self._nodes.get(key)
        if node is None:
            node = self._nodes[key] = Binop(op, lhs, rhs)
        return node

    def unary(self, op: str, operand: Expr) -> Unary:
        key = ("u", op, id(operand))
        node = self._nodes.get(key)
        if node is None:
            node = self._nodes[key] = Unary(op, operand)
        return node

    # -- guard recording ------------------------------------------------

    def add_guard(self, lhs: Expr, op: str, rhs: Expr | None, outcome: bool) -> None:
        key = (id(lhs), op, id(rhs), outcome)
        if key in self._guard_keys:
            return
        self._guard_keys.add(key)
        self.guards.append(Guard(lhs, op, rhs, outcome))

    def guards_hold(self, value, cache: dict | None = None) -> bool:
        if cache is None:
            cache = {}
        return all(guard.holds(value, cache) for guard in self.guards)

    def first_failing_guard(self, value):
        cache: dict = {}
        for guard in self.guards:
            if not guard.holds(value, cache):
                return guard
        return None


# ----------------------------------------------------------------------
# the tracer value
# ----------------------------------------------------------------------


def _lift(tracer: SymTracer, other):
    """``other`` as ``(node, hint)`` under ``tracer``, or None when it is
    not liftable (the dunder then returns NotImplemented)."""
    if isinstance(other, SymValue):
        if other.tracer is not tracer:
            raise TraceEscape("mixing symbolic values from different traces")
        return other.node, other.hint
    if isinstance(other, _NUMERIC):
        return tracer.const(other), other
    return None


def _binary_dunder(opname):
    fn = _BIN_OPS[opname]

    def forward(self, other):
        lifted = _lift(self.tracer, other)
        if lifted is None:
            return NotImplemented
        node, hint = lifted
        return SymValue(
            self.tracer,
            self.tracer.binop(opname, self.node, node),
            fn(self.hint, hint),
        )

    def reverse(self, other):
        lifted = _lift(self.tracer, other)
        if lifted is None:
            return NotImplemented
        node, hint = lifted
        return SymValue(
            self.tracer,
            self.tracer.binop(opname, node, self.node),
            fn(hint, self.hint),
        )

    return forward, reverse


def _compare_dunder(opname):
    fn = _CMP_OPS[opname]

    def method(self, other):
        lifted = _lift(self.tracer, other)
        if lifted is None:
            return NotImplemented
        node, hint = lifted
        outcome = fn(self.hint, hint)
        self.tracer.add_guard(self.node, opname, node, outcome)
        return outcome

    return method


def _escape(operation):
    def method(self, *args, **kwargs):
        raise TraceEscape(
            f"{operation} on a symbolic value; the trace cannot stay exact"
        )

    return method


class SymValue:
    """A number-like tracer value.

    Arithmetic builds DAG nodes; comparisons and ``bool()`` resolve via
    the hint and record guards (so ``min``/``max``/branches in traced code
    work unchanged and their decisions are pinned); coercions that would
    lose the symbol (``int``, ``float``, ``str``, hashing) raise
    :class:`TraceEscape`.
    """

    __slots__ = ("tracer", "node", "hint")

    def __init__(self, tracer: SymTracer, node: Expr, hint):
        self.tracer = tracer
        self.node = node
        self.hint = hint

    # arithmetic ---------------------------------------------------------
    __add__, __radd__ = _binary_dunder("add")
    __sub__, __rsub__ = _binary_dunder("sub")
    __mul__, __rmul__ = _binary_dunder("mul")
    __truediv__, __rtruediv__ = _binary_dunder("truediv")
    __floordiv__, __rfloordiv__ = _binary_dunder("floordiv")
    __mod__, __rmod__ = _binary_dunder("mod")
    __pow__, __rpow__ = _binary_dunder("pow")

    def __neg__(self):
        return SymValue(self.tracer, self.tracer.unary("neg", self.node), -self.hint)

    def __pos__(self):
        return self

    def __abs__(self):
        # The comparison records the sign guard; either branch is exact.
        if self >= 0:
            return self
        return -self

    # comparisons (guard-recording) --------------------------------------
    __lt__ = _compare_dunder("lt")
    __le__ = _compare_dunder("le")
    __gt__ = _compare_dunder("gt")
    __ge__ = _compare_dunder("ge")
    __eq__ = _compare_dunder("eq")
    __ne__ = _compare_dunder("ne")

    def __bool__(self):
        outcome = bool(self.hint)
        self.tracer.add_guard(self.node, "truth", None, outcome)
        return outcome

    # escapes ------------------------------------------------------------
    __hash__ = _escape("hashing")
    __int__ = _escape("int()")
    __index__ = _escape("index coercion")
    __float__ = _escape("float()")
    __str__ = _escape("str()")
    __format__ = _escape("string formatting")
    __round__ = _escape("round()")
    __trunc__ = _escape("trunc()")
    __floor__ = _escape("floor()")
    __ceil__ = _escape("ceil()")

    def __repr__(self):
        # repr stays usable for debugging; str()/format() raise because
        # they could silently bake the hint into traced artifacts.
        return f"SymValue({self.node!r}, hint={self.hint!r})"


# ----------------------------------------------------------------------
# the linear tape (fast batch substitution)
# ----------------------------------------------------------------------


class LinearTape:
    """A tracer's DAG flattened to one instruction list.

    Interning creates operands before their parents, so the node table's
    insertion order is already topological: one pass over it yields a slot
    per node and an instruction per operation.  ``run(value)`` then
    replays the whole trace as a tight loop over preallocated slots —
    every shared subexpression computed exactly once — which is what makes
    ``specialize`` cheaper than recompiling.  The operations applied are
    the same :mod:`operator` functions :func:`evaluate` uses, so the two
    paths agree bit-for-bit."""

    __slots__ = ("_base", "_sym_slots", "_instrs", "_slot_of", "_guards")

    def __init__(self, tracer: SymTracer):
        nodes = list(tracer._nodes.values())
        slot_of = {id(node): index for index, node in enumerate(nodes)}
        base = [None] * len(nodes)
        sym_slots = []
        instrs = []
        for index, node in enumerate(nodes):
            kind = type(node)
            if kind is Const:
                base[index] = node.value
            elif kind is Sym:
                sym_slots.append(index)
            elif kind is Unary:
                instrs.append(
                    (index, _UNARY_OPS[node.op], slot_of[id(node.operand)], -1)
                )
            else:
                instrs.append(
                    (
                        index,
                        _BIN_OPS[node.op],
                        slot_of[id(node.lhs)],
                        slot_of[id(node.rhs)],
                    )
                )
        self._base = base
        self._sym_slots = sym_slots
        self._instrs = instrs
        self._slot_of = slot_of
        self._guards = [
            (
                slot_of[id(guard.lhs)],
                None if guard.op == "truth" else _CMP_OPS[guard.op],
                -1 if guard.rhs is None else slot_of[id(guard.rhs)],
                guard.outcome,
            )
            for guard in tracer.guards
        ]

    def slot(self, value: SymValue | Expr) -> int:
        node = value.node if isinstance(value, SymValue) else value
        return self._slot_of[id(node)]

    def run(self, value) -> list:
        """All node values at ``value``, indexed by slot."""
        slots = self._base.copy()
        for index in self._sym_slots:
            slots[index] = value
        for out, fn, a, b in self._instrs:
            slots[out] = fn(slots[a]) if b < 0 else fn(slots[a], slots[b])
        return slots

    def guards_hold(self, slots: list) -> bool:
        for lhs, fn, rhs, outcome in self._guards:
            if fn is None:
                if bool(slots[lhs]) != outcome:
                    return False
            elif fn(slots[lhs], slots[rhs]) != outcome:
                return False
        return True


# ----------------------------------------------------------------------
# exact polynomials (the analytic view)
# ----------------------------------------------------------------------


class Polynomial:
    """A univariate polynomial with exact ``Fraction`` coefficients,
    stored sparsely as ``{degree: coefficient}``."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs=None):
        cleaned: dict = {}
        for degree, coeff in dict(coeffs or {}).items():
            fraction = Fraction(coeff)
            if fraction:
                cleaned[int(degree)] = fraction
        self.coeffs = cleaned

    @classmethod
    def constant(cls, value) -> "Polynomial":
        return cls({0: Fraction(value)})

    @classmethod
    def symbol(cls) -> "Polynomial":
        return cls({1: Fraction(1)})

    @property
    def degree(self) -> int:
        return max(self.coeffs, default=0)

    @property
    def is_zero(self) -> bool:
        return not self.coeffs

    def coefficient(self, degree: int) -> Fraction:
        return self.coeffs.get(degree, Fraction(0))

    def __add__(self, other):
        other = _as_poly_operand(other)
        if other is None:
            return NotImplemented
        merged = dict(self.coeffs)
        for degree, coeff in other.coeffs.items():
            merged[degree] = merged.get(degree, Fraction(0)) + coeff
        return Polynomial(merged)

    __radd__ = __add__

    def __neg__(self):
        return Polynomial({d: -c for d, c in self.coeffs.items()})

    def __sub__(self, other):
        other = _as_poly_operand(other)
        if other is None:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other):
        other = _as_poly_operand(other)
        if other is None:
            return NotImplemented
        return other + (-self)

    def __mul__(self, other):
        other = _as_poly_operand(other)
        if other is None:
            return NotImplemented
        product: dict = {}
        for da, ca in self.coeffs.items():
            for db, cb in other.coeffs.items():
                degree = da + db
                product[degree] = product.get(degree, Fraction(0)) + ca * cb
        return Polynomial(product)

    __rmul__ = __mul__

    def __eq__(self, other):
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.coeffs == other.coeffs

    def __hash__(self):
        return hash(frozenset(self.coeffs.items()))

    def evaluate(self, value) -> Fraction:
        """Exact evaluation at a rational point."""
        x = Fraction(value)
        result = Fraction(0)
        for degree, coeff in self.coeffs.items():
            result += coeff * x**degree
        return result

    @property
    def has_nonnegative_coefficients(self) -> bool:
        """Sufficient condition for the polynomial to be nondecreasing on
        ``x >= 0`` (every memory/FLOP expression in the repo satisfies it)."""
        return all(coeff >= 0 for coeff in self.coeffs.values())

    def __repr__(self):
        if not self.coeffs:
            return "Polynomial(0)"
        terms = []
        for degree in sorted(self.coeffs, reverse=True):
            coeff = self.coeffs[degree]
            if degree == 0:
                terms.append(f"{coeff}")
            elif degree == 1:
                terms.append(f"{coeff}*b")
            else:
                terms.append(f"{coeff}*b^{degree}")
        return "Polynomial(" + " + ".join(terms) + ")"


def _as_poly_operand(other):
    if isinstance(other, Polynomial):
        return other
    if isinstance(other, _NUMERIC):
        return Polynomial.constant(other)
    return None


def as_polynomial(node) -> Polynomial:
    """The exact polynomial (in the trace symbol) an expression computes.

    Accepts an :class:`Expr`, a :class:`SymValue`, or a plain number.
    Division by a constant becomes multiplication by its exact reciprocal;
    floor-division, modulo, division by a symbolic subexpression, and
    non-integer powers raise :class:`NotPolynomial`.
    """
    if isinstance(node, SymValue):
        node = node.node
    if isinstance(node, _NUMERIC):
        return Polynomial.constant(node)
    results: dict = {}
    stack = [node]
    while stack:
        top = stack[-1]
        key = id(top)
        if key in results:
            stack.pop()
            continue
        kind = type(top)
        if kind is Const:
            if isinstance(top.value, bool) or not isinstance(top.value, _NUMERIC):
                raise NotPolynomial(f"non-numeric constant {top.value!r}")
            results[key] = Polynomial.constant(top.value)
            stack.pop()
        elif kind is Sym:
            results[key] = Polynomial.symbol()
            stack.pop()
        elif kind is Unary:
            operand_key = id(top.operand)
            if operand_key in results:
                results[key] = -results[operand_key]
                stack.pop()
            else:
                stack.append(top.operand)
        else:  # Binop
            lhs_key, rhs_key = id(top.lhs), id(top.rhs)
            ready = True
            if rhs_key not in results:
                stack.append(top.rhs)
                ready = False
            if lhs_key not in results:
                stack.append(top.lhs)
                ready = False
            if not ready:
                continue
            lhs, rhs = results[lhs_key], results[rhs_key]
            if top.op == "add":
                results[key] = lhs + rhs
            elif top.op == "sub":
                results[key] = lhs - rhs
            elif top.op == "mul":
                results[key] = lhs * rhs
            elif top.op == "truediv":
                if rhs.degree > 0:
                    raise NotPolynomial("division by a symbolic expression")
                divisor = rhs.coefficient(0)
                if divisor == 0:
                    raise NotPolynomial("division by zero constant")
                results[key] = lhs * Polynomial.constant(1 / divisor)
            elif top.op == "pow":
                if rhs.degree > 0:
                    raise NotPolynomial("symbolic exponent")
                exponent = rhs.coefficient(0)
                if exponent.denominator != 1 or exponent < 0:
                    raise NotPolynomial(f"non-natural exponent {exponent}")
                power = Polynomial.constant(1)
                for _ in range(int(exponent)):
                    power = power * lhs
                results[key] = power
            else:  # floordiv, mod
                raise NotPolynomial(f"{top.op} is not polynomial")
            stack.pop()
    return results[id(node)]
