"""The one CPU-dispatch / GPU-execute replay in the codebase.

Before the plan layer existed this loop lived twice: once inside
``TrainingSession`` (aggregates only: makespan, busy time, dispatch CPU
seconds) and once inside ``repro.profiling.timeline`` (full event/gap
record).  Both copies implemented the same execution model

    cpu_ready += dispatch_cost
    start      = max(gpu_free, cpu_ready)
    gpu_free   = start + kernel_duration

and had to be kept in lockstep by tests.  This module merges them: one
pass over the kernel stream produces the full :class:`Timeline` *and* the
scalar aggregates, with the exact accumulation order of the originals so
every derived metric stays bit-identical (the aggregates are accumulated
from the kernel durations in stream order, not re-derived from event
endpoints — floating-point addition order matters).

When kernels are long (big convolutions) the GPU never waits and compute
utilization approaches 100%; when they are tiny and numerous (per-timestep
RNN kernels, small batches) the dispatch+launch path dominates and the GPU
idles between kernels — the paper's Observations 4 and 5 fall out of this
loop directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frameworks.base import Framework
from repro.kernels.base import KernelCategory


@dataclass(frozen=True)
class TimelineEvent:
    """One kernel execution on the GPU timeline."""

    name: str
    category: KernelCategory
    issued_s: float  # when the CPU finished issuing it
    start_s: float  # when the GPU started executing it
    end_s: float
    host_sync: bool

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def queue_delay_s(self) -> float:
        """Time between issue and execution start (GPU was busy)."""
        return max(0.0, self.start_s - self.issued_s)


@dataclass(frozen=True)
class Gap:
    """One idle interval on the GPU timeline."""

    start_s: float
    end_s: float
    cause: str  # "dispatch" | "host sync" | "frontend"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Timeline:
    """A reconstructed iteration timeline with analysis queries."""

    events: list = field(default_factory=list)
    gaps: list = field(default_factory=list)
    makespan_s: float = 0.0

    @property
    def busy_s(self) -> float:
        return sum(event.duration_s for event in self.events)

    @property
    def idle_s(self) -> float:
        return sum(gap.duration_s for gap in self.gaps)

    @property
    def gpu_utilization(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / self.makespan_s)

    def idle_by_cause(self) -> dict:
        """Total idle seconds per cause — the 'where do iterations lose
        time' question."""
        totals: dict = {}
        for gap in self.gaps:
            totals[gap.cause] = totals.get(gap.cause, 0.0) + gap.duration_s
        return totals

    def busy_by_category(self) -> dict:
        """GPU-busy seconds per kernel category."""
        totals: dict = {}
        for event in self.events:
            totals[event.category] = totals.get(event.category, 0.0) + event.duration_s
        return totals

    def longest_gaps(self, count: int = 5) -> list:
        """The largest idle intervals, the merge-analysis headline."""
        if count <= 0:
            raise ValueError("count must be positive")
        return sorted(self.gaps, key=lambda g: g.duration_s, reverse=True)[:count]


@dataclass(frozen=True)
class ExecutionReplay:
    """One kernel stream's resolved execution on the simulated device."""

    timeline: Timeline
    makespan_s: float
    gpu_busy_s: float
    dispatch_cpu_s: float


def replay(timings, framework: Framework, noise=None) -> ExecutionReplay:
    """Run the CPU-dispatch / GPU-execute loop over roofline-timed kernels.

    Returns both the per-kernel event record (with idle gaps attributed to
    their cause: frontend warmup, dispatch starvation, or host syncs) and
    the aggregates the session's metrics derive from.

    ``noise`` is an optional :class:`repro.bench.noise.NoiseStream` (or any
    object with ``kernel_factors(n)`` / ``dispatch_factors(n)``): when
    given, every kernel duration and every dispatch gap is scaled by a
    seeded multiplicative jitter factor, so repeated replays of the same
    plan exhibit machine-like run-to-run variance instead of being
    bit-deterministic.  With ``noise=None`` this path is bit-identical to
    the historical noiseless replay (the aggregates keep their exact
    accumulation order).
    """
    dispatch = framework.dispatch_cost_s
    sync = framework.sync_latency_s
    cpu_ready = framework.frontend_cost_s
    gpu_free = 0.0
    busy = 0.0
    sync_cpu = 0.0
    dispatch_cpu_accum = 0.0
    events: list = []
    gaps: list = []
    pending_cause = "frontend"
    if noise is not None:
        kernel_factors = noise.kernel_factors(len(timings))
        dispatch_factors = noise.dispatch_factors(len(timings))
    for index, timing in enumerate(timings):
        if noise is None:
            issue_cost = dispatch
            duration = timing.duration_s
        else:
            issue_cost = dispatch * dispatch_factors[index]
            duration = timing.duration_s * kernel_factors[index]
            dispatch_cpu_accum += issue_cost
        cpu_ready += issue_cost
        start = max(gpu_free, cpu_ready)
        if start > gpu_free:
            gaps.append(Gap(start_s=gpu_free, end_s=start, cause=pending_cause))
        end = start + duration
        events.append(
            TimelineEvent(
                name=timing.kernel.name,
                category=timing.kernel.category,
                issued_s=cpu_ready,
                start_s=start,
                end_s=end,
                host_sync=timing.kernel.host_sync,
            )
        )
        gpu_free = end
        busy += duration
        if timing.kernel.host_sync:
            # The framework waits for this result, then spends the sync
            # latency in control-flow code before issuing anything else.
            cpu_ready = gpu_free + sync
            sync_cpu += sync
            pending_cause = "host sync"
        else:
            pending_cause = "dispatch"
    makespan = max(gpu_free, cpu_ready)
    if noise is None:
        dispatch_cpu = framework.frontend_cost_s + dispatch * len(timings) + sync_cpu
    else:
        dispatch_cpu = framework.frontend_cost_s + dispatch_cpu_accum + sync_cpu
    return ExecutionReplay(
        timeline=Timeline(events=events, gaps=gaps, makespan_s=makespan),
        makespan_s=makespan,
        gpu_busy_s=busy,
        dispatch_cpu_s=dispatch_cpu,
    )


def makespan_under_noise(durations, host_syncs, framework: Framework, noise) -> float:
    """One noisy makespan without materializing the event timeline.

    The benchmarking harness replays a plan hundreds of times per A/B
    sample series; building a :class:`TimelineEvent` per kernel per sample
    would dominate the measurement.  This runs the identical dispatch /
    execute recurrence over precomputed ``durations`` / ``host_syncs``
    arrays (see :func:`plan_arrays`) and returns only the makespan.
    ``tests/test_bench.py`` pins its agreement with :func:`replay` under
    the same noise stream.
    """
    dispatch = framework.dispatch_cost_s
    sync = framework.sync_latency_s
    cpu_ready = framework.frontend_cost_s
    gpu_free = 0.0
    count = len(durations)
    kernel_factors = noise.kernel_factors(count)
    dispatch_factors = noise.dispatch_factors(count)
    for index in range(count):
        cpu_ready += dispatch * dispatch_factors[index]
        start = cpu_ready if cpu_ready > gpu_free else gpu_free
        gpu_free = start + durations[index] * kernel_factors[index]
        if host_syncs[index]:
            cpu_ready = gpu_free + sync
    return gpu_free if gpu_free > cpu_ready else cpu_ready


def plan_arrays(timings) -> tuple:
    """``(durations, host_syncs)`` lists for :func:`makespan_under_noise`,
    extracted once per plan instead of once per noisy sample."""
    durations = [timing.duration_s for timing in timings]
    host_syncs = [timing.kernel.host_sync for timing in timings]
    return durations, host_syncs
