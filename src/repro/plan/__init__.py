"""Compiled execution plans: the one lowering/timing IR the whole stack
shares.

The paper's toolchain profiles a workload once and asks many questions of
the same run.  This package gives the simulated runtime the same shape —
an XLA-style compile-then-execute split:

- :mod:`repro.plan.compiler` lowers a layer graph once into a
  :class:`~repro.plan.compiled.CompiledPlan` (kernel stream, roofline
  timings, dispatch/execute timeline, allocation trace);
- :mod:`repro.plan.executor` holds the single dispatch/execute replay
  every timeline in the codebase comes from;
- :mod:`repro.plan.cache` memoizes plans so each ``(model, framework,
  batch, gpu)`` point compiles exactly once per session;
- :mod:`repro.plan.transform` expresses the optimization what-ifs as
  plan -> plan rewrites with checked conservation contracts.
"""

from repro.plan.cache import PlanCache, PlanCacheStats
from repro.plan.compiled import AllocationRecord, CompiledPlan
from repro.plan.compiler import (
    compile_graph,
    lower_kernels,
    record_allocations,
    reduced_offload_allocations,
)
from repro.plan.executor import ExecutionReplay, replay
from repro.plan.transform import (
    FeatureMapOffloadTransform,
    FusedRNNTransform,
    HalfPrecisionStorageTransform,
    PlanTransform,
    ResNetDepthTransform,
    TransformContractError,
)

__all__ = [
    "AllocationRecord",
    "CompiledPlan",
    "ExecutionReplay",
    "FeatureMapOffloadTransform",
    "FusedRNNTransform",
    "HalfPrecisionStorageTransform",
    "PlanCache",
    "PlanCacheStats",
    "PlanTransform",
    "ResNetDepthTransform",
    "TransformContractError",
    "compile_graph",
    "lower_kernels",
    "record_allocations",
    "reduced_offload_allocations",
    "replay",
]
