"""Compiled execution plans: the one lowering/timing IR the whole stack
shares.

The paper's toolchain profiles a workload once and asks many questions of
the same run.  This package gives the simulated runtime the same shape —
an XLA-style compile-then-execute split:

- :mod:`repro.plan.compiler` lowers a layer graph once into a
  :class:`~repro.plan.compiled.CompiledPlan` (kernel stream, roofline
  timings, dispatch/execute timeline, allocation trace);
- :mod:`repro.plan.executor` holds the single dispatch/execute replay
  every timeline in the codebase comes from;
- :mod:`repro.plan.cache` memoizes plans so each ``(model, framework,
  batch, gpu)`` point compiles exactly once per session;
- :mod:`repro.plan.transform` expresses the optimization what-ifs as
  plan -> plan rewrites with checked conservation contracts;
- :mod:`repro.plan.pipeline` composes those rewrites behind the
  ``--transforms`` mini-language (``fused_rnn+fp16+offload:0.5``) with
  canonical normalized ordering and composition-wide contract checks;
- :mod:`repro.plan.symbolic` compiles once per (model, framework, GPU)
  with a symbolic batch and specializes per batch — bit-identical to
  :func:`~repro.plan.compiler.compile_graph` inside each guard region.
"""

from repro.plan.cache import PlanCache, PlanCacheStats
from repro.plan.compiled import AllocationRecord, CompiledPlan
from repro.plan.compiler import (
    compile_graph,
    lower_kernels,
    record_allocations,
    reduced_offload_allocations,
)
from repro.plan.executor import ExecutionReplay, replay
from repro.plan.pipeline import (
    PipelineStage,
    TransformPipeline,
    TransformSpecError,
    canonical_transform_spec,
    parse_transform_spec,
    transform_catalog,
)
from repro.plan.symbolic import (
    GuardViolation,
    SymbolicPlan,
    SymbolicPlanSet,
    TraceEscape,
    compile_symbolic,
    plan_difference,
    plan_fingerprint,
    shared_plan_set,
    shared_plan_sets_clear,
)
from repro.plan.symexpr import NotPolynomial, Polynomial, SymTracer, SymValue
from repro.plan.transform import (
    FeatureMapOffloadTransform,
    FusedRNNTransform,
    HalfPrecisionStorageTransform,
    PlanTransform,
    ResNetDepthTransform,
    TransformArgumentError,
    TransformContractError,
)

__all__ = [
    "AllocationRecord",
    "CompiledPlan",
    "ExecutionReplay",
    "FeatureMapOffloadTransform",
    "FusedRNNTransform",
    "GuardViolation",
    "HalfPrecisionStorageTransform",
    "NotPolynomial",
    "PipelineStage",
    "PlanCache",
    "PlanCacheStats",
    "PlanTransform",
    "Polynomial",
    "ResNetDepthTransform",
    "SymTracer",
    "SymValue",
    "SymbolicPlan",
    "SymbolicPlanSet",
    "TraceEscape",
    "TransformArgumentError",
    "TransformContractError",
    "TransformPipeline",
    "TransformSpecError",
    "canonical_transform_spec",
    "compile_graph",
    "compile_symbolic",
    "lower_kernels",
    "parse_transform_spec",
    "plan_difference",
    "plan_fingerprint",
    "record_allocations",
    "reduced_offload_allocations",
    "replay",
    "shared_plan_set",
    "shared_plan_sets_clear",
    "transform_catalog",
]
