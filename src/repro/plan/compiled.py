"""The compiled execution-plan IR.

A :class:`CompiledPlan` is the immutable, fully-lowered form of one
``(model graph, framework, batch, GPU)`` point: the specialized kernel
stream, its roofline timings, the resolved dispatch/execute timeline, and
the allocation trace a training iteration replays through the memory
allocator.  It is the single substrate every consumer reads —
``TrainingSession`` executes plans, the optimization what-ifs transform
them, ``distributed.data_parallel`` derives gradient-ready times from
their timelines, and the profiling/telemetry layers export them — so the
expensive build/lower/time work happens exactly once per point (see
:class:`repro.plan.cache.PlanCache`).

Memory capacity checks *replay* the recorded allocation trace through a
real :class:`~repro.hardware.memory.GPUMemoryAllocator` rather than
comparing a precomputed peak against capacity: the allocator's running
total is recomputed per allocation, so only a true replay reproduces the
exact out-of-memory boundary (and error message) of the uncompiled path.
Each capacity's outcome — snapshot or exception — is memoized on the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frameworks.base import Framework
from repro.graph.layer import LayerGraph
from repro.hardware.devices import GPUSpec
from repro.hardware.memory import AllocationTag, GPUMemoryAllocator

from repro.plan.executor import ExecutionReplay


@dataclass(frozen=True)
class AllocationRecord:
    """One entry of a plan's allocation trace."""

    num_bytes: float
    tag: AllocationTag
    label: str = ""


class CompiledPlan:
    """One fully-lowered, fully-timed execution point.

    Treat instances as immutable: plans are shared through the cache and
    across transforms, and every derived quantity is memoized.
    """

    def __init__(
        self,
        graph: LayerGraph,
        framework: Framework,
        gpu: GPUSpec,
        kernels: list,
        timings: list,
        execution: ExecutionReplay,
        allocations: list,
        backward_spans: tuple = (),
    ):
        self.graph = graph
        self.framework = framework
        self.gpu = gpu
        self.kernels = kernels
        self.timings = timings
        self.execution = execution
        self.allocations = allocations
        #: ``(layer name, first backward-kernel index, end index)`` per
        #: weighted layer, in stream order; indices survive kernel
        #: specialization because it rewrites kernels one-to-one.
        self.backward_spans = tuple(backward_spans)
        # Accumulated in stream order, exactly as the session always has.
        self.total_flops = sum(t.kernel.flops for t in timings)
        self._capacity_outcomes: dict = {}

    # -- identity ------------------------------------------------------

    @property
    def key(self) -> tuple:
        """The point this plan was compiled for."""
        return (
            self.graph.model_name,
            self.framework.key,
            self.graph.batch_size,
            self.gpu.name,
        )

    # -- execution view ------------------------------------------------

    @property
    def timeline(self):
        return self.execution.timeline

    @property
    def makespan_s(self) -> float:
        return self.execution.makespan_s

    @property
    def gpu_busy_s(self) -> float:
        return self.execution.gpu_busy_s

    @property
    def dispatch_cpu_s(self) -> float:
        return self.execution.dispatch_cpu_s

    def gradient_ready_times(self) -> list:
        """``(layer name, seconds)`` when each weighted layer's gradient is
        complete — the end of its last backward kernel on the timeline.

        Layers appear in backward (stream) order, so the list is
        non-decreasing in time: the schedule a layer-wise gradient push
        overlaps against (the mechanism behind ``COMM_OVERLAP``).
        """
        events = self.timeline.events
        return [
            (name, events[end - 1].end_s)
            for name, _start, end in self.backward_spans
        ]

    # -- memory view ---------------------------------------------------

    def check_memory(self, capacity_bytes: float):
        """Replay the allocation trace against ``capacity_bytes``.

        Returns the :class:`~repro.hardware.memory.MemorySnapshot`;
        raises :class:`~repro.hardware.memory.OutOfMemoryError` exactly
        where (and with the message) a live allocator would.  Outcomes are
        memoized per capacity.
        """
        from repro.hardware.memory import OutOfMemoryError

        outcome = self._capacity_outcomes.get(capacity_bytes)
        if outcome is None:
            allocator = GPUMemoryAllocator(
                capacity_bytes, pool_overhead=self.framework.pool_overhead
            )
            try:
                for record in self.allocations:
                    allocator.allocate(record.num_bytes, record.tag, record.label)
                outcome = allocator.snapshot()
            except OutOfMemoryError as error:
                outcome = error
            self._capacity_outcomes[capacity_bytes] = outcome
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def fits(self, capacity_bytes: float) -> bool:
        """Does the full allocation trace fit in ``capacity_bytes``?"""
        from repro.hardware.memory import OutOfMemoryError

        try:
            self.check_memory(capacity_bytes)
        except OutOfMemoryError:
            return False
        return True

    @property
    def memory(self):
        """The unconstrained footprint snapshot (capacity-independent)."""
        return self.check_memory(float("inf"))

    def with_allocations(self, allocations) -> "CompiledPlan":
        """A sibling plan with a rewritten allocation trace (same kernel
        stream and timeline) — how memory-only transforms derive plans."""
        return CompiledPlan(
            graph=self.graph,
            framework=self.framework,
            gpu=self.gpu,
            kernels=self.kernels,
            timings=self.timings,
            execution=self.execution,
            allocations=list(allocations),
            backward_spans=self.backward_spans,
        )

    # -- presentation --------------------------------------------------

    def describe(self, top: int = 8) -> str:
        """Human-readable dump: kernel stream, timeline, memory trace."""
        timeline = self.timeline
        lines = [
            f"compiled plan: {self.graph.model_name} / {self.framework.name} "
            f"b={self.graph.batch_size} on {self.gpu.name}",
            f"  kernels        {len(self.kernels)}",
            f"  gpu busy       {self.gpu_busy_s * 1e3:9.3f} ms",
            f"  makespan       {self.makespan_s * 1e3:9.3f} ms "
            f"(utilization {timeline.gpu_utilization * 100.0:5.1f}%)",
            f"  dispatch cpu   {self.dispatch_cpu_s * 1e3:9.3f} ms",
            f"  total flops    {self.total_flops:.3e}",
        ]
        idle = timeline.idle_by_cause()
        if idle:
            causes = ", ".join(
                f"{cause} {seconds * 1e3:.3f} ms"
                for cause, seconds in sorted(idle.items())
            )
            lines.append(f"  idle by cause  {causes}")
        lines.append(f"  top kernels by accumulated GPU time (of {top} shown):")
        by_name: dict = {}
        for timing in self.timings:
            entry = by_name.setdefault(timing.kernel.name, [0, 0.0])
            entry[0] += 1
            entry[1] += timing.duration_s
        ranked = sorted(by_name.items(), key=lambda item: item[1][1], reverse=True)
        for name, (count, seconds) in ranked[:top]:
            lines.append(f"    {name:42s} x{count:<5d} {seconds * 1e3:9.3f} ms")
        totals: dict = {}
        for record in self.allocations:
            totals[record.tag] = totals.get(record.tag, 0.0) + record.num_bytes
        lines.append(
            f"  allocation trace ({len(self.allocations)} records, "
            f"pool overhead x{self.framework.pool_overhead:.2f}):"
        )
        for tag in sorted(totals, key=lambda tag: tag.value):
            lines.append(
                f"    {tag.value:18s} {totals[tag] / 1024.0 ** 2:10.1f} MiB"
            )
        lines.append(
            f"  peak footprint {self.memory.peak_total / 1024.0 ** 3:.2f} GiB"
        )
        return "\n".join(lines)
