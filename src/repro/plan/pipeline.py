"""The ``--transforms`` pipeline mini-language and its composed rewrite.

A transform pipeline is one compact ``+``-separated string — the form a
CLI flag, a sweep-grid dimension, or the autotuner's search space can
carry, and exactly what the result cache hashes:

``fused_rnn+fp16+offload:0.5``

Each token names a registered plan transform, optionally with one
``:``-separated argument:

- ``fused_rnn`` — the cuDNN-style fused recurrent rewrite
  (:class:`~repro.plan.transform.FusedRNNTransform`).
- ``depth:<conv4_blocks>`` — swap in a residual network with a different
  conv4 stage (:class:`~repro.plan.transform.ResNetDepthTransform`).
- ``offload[:<fraction>]`` — vDNN-style feature-map offload, default
  fraction 0.5 (:class:`~repro.plan.transform.FeatureMapOffloadTransform`).
- ``fp16`` — FP16 feature-map/gradient storage
  (:class:`~repro.plan.transform.HalfPrecisionStorageTransform`).

Pipelines are *normalized*: stages sort into a canonical order that is
also the only semantically sound one — graph rewrites (``fused_rnn``,
``depth``) recompile the plan from its graph and would silently discard
any earlier allocation rewrite, and ``offload`` replaces the allocation
trace wholesale where ``fp16`` merely rescales it.  So graph rewrites
run first, then ``offload``, then ``fp16``, and two specs that differ
only in token order share one canonical text — and therefore one cache
key and one memoized plan.

``apply`` enforces contracts twice: every stage's own
FLOP/weight-conservation declaration (via
:meth:`~repro.plan.transform.PlanTransform.apply`), and the same
declarations over the *whole composition* — a stage that lies about what
it preserved cannot hide behind a later stage's rewrite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.observability.tracer import trace_span
from repro.plan.compiled import CompiledPlan
from repro.plan.transform import (
    FeatureMapOffloadTransform,
    FusedRNNTransform,
    HalfPrecisionStorageTransform,
    PlanTransform,
    ResNetDepthTransform,
    TransformArgumentError,
    TransformContractError,
)


class TransformSpecError(ValueError):
    """A ``--transforms`` string that does not parse."""


@dataclass(frozen=True)
class TransformEntry:
    """One registry row: how a spec token becomes a plan transform.

    ``rank`` is the stage's canonical pipeline position; see the module
    docstring for why the order is semantic, not cosmetic.
    """

    name: str
    rank: int
    summary: str
    arg_name: str | None
    arg_type: type | None
    arg_default: object
    factory: object  # (parsed arg or None) -> PlanTransform

    def build(self, raw_arg: str | None) -> tuple:
        """``(transform, canonical_token)`` for one parsed token."""
        if raw_arg is not None and self.arg_name is None:
            raise TransformSpecError(
                f"transform {self.name!r} takes no argument, got {raw_arg!r}"
            )
        arg = self.arg_default
        if raw_arg is not None:
            try:
                arg = self.arg_type(raw_arg)
            except ValueError:
                raise TransformSpecError(
                    f"bad {self.arg_name} {raw_arg!r} for transform "
                    f"{self.name!r}; expected {self.arg_type.__name__}"
                ) from None
        try:
            transform = self.factory(arg) if self.arg_name else self.factory()
        except TransformArgumentError as exc:
            raise TransformSpecError(f"bad transform {self.name!r}: {exc}") from exc
        token = self.name
        if self.arg_name is not None:
            token = f"{self.name}:{arg:g}" if self.arg_type is float else f"{self.name}:{arg}"
        return transform, token


#: The transform registry, keyed by canonical token name.
_REGISTRY = {
    "fused_rnn": TransformEntry(
        name="fused_rnn",
        rank=0,
        summary="cuDNN-style fused recurrent cells: same FLOPs, coarse "
        "launches, no per-timestep host syncs",
        arg_name=None,
        arg_type=None,
        arg_default=None,
        factory=FusedRNNTransform,
    ),
    "depth": TransformEntry(
        name="depth",
        rank=10,
        summary="reinvest freed memory in depth: a residual network with "
        "<conv4_blocks> conv4 blocks (Observation 12)",
        arg_name="conv4_blocks",
        arg_type=int,
        arg_default=None,
        factory=ResNetDepthTransform,
    ),
    "offload": TransformEntry(
        name="offload",
        rank=20,
        summary="vDNN-style feature-map offload of a stash <fraction> "
        "(default 0.5) to host memory; timings untouched",
        arg_name="fraction",
        arg_type=float,
        arg_default=0.5,
        factory=FeatureMapOffloadTransform,
    ),
    "fp16": TransformEntry(
        name="fp16",
        rank=30,
        summary="FP16 feature-map/gradient storage with an FP32 master "
        "weight copy; compute unchanged",
        arg_name=None,
        arg_type=None,
        arg_default=None,
        factory=HalfPrecisionStorageTransform,
    ),
}

#: Spelling aliases the parser accepts (after lowercasing and ``-``→``_``).
_ALIASES = {
    "fused_rnn": "fused_rnn",
    "fusedrnn": "fused_rnn",
    "fp16": "fp16",
    "fp16_storage": "fp16",
    "depth": "depth",
    "resnet_depth": "depth",
    "offload": "offload",
    "feature_map_offload": "offload",
}

#: Rank assigned to transforms outside the registry (test doubles, ad-hoc
#: rewrites composed via :meth:`TransformPipeline.from_transforms`); they
#: keep their given order after every registered stage.
_UNREGISTERED_RANK = 1000


@dataclass(frozen=True)
class PipelineStage:
    """One normalized pipeline position: a transform plus its canonical
    spec token and sort rank."""

    rank: int
    order: int  # tie-break: original position, keeps unregistered stages stable
    token: str
    transform: PlanTransform


def transform_catalog() -> list:
    """Registry entries in canonical pipeline order (CLI/docs listing)."""
    return sorted(_REGISTRY.values(), key=lambda entry: entry.rank)


class TransformPipeline:
    """A normalized, contract-checked composition of plan transforms.

    Instances are immutable once built; ``text`` preserves the raw spec
    the pipeline was parsed from and ``canonical`` is the normalized
    spelling (the cache dimension).
    """

    def __init__(self, stages=(), text: str = ""):
        self._stages = tuple(
            sorted(stages, key=lambda stage: (stage.rank, stage.token, stage.order))
        )
        self.text = text

    @classmethod
    def from_transforms(cls, transforms, text: str = "") -> "TransformPipeline":
        """Wrap already-constructed transforms (including ones outside the
        registry) into a normalized pipeline."""
        stages = []
        for order, transform in enumerate(transforms):
            name = str(transform.name).lower().replace("-", "_")
            entry = _REGISTRY.get(_ALIASES.get(name, name))
            rank = entry.rank if entry is not None else _UNREGISTERED_RANK
            stages.append(
                PipelineStage(
                    rank=rank,
                    order=order,
                    token=str(transform.name),
                    transform=transform,
                )
            )
        return cls(stages, text=text)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def canonical(self) -> str:
        """The normalized spec text — the form cache keys carry."""
        return "+".join(stage.token for stage in self._stages)

    @property
    def stages(self) -> tuple:
        return self._stages

    @property
    def transforms(self) -> tuple:
        return tuple(stage.transform for stage in self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def __iter__(self):
        return iter(self._stages)

    def __bool__(self) -> bool:
        return bool(self._stages)

    # ------------------------------------------------------------------
    # contracts
    # ------------------------------------------------------------------

    @property
    def preserves_flops(self) -> bool:
        """The composition preserves FLOPs iff every stage declares it."""
        return all(stage.transform.preserves_flops for stage in self._stages)

    @property
    def preserves_weight_bytes(self) -> bool:
        return all(stage.transform.preserves_weight_bytes for stage in self._stages)

    @property
    def flops_rel_tol(self) -> float:
        """Composition FLOP tolerance: per-stage tolerances compound."""
        return max(
            (stage.transform.flops_rel_tol for stage in self._stages),
            default=1e-9,
        ) * max(1, len(self._stages))

    def check_composition(self, source: CompiledPlan, result: CompiledPlan) -> None:
        """Enforce the declared contracts over the whole composition.

        The per-stage checks inside :meth:`PlanTransform.apply` guard each
        rewrite; this one guards their *product*, so a stage that skips or
        fudges its own check still cannot smuggle work in or out of a
        pipeline that declares conservation.
        """
        if self.preserves_flops and not math.isclose(
            result.total_flops, source.total_flops, rel_tol=self.flops_rel_tol
        ):
            raise TransformContractError(
                f"pipeline {self.canonical!r} declares FLOP preservation but "
                f"moved total FLOPs from {source.total_flops:.6e} to "
                f"{result.total_flops:.6e}"
            )
        if (
            self.preserves_weight_bytes
            and result.graph.total_weight_bytes != source.graph.total_weight_bytes
        ):
            raise TransformContractError(
                f"pipeline {self.canonical!r} declares weight-byte "
                f"preservation but moved total weight bytes from "
                f"{source.graph.total_weight_bytes} to "
                f"{result.graph.total_weight_bytes}"
            )

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------

    def apply(self, plan: CompiledPlan) -> CompiledPlan:
        """Apply every stage in canonical order and verify both the
        per-stage and the composition-wide conservation contracts."""
        if not self._stages:
            return plan
        span = trace_span(
            "plan.pipeline",
            pipeline=self.canonical,
            model=plan.graph.model_name,
            batch_size=plan.graph.batch_size,
            stages=len(self._stages),
        )
        with span:
            result = plan
            for stage in self._stages:
                result = stage.transform.apply(result)
            self.check_composition(plan, result)
            span.set_attributes(
                kernels_before=len(plan.kernels),
                kernels_after=len(result.kernels),
            )
        return result

    def describe(self) -> str:
        """One human line per stage, in application order."""
        if not self._stages:
            return "pipeline: (empty)"
        lines = [f"pipeline: {self.canonical}"]
        for position, stage in enumerate(self._stages, start=1):
            transform = stage.transform
            contracts = []
            if transform.preserves_flops:
                contracts.append("flops")
            if transform.preserves_weight_bytes:
                contracts.append("weight bytes")
            preserved = " + ".join(contracts) if contracts else "nothing"
            lines.append(
                f"  {position}. {stage.token:<14s} preserves {preserved}"
            )
        return "\n".join(lines)


def parse_transform_spec(text: str) -> TransformPipeline:
    """Parse one ``--transforms`` string into a :class:`TransformPipeline`.

    The empty (or whitespace-only) string is the empty pipeline — the
    untransformed point, byte-identical everywhere to a spec that never
    mentioned transforms.

    Raises:
        TransformSpecError: on any malformed token (with the offending
            piece named, never a bare traceback from a constructor).
    """
    if not text.strip():
        return TransformPipeline((), text=text)
    stages = []
    seen = set()
    for order, raw_token in enumerate(text.split("+")):
        token = raw_token.strip()
        if not token:
            raise TransformSpecError(f"empty transform token in {text!r}")
        name_text, _, arg_text = token.partition(":")
        name = name_text.strip().lower().replace("-", "_")
        canonical_name = _ALIASES.get(name)
        if canonical_name is None:
            known = ", ".join(sorted(_REGISTRY))
            raise TransformSpecError(
                f"unknown transform {name_text.strip()!r}; known: {known}"
            )
        if canonical_name in seen:
            raise TransformSpecError(
                f"transform {canonical_name!r} appears more than once in {text!r}"
            )
        seen.add(canonical_name)
        entry = _REGISTRY[canonical_name]
        raw_arg = arg_text.strip() if _ else None
        if raw_arg is None and entry.arg_name is not None and entry.arg_default is None:
            raise TransformSpecError(
                f"transform {canonical_name!r} requires an argument: "
                f"{canonical_name}:<{entry.arg_name}>"
            )
        transform, canonical_token = entry.build(raw_arg)
        stages.append(
            PipelineStage(
                rank=entry.rank,
                order=order,
                token=canonical_token,
                transform=transform,
            )
        )
    return TransformPipeline(stages, text=text)


def canonical_transform_spec(text: str) -> str:
    """The normalized spelling of a spec (parse + re-render)."""
    return parse_transform_spec(text).canonical
