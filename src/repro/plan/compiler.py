"""Graph -> plan lowering: kernel stream, roofline timing, replay, and the
allocation trace, compiled once per point.

``compile_graph`` is the only place in the codebase that lowers a
:class:`~repro.graph.layer.LayerGraph` into its executable form; the
session, the optimization transforms, the depth search, and the profiling
tools all go through it (usually via the session's
:class:`~repro.plan.cache.PlanCache`).

The memory-model constants (``GRADIENT_MAP_FACTOR``, the input staging
buffer count) stay defined in ``repro.training.session`` and are read
lazily at compile time, so ablation studies that monkeypatch them keep
working against the plan layer.
"""

from __future__ import annotations

from repro.frameworks.base import Framework, MomentumAllocation
from repro.graph.layer import LayerGraph
from repro.hardware.devices import GPUSpec
from repro.hardware.memory import AllocationTag
from repro.hardware.roofline import RooflineModel
import repro.kernels.misc as misc
from repro.observability.tracer import trace_span

from repro.plan.compiled import AllocationRecord, CompiledPlan
from repro.plan.executor import replay


def _memory_model_constants() -> tuple:
    """``(GRADIENT_MAP_FACTOR, input staging buffers)`` — read lazily from
    the session module both to avoid a circular import and so runtime
    patches of the constants (sensitivity ablations) take effect here."""
    from repro.training import session as session_module

    return session_module.GRADIENT_MAP_FACTOR, session_module._INPUT_STAGING_BUFFERS


def lower_kernels(graph: LayerGraph, framework: Framework) -> list:
    """The full kernel stream of one iteration: input copy, forward, loss,
    backward, and one optimizer-update kernel per weighted layer
    (frameworks launch per-tensor updates), specialized to the framework's
    kernel-efficiency personality."""
    kernels = [misc.memcpy_h2d(graph.input_bytes)]
    kernels.extend(graph.iteration_kernels())
    for layer in graph.layers:
        if layer.weight_elements > 0:
            kernels.append(misc.sgd_update(layer.weight_elements, momentum=True))
    return framework.specialize_kernels(kernels)


def _backward_spans(graph: LayerGraph) -> tuple:
    """Stream-index ranges of each weighted layer's backward kernels.

    The stream layout is ``[h2d copy] + forwards + extras + backwards
    (layers reversed)``; specialization rewrites kernels one-to-one, so
    the indices computed on the graph remain valid on the specialized
    stream and its timings."""
    index = 1  # the h2d input copy
    for layer in graph.layers:
        index += len(layer.forward_kernels)
    index += len(graph.extra_kernels)
    spans = []
    for layer in reversed(graph.layers):
        count = len(layer.backward_kernels)
        if count and layer.weight_elements > 0:
            spans.append((layer.name, index, index + count))
        index += count
    return tuple(spans)


def record_allocations(graph: LayerGraph, framework: Framework) -> list:
    """One training setup + iteration's allocation trace, in framework
    order: per-layer weights/gradients/maps/workspace, input staging, then
    optimizer state (statically with the weights for TF/CNTK, lazily for
    MXNet — the paper's "dynamic" class)."""
    gradient_map_factor, staging_buffers = _memory_model_constants()
    fm_factor = (1.0 + gradient_map_factor) * graph.feature_map_overallocation
    records = []
    for layer in graph.layers:
        if layer.weight_bytes:
            records.append(
                AllocationRecord(layer.weight_bytes, AllocationTag.WEIGHTS, layer.name)
            )
            records.append(
                AllocationRecord(
                    layer.weight_bytes, AllocationTag.WEIGHT_GRADIENTS, layer.name
                )
            )
        if layer.stash_bytes:
            records.append(
                AllocationRecord(
                    layer.stash_bytes * fm_factor,
                    AllocationTag.FEATURE_MAPS,
                    layer.name,
                )
            )
        if layer.workspace_bytes:
            records.append(
                AllocationRecord(
                    layer.workspace_bytes * framework.workspace_factor,
                    AllocationTag.WORKSPACE,
                    layer.name,
                )
            )
    if graph.input_bytes:
        records.append(
            AllocationRecord(
                graph.input_bytes * staging_buffers,
                AllocationTag.FEATURE_MAPS,
                "input staging",
            )
        )
    momentum_bytes = graph.total_weight_bytes
    if framework.momentum_allocation is MomentumAllocation.DYNAMIC:
        records.append(
            AllocationRecord(momentum_bytes, AllocationTag.DYNAMIC, "momentum")
        )
    else:
        records.append(
            AllocationRecord(momentum_bytes, AllocationTag.WEIGHTS, "momentum")
        )
    return records


def reduced_offload_allocations(
    graph: LayerGraph, framework: Framework, offload_fraction: float
) -> list:
    """The vDNN-style reduced allocation trace: the offloaded stash
    fraction lives in host memory, input staging is spilled too, and
    optimizer state is allocated lazily (dynamic) alongside the
    prefetches."""
    gradient_map_factor, _staging = _memory_model_constants()
    fm_factor = (
        (1.0 + gradient_map_factor)
        * graph.feature_map_overallocation
        * (1.0 - offload_fraction)
    )
    records = []
    for layer in graph.layers:
        if layer.weight_bytes:
            records.append(AllocationRecord(layer.weight_bytes, AllocationTag.WEIGHTS))
            records.append(
                AllocationRecord(layer.weight_bytes, AllocationTag.WEIGHT_GRADIENTS)
            )
        if layer.stash_bytes:
            records.append(
                AllocationRecord(
                    layer.stash_bytes * fm_factor, AllocationTag.FEATURE_MAPS
                )
            )
        if layer.workspace_bytes:
            records.append(
                AllocationRecord(
                    layer.workspace_bytes * framework.workspace_factor,
                    AllocationTag.WORKSPACE,
                )
            )
    records.append(AllocationRecord(graph.total_weight_bytes, AllocationTag.DYNAMIC))
    return records


def compile_graph(
    graph: LayerGraph,
    framework: Framework,
    gpu: GPUSpec,
    roofline: RooflineModel | None = None,
) -> CompiledPlan:
    """Lower one layer graph into a :class:`CompiledPlan` for one device.

    This is the single expensive step of the whole simulated stack; every
    caller that can should reach it through a
    :class:`~repro.plan.cache.PlanCache` so each ``(model, framework,
    batch, gpu)`` point is compiled exactly once.
    """
    span = trace_span(
        "plan.compile",
        model=graph.model_name,
        framework=framework.key,
        device=gpu.name,
        batch_size=graph.batch_size,
    )
    with span:
        kernels = lower_kernels(graph, framework)
        model = roofline if roofline is not None else RooflineModel(gpu)
        timings = model.time_kernels(kernels)
        execution = replay(timings, framework)
        allocations = record_allocations(graph, framework)
        plan = CompiledPlan(
            graph=graph,
            framework=framework,
            gpu=gpu,
            kernels=kernels,
            timings=timings,
            execution=execution,
            allocations=allocations,
            backward_spans=_backward_spans(graph),
        )
        span.set_attributes(
            kernels=len(kernels),
            gpu_busy_s=execution.gpu_busy_s,
            makespan_s=execution.makespan_s,
        )
    return plan
