"""Plan transforms: the optimization what-ifs as explicit plan -> plan
rewrites with centrally-checked conservation contracts.

Every optimization the paper's Section 4 discusses — fused RNN kernels,
FP16 storage, deeper models in the freed memory, vDNN-style feature-map
offloading — is a rewrite of a compiled plan.  Expressing them as
:class:`PlanTransform` subclasses buys two things: transforms compose
(apply one transform's output to the next), and each one *declares*
whether it preserves total FLOPs and total weight bytes, which
``apply`` verifies after every rewrite.  A transform that silently
changes the amount of work it claims to merely reschedule is a modeling
bug; :class:`TransformContractError` turns it into a loud one.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.hardware.memory import AllocationTag
from repro.observability.tracer import trace_span

from repro.plan import compiler
from repro.plan.compiled import CompiledPlan


class TransformContractError(RuntimeError):
    """A transform violated a conservation contract it declared."""


class TransformArgumentError(ValueError):
    """A transform was constructed with an out-of-domain argument."""


class PlanTransform:
    """Base class: ``apply`` wraps the subclass rewrite with tracing and
    the declared conservation checks."""

    #: Human-readable transform identity (span attribute, error messages).
    name = "transform"
    #: Declared contracts, verified by :meth:`apply` after every rewrite.
    preserves_flops = True
    preserves_weight_bytes = True
    #: Tolerance for the FLOP contract (rewrites may reassociate sums).
    flops_rel_tol = 1e-9

    def apply(self, plan: CompiledPlan) -> CompiledPlan:
        """Rewrite ``plan`` and enforce the declared contracts."""
        span = trace_span(
            "plan.transform",
            transform=self.name,
            model=plan.graph.model_name,
            batch_size=plan.graph.batch_size,
        )
        with span:
            result = self.rewrite(plan)
            self._enforce_contracts(plan, result)
            span.set_attributes(
                kernels_before=len(plan.kernels),
                kernels_after=len(result.kernels),
            )
        return result

    def rewrite(self, plan: CompiledPlan) -> CompiledPlan:
        raise NotImplementedError

    def _enforce_contracts(self, source: CompiledPlan, result: CompiledPlan) -> None:
        if self.preserves_flops and not math.isclose(
            result.total_flops, source.total_flops, rel_tol=self.flops_rel_tol
        ):
            raise TransformContractError(
                f"{self.name} declares FLOP preservation but moved total "
                f"FLOPs from {source.total_flops:.6e} to {result.total_flops:.6e}"
            )
        if (
            self.preserves_weight_bytes
            and result.graph.total_weight_bytes != source.graph.total_weight_bytes
        ):
            raise TransformContractError(
                f"{self.name} declares weight-byte preservation but moved "
                f"total weight bytes from {source.graph.total_weight_bytes} "
                f"to {result.graph.total_weight_bytes}"
            )


class FusedRNNTransform(PlanTransform):
    """cuDNN-style fused RNN rewrite: same FLOPs, coarser launches, no
    host round-trips (the paper's top LSTM recommendation)."""

    name = "fused-rnn"

    def rewrite(self, plan: CompiledPlan) -> CompiledPlan:
        from repro.optimizations.fusion import fuse_recurrent_layers

        return compiler.compile_graph(
            fuse_recurrent_layers(plan.graph), plan.framework, plan.gpu
        )


class HalfPrecisionStorageTransform(PlanTransform):
    """FP16 feature-map/gradient storage with an FP32 master weight copy:
    compute (and therefore FLOPs) unchanged, allocation trace rescaled."""

    name = "fp16-storage"

    #: Allocation-trace scale per tag: maps and gradients halve, weights
    #: grow by the FP16 working copy, optimizer state stays FP32.
    SCALES = {
        AllocationTag.FEATURE_MAPS: 0.5,
        AllocationTag.WEIGHT_GRADIENTS: 0.5,
        AllocationTag.WEIGHTS: 1.5,
    }

    def rewrite(self, plan: CompiledPlan) -> CompiledPlan:
        rescaled = [
            replace(
                record, num_bytes=record.num_bytes * self.SCALES.get(record.tag, 1.0)
            )
            for record in plan.allocations
        ]
        return plan.with_allocations(rescaled)


class FeatureMapOffloadTransform(PlanTransform):
    """vDNN-style offload of a stash fraction to host memory: kernels and
    timings untouched, the allocation trace replaced by the reduced replay
    (offloaded maps gone, staging spilled, optimizer state dynamic)."""

    name = "feature-map-offload"

    def __init__(self, offload_fraction: float):
        try:
            offload_fraction = float(offload_fraction)
        except (TypeError, ValueError):
            raise TransformArgumentError(
                f"offload fraction must be a number, got {offload_fraction!r}"
            ) from None
        if not 0.0 <= offload_fraction <= 1.0:
            raise TransformArgumentError(
                f"offload fraction must be in [0, 1], got {offload_fraction!r}"
            )
        self.offload_fraction = offload_fraction

    def rewrite(self, plan: CompiledPlan) -> CompiledPlan:
        return plan.with_allocations(
            compiler.reduced_offload_allocations(
                plan.graph, plan.framework, self.offload_fraction
            )
        )


class ResNetDepthTransform(PlanTransform):
    """Reinvest freed memory in depth (Observation 12): swap the plan's
    graph for a residual network with a different conv4 stage.  Deeper
    networks do more work, so neither conservation contract holds — the
    declarations say so."""

    name = "resnet-depth"
    preserves_flops = False
    preserves_weight_bytes = False

    def __init__(self, conv4_blocks: int):
        if not isinstance(conv4_blocks, int) or isinstance(conv4_blocks, bool):
            raise TransformArgumentError(
                f"conv4 block count must be an integer, got {conv4_blocks!r}"
            )
        if conv4_blocks < 1:
            raise TransformArgumentError(
                f"conv4 block count must be >= 1, got {conv4_blocks}"
            )
        self.conv4_blocks = conv4_blocks

    def rewrite(self, plan: CompiledPlan) -> CompiledPlan:
        from repro.optimizations.depth import build_resnet_with_depth

        return compiler.compile_graph(
            build_resnet_with_depth(plan.graph.batch_size, self.conv4_blocks),
            plan.framework,
            plan.gpu,
        )
