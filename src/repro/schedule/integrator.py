"""Curve-driven segmentation and closed-form integration of schedules.

A schedule plus a convergence curve induces *segments*: maximal runs of
steps at one batch size.  This module materializes them without ever
stepping the optimizer — boundaries come from closed-form curve inverses
(:meth:`~repro.training.convergence.ConvergenceModel.samples_to_fraction`)
or bounded checkpoint scans, so a run needing 10^12 samples costs the
same to integrate as one needing 10^4.  The segment list is the single
source of truth downstream: the schedule-aware ``time_to_metric``
integrates time over it, ``scheduled_time_to_accuracy`` prices each
segment's statistical penalty and fault window over it, and the engine
aggregates per-segment iteration profiles over it.

Conservation contract (checked by the ``schedule-sample-conservation``
invariant): segments tile ``[0, total_samples]`` exactly — the first
starts at 0, each starts where its predecessor ends, the last ends at
``total_samples``, and every segment's ``samples`` equals its span.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.schedule.spec import (
    BatchSchedule,
    GeometricSchedule,
    GnsSchedule,
    MAX_SEGMENTS,
    PLATEAU_REL_IMPROVEMENT,
    PlateauSchedule,
)
from repro.training.convergence import ConvergenceModel, FIG2_MODELS

#: Cap on checkpoint evaluations while scanning for a plateau trigger in
#: one segment; each evaluation is two closed-form curve points, so this
#: bounds work per segment at microseconds regardless of run length.
_MAX_BOUNDARY_EVALS = 4096


@dataclass(frozen=True)
class Segment:
    """A maximal run of optimizer steps at one batch size.

    ``start_samples``/``end_samples`` index the *base-equivalent* sample
    axis of the convergence curve; ``steps`` may be fractional in the
    final segment (the run stops mid-window when the target is hit).
    """

    index: int
    batch_size: int
    start_samples: float
    end_samples: float

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("segment batch size must be positive")
        if self.end_samples < self.start_samples:
            raise ValueError("segment cannot end before it starts")

    @property
    def samples(self) -> float:
        """Samples consumed in this segment (its accounting weight)."""
        return self.end_samples - self.start_samples

    @property
    def steps(self) -> float:
        """Optimizer steps in this segment (fractional at the tail)."""
        return self.samples / self.batch_size


def _remaining_gap(model: ConvergenceModel, samples: float) -> float:
    """The un-closed fraction of the metric gap — strictly positive, and
    affine-invariant in the metric axis."""
    return 1.0 - model.fraction_at(samples)


def _grown_batch(batch: int, factor: float, ceiling: int) -> int:
    """One growth event: multiply, round, force strict progress, cap."""
    return min(ceiling, max(batch + 1, int(round(batch * factor))))


def _next_change(schedule, model, batch, base_batch, start, horizon):
    """The next ``(boundary_samples, new_batch)`` after ``start``, or
    ``(None, batch)`` when the batch never changes again.  Boundaries are
    snapped to whole evaluation windows (``every``/``patience`` steps at
    the *current* batch) from the segment start."""
    if isinstance(schedule, GeometricSchedule):
        if batch >= schedule.ceiling or schedule.factor == 1.0:
            return None, batch
        boundary = start + float(batch * schedule.every)
        return boundary, _grown_batch(batch, schedule.factor, schedule.ceiling)

    if isinstance(schedule, PlateauSchedule):
        if batch >= schedule.ceiling or schedule.factor == 1.0:
            return None, batch
        window = float(batch * schedule.patience)
        grown = _grown_batch(batch, schedule.factor, schedule.ceiling)
        if not model.logistic:
            # Power-law curves decelerate monotonically, so the window
            # improvement r(n) = 1 - (1 + w/(n_half+n))^-gamma decays and
            # the first stalled checkpoint solves r(n) < threshold in
            # closed form: n > w/c - n_half with
            # c = (1-threshold)^(-1/gamma) - 1.
            c = (1.0 - PLATEAU_REL_IMPROVEMENT) ** (-1.0 / model.gamma) - 1.0
            stall = max(0.0, window / c - model.samples_to_half)
            windows = (
                math.ceil((stall - start) / window) + 1
                if stall > start
                else 1
            )
            return start + windows * window, grown
        # Logistic (game-score) curves stall *early* — the ramp is flat
        # before samples_to_half — so a bounded checkpoint scan finds the
        # trigger almost immediately; the cap guards the late tail.
        previous = start
        for _ in range(_MAX_BOUNDARY_EVALS):
            checkpoint = previous + window
            if previous >= horizon:
                return checkpoint, batch  # caller truncates at the horizon
            gap_before = _remaining_gap(model, previous)
            gap_after = _remaining_gap(model, checkpoint)
            improvement = (gap_before - gap_after) / gap_before
            if improvement < PLATEAU_REL_IMPROVEMENT:
                return checkpoint, grown
            previous = checkpoint
        return None, batch

    if isinstance(schedule, GnsSchedule):
        if batch >= schedule.ceiling:
            return None, batch
        window = float(batch * schedule.every)
        # Noise-scale proxy: base_batch / remaining_gap(n), which grows as
        # the gradient signal shrinks.  Growth fires when the proxy has at
        # least doubled the current batch (adadamp-style doubling, so the
        # segment count stays logarithmic); the crossing point is a
        # closed-form curve inverse, snapped up to a whole window.
        threshold_fraction = 1.0 - base_batch / (2.0 * batch)
        trigger = model.samples_to_fraction(threshold_fraction)
        windows = max(1, math.ceil((trigger - start) / window))
        boundary = start + windows * window
        proxy = base_batch / _remaining_gap(model, boundary)
        grown = max(2 * batch, int(proxy))
        return boundary, max(base_batch, min(schedule.ceiling, grown))

    raise TypeError(f"unknown schedule type {type(schedule).__name__}")


def build_segments(
    schedule,
    base_batch: int,
    total_samples: float,
    model: ConvergenceModel | None = None,
) -> tuple:
    """Tile ``[0, total_samples]`` with the schedule's segments.

    ``schedule=None`` and the fixed schedule produce the single legacy
    segment.  Adaptive schedules need ``model`` (the curve that drives
    plateau/gns triggers and, for uniformity, bounds every schedule's
    horizon).  The result always has at least one segment — a zero-length
    run (``total_samples == 0``) is one zero-length segment, which every
    consumer must price at zero.
    """
    if int(base_batch) < 1:
        raise ValueError("base batch must be a positive integer")
    if total_samples < 0:
        raise ValueError("total samples cannot be negative")
    base_batch = int(base_batch)
    if schedule is None or schedule.is_fixed:
        return (Segment(0, base_batch, 0.0, float(total_samples)),)
    if model is None:
        raise ValueError(
            f"adaptive schedule {schedule.canonical!r} is driven by a "
            f"convergence curve; pass the model's ConvergenceModel"
        )
    segments = []
    batch = base_batch
    start = 0.0
    while len(segments) < MAX_SEGMENTS - 1:
        boundary, next_batch = _next_change(
            schedule, model, batch, base_batch, start, total_samples
        )
        if boundary is None or boundary >= total_samples:
            break
        segments.append(Segment(len(segments), batch, start, boundary))
        start = boundary
        batch = next_batch
    segments.append(Segment(len(segments), batch, start, float(total_samples)))
    return tuple(segments)


@dataclass(frozen=True)
class ScheduleIntegration:
    """One schedule resolved against one curve: the segment tiling plus
    the closed-form totals every consumer integrates over."""

    model_key: str
    schedule: BatchSchedule | None
    base_batch: int
    target: float
    total_samples: float
    segments: tuple

    @property
    def total_steps(self) -> float:
        """Optimizer steps across all segments (fractional tail included)."""
        return math.fsum(segment.steps for segment in self.segments)

    @property
    def final_batch(self) -> int:
        """The batch size the run ends at."""
        return self.segments[-1].batch_size

    @property
    def batch_sizes(self) -> tuple:
        """Distinct batch sizes, in first-use order (one session
        specialization each, thanks to symbolic plans)."""
        seen = []
        for segment in self.segments:
            if segment.batch_size not in seen:
                seen.append(segment.batch_size)
        return tuple(seen)

    def time_with(self, throughput_for_batch) -> float:
        """Wall-clock seconds: each segment priced at its own batch's
        throughput (samples/s)."""
        total = 0.0
        for segment in self.segments:
            if segment.samples == 0.0:
                continue
            throughput = throughput_for_batch(segment.batch_size)
            if throughput <= 0:
                raise ValueError(
                    f"throughput for batch {segment.batch_size} must be "
                    f"positive, got {throughput}"
                )
            total += segment.samples / throughput
        return total

    def describe(self) -> str:
        """Human-readable segment table (``tbd schedule show``)."""
        spec_text = "fixed" if self.schedule is None else self.schedule.canonical
        lines = [
            f"schedule {spec_text} on {self.model_key}, base batch "
            f"{self.base_batch} -> target {self.target:g} "
            f"({self.total_samples:.4g} samples, "
            f"{len(self.segments)} segment(s))"
        ]
        for segment in self.segments:
            lines.append(
                f"  seg {segment.index}: b={segment.batch_size:<5d} "
                f"samples [{segment.start_samples:.4g}, "
                f"{segment.end_samples:.4g})  steps {segment.steps:.1f}"
            )
        return "\n".join(lines)


def integrate_schedule(
    model_key: str,
    schedule,
    base_batch: int,
    target: float | None = None,
    target_fraction: float = 0.95,
) -> ScheduleIntegration:
    """Resolve ``schedule`` against ``model_key``'s convergence curve.

    ``target`` defaults to ``target_fraction`` of the asymptotic metric
    gap (matching :func:`repro.distributed.time_to_accuracy.\
samples_to_accuracy`'s convention).  Accepts a schedule object, spec
    text, or ``None``/empty for the fixed baseline.
    """
    from repro.schedule.spec import parse_schedule_spec

    if isinstance(schedule, str):
        schedule = parse_schedule_spec(schedule)
    if model_key not in FIG2_MODELS:
        known = ", ".join(sorted(FIG2_MODELS))
        raise KeyError(
            f"no convergence model for {model_key!r} (schedules integrate "
            f"against the convergence curve); known: {known}"
        )
    model = FIG2_MODELS[model_key]
    if target is None:
        if not 0.0 < target_fraction < 1.0:
            raise ValueError("target fraction must be in (0, 1)")
        target = model.initial + target_fraction * (model.final - model.initial)
    spec_text = (
        "" if schedule is None or schedule.is_fixed else schedule.canonical
    )
    with trace_span(
        "schedule.integrate",
        model=model_key,
        schedule=spec_text or "fixed",
        base_batch=int(base_batch),
    ) as span:
        total_samples = model.samples_to(target)
        segments = build_segments(
            schedule, base_batch, total_samples, model=model
        )
        span.set_attribute("segments", len(segments))
        get_metrics().counter("schedule_integrations_total").inc()
        get_metrics().counter("schedule_segments_total").inc(len(segments))
        return ScheduleIntegration(
            model_key=model_key,
            schedule=None if schedule is None or schedule.is_fixed else schedule,
            base_batch=int(base_batch),
            target=float(target),
            total_samples=total_samples,
            segments=segments,
        )
