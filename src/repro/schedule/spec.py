"""The batch-schedule mini-language: declarative adaptive batch sizes.

A *batch schedule* says how the mini-batch grows over one training run.
The paper sweeps fixed batches only; the adadamp line of work grows the
batch during training to damp gradient noise, and this module makes that
a first-class, cacheable sweep dimension.  A schedule is pure data — it
carries no base batch (``b0`` is always the sweep point's ``batch_size``,
which is what makes ``fixed`` coincide exactly with today's grid) and no
curve state (segmentation against a convergence curve happens in
:mod:`repro.schedule.integrator`).

The spec text mirrors :func:`repro.plan.pipeline.parse_transform_spec`:
``name`` or ``name:key=value,key=value``, e.g.

- ``fixed`` — the legacy path, byte-identical to no schedule at all;
- ``geometric:factor=2,every=50`` — multiply the batch by ``factor``
  every ``every`` optimizer steps, up to ``ceiling``;
- ``plateau:factor=2,patience=80`` — watch the convergence curve every
  ``patience`` steps and grow the batch when the *relative* improvement
  of the remaining metric gap stalls (scale-free, so affine rescaling of
  the curve never changes the trigger);
- ``gns:ceiling=256`` — track a deterministic gradient-noise-scale proxy
  derived from the convergence curve (noise scale grows as the gradient
  signal shrinks) and raise the batch toward ``ceiling`` with it.

``repr(schedule)`` *is* the canonical spec text with every default made
explicit, so ``parse_schedule_spec(repr(s)) == s`` holds and the
canonical text is stable against future default changes — which is what
lets the text serve as a content-addressed cache dimension.
"""

from __future__ import annotations

from dataclasses import dataclass


class ScheduleSpecError(ValueError):
    """A schedule spec string failed to parse or validate."""


def _positive_int(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ScheduleSpecError(f"{name} must be a positive integer, got {value!r}")


@dataclass(frozen=True)
class BatchSchedule:
    """Base class: one declarative batch-growth policy.

    Subclasses are frozen dataclasses whose fields are exactly the
    mini-language arguments; ``canonical`` renders them back in a fixed
    order with floats formatted ``{:g}`` (matching the transform
    pipeline's canonical tokens).
    """

    #: Mini-language head token; overridden per subclass.
    name = "schedule"

    @property
    def is_fixed(self) -> bool:
        """True for the schedule that never changes the batch."""
        return False

    @property
    def canonical(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.canonical


@dataclass(frozen=True, repr=False)
class FixedSchedule(BatchSchedule):
    """The identity schedule: the batch stays at the point's ``b0``.

    Normalizes to the *empty* schedule everywhere (cache keys, payloads,
    JSONL), which is how ``fixed`` stays byte-identical to the legacy
    fixed-batch grid.
    """

    name = "fixed"

    @property
    def is_fixed(self) -> bool:
        return True

    @property
    def canonical(self) -> str:
        return "fixed"


@dataclass(frozen=True, repr=False)
class GeometricSchedule(BatchSchedule):
    """Multiply the batch by ``factor`` every ``every`` steps, capped at
    ``ceiling`` (a cap below ``b0`` simply freezes the batch at ``b0``)."""

    factor: float = 2.0
    every: int = 50
    ceiling: int = 1024

    name = "geometric"

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ScheduleSpecError(
                f"geometric factor must be >= 1 (schedules never shrink the "
                f"batch), got {self.factor!r}"
            )
        _positive_int("geometric every", self.every)
        _positive_int("geometric ceiling", self.ceiling)

    @property
    def canonical(self) -> str:
        return (
            f"geometric:factor={self.factor:g},every={self.every},"
            f"ceiling={self.ceiling}"
        )


@dataclass(frozen=True, repr=False)
class PlateauSchedule(BatchSchedule):
    """Grow the batch by ``factor`` when the convergence curve plateaus.

    Every ``patience`` steps the integrator measures the *relative*
    improvement of the remaining metric gap over the window; below
    :data:`PLATEAU_REL_IMPROVEMENT` the batch multiplies by ``factor``
    (capped at ``ceiling``).  The trigger sees only gap *fractions*, so
    it is invariant under affine rescaling of the curve's metric axis.
    """

    factor: float = 2.0
    patience: int = 50
    ceiling: int = 1024

    name = "plateau"

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ScheduleSpecError(
                f"plateau factor must be >= 1 (schedules never shrink the "
                f"batch), got {self.factor!r}"
            )
        _positive_int("plateau patience", self.patience)
        _positive_int("plateau ceiling", self.ceiling)

    @property
    def canonical(self) -> str:
        return (
            f"plateau:factor={self.factor:g},patience={self.patience},"
            f"ceiling={self.ceiling}"
        )


@dataclass(frozen=True, repr=False)
class GnsSchedule(BatchSchedule):
    """Track a gradient-noise-scale proxy toward ``ceiling``.

    McCandlish et al.'s critical batch grows as the gradient signal
    shrinks; the deterministic proxy here is ``b0 / remaining_gap(n)``
    (remaining gap fraction from the convergence curve), re-evaluated
    every ``every`` steps.  Growth fires when the proxy has at least
    doubled the running batch (adadamp-style doubling) and is clamped
    monotone non-decreasing below ``ceiling``.
    """

    ceiling: int = 0
    every: int = 50

    name = "gns"

    def __post_init__(self) -> None:
        _positive_int("gns ceiling", self.ceiling)
        _positive_int("gns every", self.every)

    @property
    def canonical(self) -> str:
        return f"gns:ceiling={self.ceiling},every={self.every}"


#: Relative improvement of the remaining metric-gap fraction per plateau
#: window below which the curve counts as plateaued.  A module constant —
#: not a spec argument — so the trigger semantics are versioned with the
#: code fingerprint, not the cache key text.
PLATEAU_REL_IMPROVEMENT = 1e-4

#: Hard cap on generated segments; growth schedules converge to their
#: ceiling long before this, so hitting it means a malformed schedule.
MAX_SEGMENTS = 64

#: head token -> (schedule class, argument name -> parser, required args)
_REGISTRY = {
    "fixed": (FixedSchedule, {}, ()),
    "geometric": (
        GeometricSchedule,
        {"factor": float, "every": int, "ceiling": int},
        (),
    ),
    "plateau": (
        PlateauSchedule,
        {"factor": float, "patience": int, "ceiling": int},
        (),
    ),
    "gns": (GnsSchedule, {"ceiling": int, "every": int}, ("ceiling",)),
}

#: Spelling aliases, applied after lowercasing and ``-`` -> ``_``.
_ALIASES = {
    "geo": "geometric",
    "noise": "gns",
    "constant": "fixed",
}


def schedule_names() -> tuple:
    """Canonical head tokens, sorted (for help text and error messages)."""
    return tuple(sorted(_REGISTRY))


def parse_schedule_spec(text: str | None):
    """Parse a schedule spec string into a :class:`BatchSchedule`.

    ``None``, the empty string, and whitespace all mean "no schedule" and
    return ``None`` — the legacy fixed-batch path.

    Raises:
        ScheduleSpecError: on an unknown head token, an unknown/duplicate/
            missing argument, or an argument that fails validation.
    """
    if text is None:
        return None
    raw = text.strip()
    if not raw:
        return None
    head, _, arg_text = raw.partition(":")
    name = head.strip().lower().replace("-", "_")
    name = _ALIASES.get(name, name)
    if name not in _REGISTRY:
        known = ", ".join(schedule_names())
        raise ScheduleSpecError(
            f"unknown schedule {head.strip()!r}; known schedules: {known}"
        )
    cls, arg_parsers, required = _REGISTRY[name]
    kwargs = {}
    for token in arg_text.split(",") if arg_text.strip() else ():
        token = token.strip()
        if not token:
            raise ScheduleSpecError(
                f"empty argument in schedule spec {raw!r} (stray comma?)"
            )
        key, sep, value = token.partition("=")
        key = key.strip().lower()
        if not sep or not key or not value.strip():
            raise ScheduleSpecError(
                f"schedule argument {token!r} must look like key=value"
            )
        if key not in arg_parsers:
            known = ", ".join(sorted(arg_parsers)) or "(none)"
            raise ScheduleSpecError(
                f"schedule {name!r} takes no argument {key!r}; known: {known}"
            )
        if key in kwargs:
            raise ScheduleSpecError(
                f"duplicate argument {key!r} in schedule spec {raw!r}"
            )
        try:
            kwargs[key] = arg_parsers[key](value.strip())
        except ValueError as exc:
            raise ScheduleSpecError(
                f"bad value for schedule argument {key!r}: {value.strip()!r} "
                f"({exc})"
            ) from exc
    for key in required:
        if key not in kwargs:
            raise ScheduleSpecError(
                f"schedule {name!r} requires argument {key!r} "
                f"(e.g. {name}:{key}=256)"
            )
    return cls(**kwargs)


def canonical_schedule_spec(text: str | None) -> str:
    """Canonical form of a spec: defaults explicit, floats ``{:g}``; the
    empty spec stays empty."""
    schedule = parse_schedule_spec(text)
    return "" if schedule is None else schedule.canonical


def normalized_schedule(text: str | None) -> str:
    """The cache-dimension form: ``fixed`` (and every alias/argument
    spelling of it) collapses to the empty string, so a fixed schedule is
    byte-identical to no schedule in keys, payloads, and exports; every
    adaptive schedule canonicalizes."""
    schedule = parse_schedule_spec(text)
    if schedule is None or schedule.is_fixed:
        return ""
    return schedule.canonical
