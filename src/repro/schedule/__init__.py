"""Adaptive batch-size schedules as a first-class sweep dimension.

The paper's grid fixes the mini-batch per point; this package makes the
batch a *trajectory*: a declarative :class:`~repro.schedule.spec.\
BatchSchedule` (``fixed`` / ``geometric`` / ``plateau`` / ``gns``) with a
``parse_schedule_spec`` mini-language, a curve-driven closed-form
segment integrator, a fault-composable ``scheduled_time_to_accuracy``,
and engine threading that caches adaptive points content-addressed while
keeping ``fixed`` byte-identical to the legacy grid.
"""

from repro.schedule.accuracy import (
    ScheduledPoint,
    SegmentRun,
    scheduled_time_to_accuracy,
)
from repro.schedule.integrator import (
    ScheduleIntegration,
    Segment,
    build_segments,
    integrate_schedule,
)
from repro.schedule.spec import (
    BatchSchedule,
    FixedSchedule,
    GeometricSchedule,
    GnsSchedule,
    PlateauSchedule,
    ScheduleSpecError,
    canonical_schedule_spec,
    normalized_schedule,
    parse_schedule_spec,
    schedule_names,
)

__all__ = [
    "BatchSchedule",
    "FixedSchedule",
    "GeometricSchedule",
    "GnsSchedule",
    "PlateauSchedule",
    "ScheduleIntegration",
    "ScheduleSpecError",
    "ScheduledPoint",
    "Segment",
    "SegmentRun",
    "build_segments",
    "canonical_schedule_spec",
    "integrate_schedule",
    "normalized_schedule",
    "parse_schedule_spec",
    "schedule_names",
    "scheduled_time_to_accuracy",
]
