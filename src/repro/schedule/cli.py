"""``tbd schedule show|compare`` — inspect and race batch schedules.

``show`` parses a schedule spec and prints its canonical form plus the
segment tiling it induces on a model's convergence curve; ``compare``
races an adaptive schedule against the fixed baseline on a named cluster
(optionally under a fault scenario) and reports the wall-clock delta.

Kept next to the schedule package (mirroring ``repro.faults`` /
``repro.bench``) so the spec language, integrator, and CLI surface stay
in lockstep.
"""

from __future__ import annotations


def register_schedule_command(subparsers) -> None:
    """Add ``tbd schedule show|compare`` to the top-level subparser set."""
    schedule = subparsers.add_parser(
        "schedule", help="adaptive batch-size schedules: inspect and compare"
    )
    schedule_sub = schedule.add_subparsers(dest="schedule_command", required=True)

    show = schedule_sub.add_parser(
        "show", help="parse a spec and print its segment tiling"
    )
    show.add_argument("spec", help="schedule spec, e.g. 'gns:ceiling=256'")
    show.add_argument("model", nargs="?", default="resnet-50")
    show.add_argument("-b", "--batch", type=int, default=32)
    show.add_argument(
        "--target-fraction",
        type=float,
        default=0.95,
        help="fraction of the asymptotic metric gap to close (default 0.95)",
    )

    compare = schedule_sub.add_parser(
        "compare", help="race a schedule against the fixed baseline"
    )
    compare.add_argument("spec", help="adaptive schedule spec to race")
    compare.add_argument("model", nargs="?", default="resnet-50")
    compare.add_argument("-f", "--framework", default="mxnet")
    compare.add_argument("-b", "--batch", type=int, default=32)
    compare.add_argument(
        "--cluster", default="2M1G", help="paper-style label (default 2M1G)"
    )
    compare.add_argument(
        "--fabric", default="infiniband", help="inter-machine fabric name"
    )
    compare.add_argument("-g", "--gpu", default=None, help="p4000 | 'titan xp'")
    compare.add_argument(
        "--faults",
        default="",
        metavar="SPEC",
        help="fault scenario both runs replay (its cluster= clause is "
        "ignored; the cluster comes from --cluster/--fabric/--gpu)",
    )
    schedule.set_defaults(func=cmd_schedule)


def cmd_schedule(args) -> int:
    """Handler for ``tbd schedule show|compare``."""
    from repro.schedule.spec import ScheduleSpecError, parse_schedule_spec

    try:
        spec = parse_schedule_spec(args.spec)
    except ScheduleSpecError as exc:
        print(f"bad schedule spec: {exc}")
        return 2
    if args.schedule_command == "show":
        return _cmd_show(args, spec)
    return _cmd_compare(args, spec)


def _cmd_show(args, spec) -> int:
    from repro.schedule.integrator import integrate_schedule

    canonical = "fixed" if spec is None else spec.canonical
    print(f"canonical: {canonical}")
    try:
        integration = integrate_schedule(
            args.model, spec, args.batch, target_fraction=args.target_fraction
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"cannot integrate: {message}")
        return 2
    print(integration.describe())
    print(
        f"total steps {integration.total_steps:.1f}, final batch "
        f"{integration.final_batch}, distinct batches "
        f"{list(integration.batch_sizes)}"
    )
    return 0


def _cmd_compare(args, spec) -> int:
    from repro.faults import FaultSpecError, parse_fault_spec
    from repro.hardware.cluster import parse_configuration
    from repro.hardware.devices import get_gpu
    from repro.schedule.accuracy import scheduled_time_to_accuracy

    if spec is None or spec.is_fixed:
        print("compare needs an adaptive schedule; 'fixed' is the baseline")
        return 2
    plan = None
    if args.faults:
        try:
            plan = parse_fault_spec(args.faults).plan
        except FaultSpecError as exc:
            print(f"bad fault spec: {exc}")
            return 2
    try:
        kwargs = {"gpu": get_gpu(args.gpu)} if args.gpu else {}
        cluster = parse_configuration(args.cluster, fabric=args.fabric, **kwargs)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"bad cluster: {message}")
        return 2

    try:
        fixed = scheduled_time_to_accuracy(
            args.model, args.framework, cluster, args.batch, plan=plan
        )
        adaptive = scheduled_time_to_accuracy(
            args.model, args.framework, cluster, args.batch, spec, plan=plan
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"cannot compare: {message}")
        return 2

    fault_note = f" under faults '{args.faults}'" if args.faults else ""
    print(
        f"{args.model} on {args.framework}, {cluster.name}, "
        f"base batch {args.batch}{fault_note}"
    )
    for label, point in (("fixed", fixed), (spec.canonical, adaptive)):
        hours = point.time_to_accuracy_s / 3600.0
        print(
            f"  {label:<40s} {point.segment_count} segment(s), final batch "
            f"{point.final_per_gpu_batch:<5d} "
            f"{point.time_to_accuracy_s:>14.0f}s ({hours:,.1f}h)"
        )
    if adaptive.time_to_accuracy_s > 0:
        speedup = fixed.time_to_accuracy_s / adaptive.time_to_accuracy_s
        print(f"  speedup vs fixed: x{speedup:.3f}")
    return 0
