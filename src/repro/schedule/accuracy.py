"""Time-to-accuracy under an adaptive batch schedule, faults included.

This composes three existing models segment by segment:

- the **convergence curve** tiles the run into batch segments
  (:func:`~repro.schedule.integrator.integrate_schedule`),
- the **critical-batch statistical model** prices each segment's real
  sample cost at that segment's *global* batch (the same
  ``(1 + B/B_crit)`` penalty :func:`~repro.distributed.time_to_accuracy.\
adjusted_samples_needed` charges a fixed run), and
- the **fault-tolerant trainer** replays each segment against its window
  of the fault plan (:meth:`~repro.faults.plan.FaultPlan.window`),
  carrying elastic shrinks across segment boundaries.

With a fixed (or absent) schedule this delegates verbatim to
:func:`~repro.distributed.time_to_accuracy.elastic_time_to_accuracy`
— the ``schedule-fixed-equivalence`` conformance invariant holds the two
paths together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.distributed.time_to_accuracy import (
    CRITICAL_BATCH,
    elastic_time_to_accuracy,
)
from repro.faults.plan import FaultPlan
from repro.hardware.cluster import ClusterSpec
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.schedule.integrator import integrate_schedule
from repro.schedule.spec import parse_schedule_spec


@dataclass(frozen=True)
class SegmentRun:
    """One schedule segment resolved against the cluster and fault plan."""

    index: int
    per_gpu_batch: int
    global_batch: int
    #: Base-axis (curve) samples this segment covers.
    curve_samples: float
    #: Real samples after the critical-batch penalty at ``global_batch``.
    samples_needed: float
    wall_clock_s: float
    start_step: int
    machines_before: int
    machines_after: int
    result: object


@dataclass(frozen=True)
class ScheduledPoint:
    """Time-to-accuracy for a run driven by a batch schedule.

    Mirrors :class:`~repro.distributed.time_to_accuracy.ElasticPoint`;
    ``schedule`` is the canonical spec text (empty for fixed, where the
    numbers are exactly the elastic path's).
    """

    configuration: str
    schedule: str
    per_gpu_batch: int
    final_per_gpu_batch: int
    global_batch: int
    samples_needed: float
    time_to_accuracy_s: float
    baseline_time_s: float
    final_machines: int
    segment_runs: tuple

    @property
    def overhead(self) -> float:
        """Wall-clock inflation versus the fault-free scheduled run."""
        if self.baseline_time_s <= 0:
            return float("inf")
        return self.time_to_accuracy_s / self.baseline_time_s

    @property
    def segment_count(self) -> int:
        return len(self.segment_runs)


def _batch_penalty(model_key: str, global_batch: float, base_batch: float) -> float:
    """The critical-batch sample inflation, normalized to ``base_batch``
    (identical in form to ``adjusted_samples_needed``)."""
    critical = CRITICAL_BATCH.get(model_key, 8192.0)
    return (1.0 + global_batch / critical) / (1.0 + base_batch / critical)


def scheduled_time_to_accuracy(
    model_key: str,
    framework: str,
    cluster: ClusterSpec,
    per_gpu_batch: int,
    schedule=None,
    plan=None,
    recovery=None,
    base_batch: int | None = None,
    target_fraction: float = 0.95,
) -> ScheduledPoint:
    """Wall-clock time-to-accuracy for a schedule-driven elastic run.

    The schedule grows the *per-GPU* batch; each segment's statistical
    cost is priced at its realized global batch, its hardware cost comes
    from a :class:`~repro.faults.trainer.FaultTolerantTrainer` replaying
    that segment's window of ``plan``, and elastic shrinks (crashed
    machines) carry forward into later segments.  ``schedule`` accepts a
    :class:`~repro.schedule.spec.BatchSchedule`, spec text, or ``None``.

    Raises:
        OutOfMemoryError: when a grown per-GPU batch no longer fits the
            GPU — pick the schedule ceiling below the OOM boundary.
        UnrecoverableFaultError: propagated from the trainer.
    """
    from repro.faults.trainer import FaultTolerantTrainer

    if isinstance(schedule, str):
        schedule = parse_schedule_spec(schedule)
    if schedule is None or schedule.is_fixed:
        elastic = elastic_time_to_accuracy(
            model_key,
            framework,
            cluster,
            per_gpu_batch,
            plan=plan,
            recovery=recovery,
            base_batch=base_batch,
            target_fraction=target_fraction,
        )
        run = SegmentRun(
            index=0,
            per_gpu_batch=per_gpu_batch,
            global_batch=elastic.global_batch,
            curve_samples=elastic.samples_needed,
            samples_needed=elastic.samples_needed,
            wall_clock_s=elastic.time_to_accuracy_s,
            start_step=0,
            machines_before=cluster.machine_count,
            machines_after=elastic.final_machines,
            result=elastic.result,
        )
        return ScheduledPoint(
            configuration=elastic.configuration,
            schedule="",
            per_gpu_batch=per_gpu_batch,
            final_per_gpu_batch=per_gpu_batch,
            global_batch=elastic.global_batch,
            samples_needed=elastic.samples_needed,
            time_to_accuracy_s=elastic.time_to_accuracy_s,
            baseline_time_s=elastic.baseline_time_s,
            final_machines=elastic.final_machines,
            segment_runs=(run,),
        )

    base = base_batch if base_batch is not None else per_gpu_batch
    plan = plan if plan is not None else FaultPlan.none()
    with trace_span(
        "schedule.tta",
        model=model_key,
        framework=framework,
        schedule=schedule.canonical,
        configuration=cluster.name,
    ) as span:
        integration = integrate_schedule(
            model_key, schedule, per_gpu_batch, target_fraction=target_fraction
        )
        runs = []
        active_cluster = cluster
        machines = cluster.machine_count
        cursor_step = 0
        total_time = 0.0
        baseline_time = 0.0
        total_samples = 0.0
        for segment in integration.segments:
            if segment.samples == 0.0:
                continue
            trainer = FaultTolerantTrainer(
                model_key,
                framework,
                active_cluster,
                segment.batch_size,
                plan=plan.window(cursor_step),
                recovery=recovery,
            )
            global_batch = segment.batch_size * trainer.baseline.worker_count
            needed = segment.samples * _batch_penalty(
                model_key, global_batch, base
            )
            result = trainer.run_until_samples(needed)
            runs.append(
                SegmentRun(
                    index=segment.index,
                    per_gpu_batch=segment.batch_size,
                    global_batch=global_batch,
                    curve_samples=segment.samples,
                    samples_needed=needed,
                    wall_clock_s=result.wall_clock_s,
                    start_step=cursor_step,
                    machines_before=machines,
                    machines_after=result.final_machines,
                    result=result,
                )
            )
            total_time += result.wall_clock_s
            baseline_time += needed / trainer.baseline.throughput
            total_samples += needed
            cursor_step += int(math.ceil(result.steps_completed))
            if result.final_machines < machines:
                active_cluster = active_cluster.shrink(
                    machines - result.final_machines
                )
                machines = result.final_machines
        get_metrics().counter("schedule_tta_runs_total").inc()
        get_metrics().counter("schedule_tta_segments_total").inc(len(runs))
        span.set_attribute("segments", len(runs))
        span.set_attribute("final_machines", machines)
        first = runs[0] if runs else None
        return ScheduledPoint(
            configuration=cluster.name,
            schedule=schedule.canonical,
            per_gpu_batch=per_gpu_batch,
            final_per_gpu_batch=(
                runs[-1].per_gpu_batch if runs else per_gpu_batch
            ),
            global_batch=first.global_batch if first else 0,
            samples_needed=total_samples,
            time_to_accuracy_s=total_time,
            baseline_time_s=baseline_time,
            final_machines=machines,
            segment_runs=tuple(runs),
        )
