"""Discrete-event simulation of the prefetching input pipeline.

The closed-form :class:`~repro.data.pipeline.DataPipelineModel` charges an
average exposure per iteration; this module simulates the actual
producer-consumer dynamics — decode workers filling a bounded prefetch
queue, the trainer draining one batch per iteration — so the *transient*
behaviours the closed form hides become visible:

- a deep enough queue absorbs decode-time jitter entirely;
- when mean decode time exceeds the iteration time, no queue depth saves
  you (the pipeline-bound regime);
- the first iterations stall until the queue first fills (part of the
  warm-up the paper's sampling methodology excludes, §3.4.2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PrefetchConfig:
    """One pipeline configuration."""

    workers: int
    queue_depth: int
    batch_decode_mean_s: float
    batch_decode_cv: float = 0.3  # decode-time jitter (coefficient of variation)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("need at least one worker")
        if self.queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        if self.batch_decode_mean_s <= 0:
            raise ValueError("decode time must be positive")
        if self.batch_decode_cv < 0:
            raise ValueError("decode CV cannot be negative")


@dataclass(frozen=True)
class PrefetchResult:
    """Outcome of one simulated run."""

    iterations: int
    compute_time_s: float
    total_time_s: float
    stall_time_s: float
    warmup_stall_s: float  # stall in the first `queue_depth` iterations

    @property
    def stall_fraction(self) -> float:
        return self.stall_time_s / self.total_time_s if self.total_time_s else 0.0

    @property
    def steady_state_stall_fraction(self) -> float:
        steady_stall = self.stall_time_s - self.warmup_stall_s
        steady_total = self.total_time_s - self.warmup_stall_s
        return steady_stall / steady_total if steady_total > 0 else 0.0


def simulate_prefetch(
    config: PrefetchConfig, iteration_time_s: float, iterations: int = 500
) -> PrefetchResult:
    """Simulate ``iterations`` training steps against the pipeline.

    Event model: ``workers`` decoders each produce one batch per
    (stochastic) decode interval, holding at most one finished batch while
    the queue is full; the trainer pops one batch per iteration, stalling
    when the queue is empty.  Worker restarts while blocked are resolved at
    iteration granularity — exact in the decode-limited regime (the one
    where pipeline exposure matters), slightly optimistic when the queue is
    persistently full (where the pipeline is not the bottleneck anyway).
    """
    if iteration_time_s <= 0:
        raise ValueError("iteration time must be positive")
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    rng = np.random.default_rng(config.seed)
    sigma = config.batch_decode_mean_s * config.batch_decode_cv

    def decode_duration() -> float:
        return max(1e-6, rng.normal(config.batch_decode_mean_s, sigma))

    # Worker completion events (time, worker id); queue = ready batches.
    ready: list = []  # completion times of queued batches (for accounting)
    in_flight = [decode_duration() for _ in range(config.workers)]
    heapq.heapify(in_flight)
    queue = 0
    clock = 0.0
    stall = 0.0
    warmup_stall = 0.0

    for iteration in range(iterations):
        # Drain decoder completions up to `clock`, respecting queue capacity.
        while in_flight and in_flight[0] <= clock and queue < config.queue_depth:
            finished = heapq.heappop(in_flight)
            queue += 1
            ready.append(finished)
            heapq.heappush(in_flight, finished + decode_duration())
        if queue == 0:
            # Stall until the next decode completes.
            next_ready = in_flight[0]
            wait = next_ready - clock
            stall += wait
            if iteration < config.queue_depth:
                warmup_stall += wait
            clock = next_ready
            heapq.heappop(in_flight)
            heapq.heappush(in_flight, clock + decode_duration())
            queue += 1
        queue -= 1
        clock += iteration_time_s
    compute = iterations * iteration_time_s
    return PrefetchResult(
        iterations=iterations,
        compute_time_s=compute,
        total_time_s=clock,
        stall_time_s=stall,
        warmup_stall_s=warmup_stall,
    )


def effective_throughput(
    config: PrefetchConfig,
    iteration_time_s: float,
    samples_per_iteration: float,
    iterations: int = 500,
) -> float:
    """Samples/second including pipeline stalls."""
    result = simulate_prefetch(config, iteration_time_s, iterations)
    return samples_per_iteration * iterations / result.total_time_s


def minimum_workers(
    batch_decode_mean_s: float, iteration_time_s: float
) -> int:
    """Smallest worker count whose aggregate decode rate keeps up with the
    trainer (the static capacity condition)."""
    if batch_decode_mean_s <= 0 or iteration_time_s <= 0:
        raise ValueError("times must be positive")
    import math

    return max(1, math.ceil(batch_decode_mean_s / iteration_time_s))
