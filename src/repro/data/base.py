"""Dataset specification record and synthetic batch container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SyntheticBatch:
    """One generated mini-batch: inputs plus targets."""

    inputs: np.ndarray
    targets: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.inputs.shape[0]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a training dataset (paper Table 3).

    Attributes:
        key: registry key (``imagenet1k``…).
        name: Table 3 display name.
        num_samples: training-set size (0 when not applicable, e.g. Atari).
        sample_shape: canonical per-sample tensor shape.
        size_description: Table 3's "Size" column, verbatim.
        special: Table 3's "Special" column (vocabulary size, annotations…).
        cpu_decode_cost_s: CPU core-seconds to decode/augment one sample on
            the host — the input-pipeline load the paper's CPU-utilization
            numbers reflect.
        sample_host_bytes: bytes one decoded sample occupies host-side
            (drives the H2D copy).
        variable_length: True when sample sizes vary (speech/translation);
            throughput then uses duration/token accounting (Section 3.4.3).
    """

    key: str
    name: str
    num_samples: int
    sample_shape: tuple
    size_description: str
    special: str
    cpu_decode_cost_s: float
    sample_host_bytes: int
    variable_length: bool = False
    generator: object = None

    def synthesize(self, batch_size: int, seed: int = 0) -> SyntheticBatch:
        """Generate a synthetic mini-batch with this dataset's geometry.

        Raises:
            ValueError: for non-positive batch sizes.
            NotImplementedError: if the dataset registered no generator.
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        if self.generator is None:
            raise NotImplementedError(f"{self.key} has no synthetic generator")
        rng = np.random.default_rng(seed)
        return self.generator(batch_size, rng)
