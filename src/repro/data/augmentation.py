"""Input augmentation for the real training pipeline.

The ImageNet decode cost the CPU-utilization analysis charges (16 ms per
image) is decode *plus augmentation*; these are the augmentations, as real
numpy transforms over NCHW batches.  They feed the mini-model training
examples and let the pipeline tests exercise an actual producer workload.
"""

from __future__ import annotations

import numpy as np


def random_crop(
    images: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Random spatial crop of an NCHW batch to ``size x size``.

    Raises:
        ValueError: if the crop exceeds the image.
    """
    batch, channels, height, width = images.shape
    if size > height or size > width:
        raise ValueError(f"crop {size} exceeds image {height}x{width}")
    out = np.empty((batch, channels, size, size), dtype=images.dtype)
    tops = rng.integers(0, height - size + 1, size=batch)
    lefts = rng.integers(0, width - size + 1, size=batch)
    for index, (top, left) in enumerate(zip(tops, lefts)):
        out[index] = images[index, :, top : top + size, left : left + size]
    return out


def center_crop(images: np.ndarray, size: int) -> np.ndarray:
    """Deterministic central crop (the evaluation-time counterpart)."""
    batch, channels, height, width = images.shape
    if size > height or size > width:
        raise ValueError(f"crop {size} exceeds image {height}x{width}")
    top = (height - size) // 2
    left = (width - size) // 2
    return images[:, :, top : top + size, left : left + size].copy()


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    out = images.copy()
    flips = rng.random(images.shape[0]) < probability
    out[flips] = out[flips, :, :, ::-1]
    return out


def normalize(
    images: np.ndarray, mean, std
) -> np.ndarray:
    """Per-channel standardization (the ImageNet mean/std step)."""
    mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
    std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)
    if np.any(std == 0):
        raise ValueError("std must be nonzero")
    return (images - mean) / std


class AugmentationPipeline:
    """Composable train-time augmentation: crop -> flip -> normalize."""

    def __init__(
        self,
        crop_size: int,
        mean=(0.485, 0.456, 0.406),
        std=(0.229, 0.224, 0.225),
        flip_probability: float = 0.5,
        seed: int = 0,
    ):
        if crop_size <= 0:
            raise ValueError("crop size must be positive")
        self.crop_size = crop_size
        self.mean = mean
        self.std = std
        self.flip_probability = flip_probability
        self._rng = np.random.default_rng(seed)

    def __call__(self, images: np.ndarray, training: bool = True) -> np.ndarray:
        """Apply the pipeline to an NCHW batch."""
        if training:
            images = random_crop(images, self.crop_size, self._rng)
            images = random_horizontal_flip(
                images, self._rng, self.flip_probability
            )
        else:
            images = center_crop(images, self.crop_size)
        return normalize(images, self.mean, self.std)
