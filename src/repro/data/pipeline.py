"""Host-side input pipeline model.

Frameworks decode and augment input samples on CPU worker threads and
prefetch batches so that (ideally) the GPU never waits.  The model:

- total CPU work per iteration: ``batch x decode_cost x framework factor``
  (core-seconds — this is what the vTune-style CPU utilization sees);
- wall-clock occupancy: the work spreads over ``worker_threads`` cores;
- exposure: whatever the framework fails to overlap
  (``1 - data_pipeline_efficiency``) adds to the iteration's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.base import DatasetSpec
from repro.frameworks.base import Framework
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span


@dataclass(frozen=True)
class PipelineCost:
    """Resolved input-pipeline cost for one training iteration."""

    cpu_core_seconds: float  # total CPU work (for CPU-utilization accounting)
    wall_seconds: float  # time the pipeline occupies its worker pool
    exposed_seconds: float  # serial contribution to the iteration time


class DataPipelineModel:
    """Computes per-iteration input-pipeline costs."""

    def __init__(self, dataset: DatasetSpec, worker_threads: int = 4):
        if worker_threads <= 0:
            raise ValueError("worker thread count must be positive")
        self.dataset = dataset
        self.worker_threads = worker_threads

    def cost(self, batch_size: int, framework: Framework) -> PipelineCost:
        """Pipeline cost of one ``batch_size``-sample iteration under
        ``framework``'s pipeline implementation."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        with trace_span(
            "data.pipeline",
            dataset=self.dataset.key,
            batch_size=batch_size,
            workers=self.worker_threads,
        ) as span:
            core_seconds = (
                batch_size
                * self.dataset.cpu_decode_cost_s
                * framework.pipeline_cost_factor
            )
            wall = core_seconds / self.worker_threads
            exposed = wall * (1.0 - framework.data_pipeline_efficiency)
            span.set_attributes(
                cpu_core_seconds=core_seconds, exposed_seconds=exposed
            )
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("pipeline_samples_decoded_total").inc(batch_size)
                metrics.counter("pipeline_cpu_core_seconds_total").inc(core_seconds)
                metrics.counter("pipeline_exposed_seconds_total").inc(exposed)
            return PipelineCost(
                cpu_core_seconds=core_seconds,
                wall_seconds=wall,
                exposed_seconds=exposed,
            )
