"""Synthetic stand-ins for the six training datasets (paper Table 3).

The real datasets (ImageNet, IWSLT'15, Pascal VOC, LibriSpeech, Downsampled
ImageNet, Atari 2600 frames) are not redistributable and are not needed for
performance analysis: the simulator consumes only shapes, sizes, length
distributions, and host-side decode costs, all of which each
:class:`~repro.data.base.DatasetSpec` records.  For the *real* training
substrate (:mod:`repro.tensor`), each dataset also provides a synthetic
sample generator producing numpy batches with the right geometry and a
learnable signal.
"""

from repro.data.base import DatasetSpec, SyntheticBatch
from repro.data.registry import dataset_catalog, get_dataset
from repro.data.pipeline import DataPipelineModel

__all__ = [
    "DatasetSpec",
    "SyntheticBatch",
    "dataset_catalog",
    "get_dataset",
    "DataPipelineModel",
]
