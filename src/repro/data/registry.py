"""The six-dataset catalog (paper Table 3) with synthetic generators.

Every generator returns ``(inputs, targets)`` with the dataset's canonical
geometry and a *learnable* synthetic signal: targets are deterministic
functions of the inputs (class = argmax of per-class template correlation,
next-token patterns, etc.), so the real training substrate can demonstrate
loss decrease on them.
"""

from __future__ import annotations

import numpy as np

from repro.data.base import DatasetSpec, SyntheticBatch


def _image_classification_generator(channels: int, size: int, classes: int):
    """Images whose class determines a spatial frequency pattern."""

    def generate(batch_size: int, rng: np.random.Generator) -> SyntheticBatch:
        labels = rng.integers(0, classes, size=batch_size)
        coords = np.linspace(0.0, np.pi, size, dtype=np.float32)
        images = rng.normal(0.0, 0.3, size=(batch_size, channels, size, size))
        for index, label in enumerate(labels):
            pattern = np.sin((1 + label % 7) * coords)[None, :, None]
            images[index] += pattern
        return SyntheticBatch(
            inputs=images.astype(np.float32), targets=labels.astype(np.int64)
        )

    return generate


def _translation_generator(vocab: int, min_len: int, max_len: int):
    """Token sequences where the target is the source reversed mod vocab."""

    def generate(batch_size: int, rng: np.random.Generator) -> SyntheticBatch:
        length = int(rng.integers(min_len, max_len + 1))
        source = rng.integers(1, vocab, size=(batch_size, length))
        target = (source[:, ::-1] + 1) % vocab
        return SyntheticBatch(
            inputs=source.astype(np.int64), targets=target.astype(np.int64)
        )

    return generate


def _detection_generator(size_h: int, size_w: int, classes: int):
    """Images with one bright rectangle; target is (class, box)."""

    def generate(batch_size: int, rng: np.random.Generator) -> SyntheticBatch:
        images = rng.normal(0.0, 0.2, size=(batch_size, 3, size_h, size_w))
        boxes = np.zeros((batch_size, 5), dtype=np.float32)
        for index in range(batch_size):
            label = int(rng.integers(0, classes))
            y0 = int(rng.integers(0, size_h // 2))
            x0 = int(rng.integers(0, size_w // 2))
            h = int(rng.integers(size_h // 8, size_h // 2))
            w = int(rng.integers(size_w // 8, size_w // 2))
            images[index, :, y0 : y0 + h, x0 : x0 + w] += 1.0 + 0.1 * label
            boxes[index] = (label, x0, y0, min(x0 + w, size_w), min(y0 + h, size_h))
        return SyntheticBatch(inputs=images.astype(np.float32), targets=boxes)

    return generate


def _speech_generator(freq_bins: int, frames: int, vocab: int, label_len: int):
    """Spectrograms built from per-character formant bands."""

    def generate(batch_size: int, rng: np.random.Generator) -> SyntheticBatch:
        labels = rng.integers(1, vocab, size=(batch_size, label_len))
        spectrograms = rng.normal(0.0, 0.1, size=(batch_size, 1, freq_bins, frames))
        frames_per_char = max(1, frames // label_len)
        for index in range(batch_size):
            for position, char in enumerate(labels[index]):
                band = int(char) % freq_bins
                start = position * frames_per_char
                spectrograms[index, 0, band, start : start + frames_per_char] += 1.0
        return SyntheticBatch(
            inputs=spectrograms.astype(np.float32), targets=labels.astype(np.int64)
        )

    return generate


def _atari_generator(frame_stack: int, frame_size: int, actions: int):
    """Frame stacks where the optimal action tracks a moving blob."""

    def generate(batch_size: int, rng: np.random.Generator) -> SyntheticBatch:
        frames = rng.normal(0.0, 0.1, size=(batch_size, frame_stack, frame_size, frame_size))
        actions_out = rng.integers(0, actions, size=batch_size)
        for index, action in enumerate(actions_out):
            column = (int(action) * frame_size) // actions
            frames[index, :, :, column : column + 4] += 1.0
        return SyntheticBatch(
            inputs=frames.astype(np.float32), targets=actions_out.astype(np.int64)
        )

    return generate


IMAGENET_1K = DatasetSpec(
    key="imagenet1k",
    name="ImageNet1K",
    num_samples=1_200_000,
    sample_shape=(3, 256, 256),
    size_description="3x256x256 per image",
    special="N/A",
    cpu_decode_cost_s=0.016,
    sample_host_bytes=3 * 224 * 224 * 4,
    generator=_image_classification_generator(3, 32, 1000),
)

IWSLT15 = DatasetSpec(
    key="iwslt15",
    name="IWSLT15",
    num_samples=133_000,
    sample_shape=(30,),
    size_description="20-30 words long per sentence",
    special="vocabulary size of 17188",
    cpu_decode_cost_s=0.0002,
    sample_host_bytes=2 * 40 * 4,
    variable_length=True,
    generator=_translation_generator(17188, 20, 30),
)

PASCAL_VOC_2007 = DatasetSpec(
    key="voc2007",
    name="Pascal VOC 2007",
    num_samples=5011,
    sample_shape=(3, 500, 350),
    size_description="around 500x350",
    special="12608 annotated objects",
    cpu_decode_cost_s=0.010,
    sample_host_bytes=3 * 600 * 1000 * 4,
    generator=_detection_generator(96, 96, 20),
)

LIBRISPEECH = DatasetSpec(
    key="librispeech",
    name="LibriSpeech",
    num_samples=280_000,
    sample_shape=(1, 161, 1280),
    size_description="1000 hours",
    special="100-hour training subset by default (MXNet)",
    cpu_decode_cost_s=0.050,
    sample_host_bytes=161 * 1280 * 4,
    variable_length=True,
    generator=_speech_generator(161, 1280, 29, 180),
)

DOWNSAMPLED_IMAGENET = DatasetSpec(
    key="downsampled-imagenet",
    name="Downsampled ImageNet",
    num_samples=1_200_000,
    sample_shape=(3, 64, 64),
    size_description="3x64x64 per image",
    special="N/A",
    cpu_decode_cost_s=0.002,
    sample_host_bytes=3 * 64 * 64 * 4,
    generator=_image_classification_generator(3, 64, 1000),
)

ATARI_2600 = DatasetSpec(
    key="atari2600",
    name="Atari 2600",
    num_samples=0,
    sample_shape=(4, 84, 84),
    size_description="4x84x84 per image",
    special="generated online by the emulator",
    cpu_decode_cost_s=0.0,  # emulator cost is charged per sample by A3C
    sample_host_bytes=4 * 84 * 84 * 4,
    generator=_atari_generator(4, 84, 6),
)

_CATALOG = {
    spec.key: spec
    for spec in (
        IMAGENET_1K,
        IWSLT15,
        PASCAL_VOC_2007,
        LIBRISPEECH,
        DOWNSAMPLED_IMAGENET,
        ATARI_2600,
    )
}


def dataset_catalog() -> dict:
    """All datasets keyed by registry key, in Table 3 order."""
    return dict(_CATALOG)


def get_dataset(key: str) -> DatasetSpec:
    """Look up a dataset by key."""
    normalized = key.strip().lower()
    if normalized not in _CATALOG:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown dataset {key!r}; known: {known}")
    return _CATALOG[normalized]
