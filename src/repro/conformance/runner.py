"""The conformance runner: every check, through the sweep engine.

One :class:`ConformanceRunner` drives four deterministic phases —

1. **grid** — the paper grid (:data:`~repro.experiments.common.SWEEP_PANELS`)
   through the parallel :class:`~repro.engine.executor.SweepEngine` and its
   result cache, checked against every sweep-scope invariant;
2. **deep** — per-panel reference configurations re-simulated in process,
   checked against every point-scope invariant (roofline floors, FLOP and
   memory conservation, transform contracts);
3. **scaling** — Fig. 10 cluster probes under a ring allreduce, checked
   against the ≤-linear and bandwidth-floor laws;
4. **fuzz** — ``budget`` seeded random specs, each paired with a
   metamorphic relation and executed as engine grids (base + perturbed
   runs batched per GPU, replay cases through a second engine pass).

Failures are shrunk to minimal counterexamples and collected into a
:class:`ConformanceReport` whose JSON rendering is byte-deterministic:
two runs with the same seed/budget produce identical files regardless of
worker count or cache temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.conformance.generator import FuzzCase, generate_cases, shrink
from repro.conformance.invariants import (
    PointEvidence,
    ScalingEvidence,
    ServeEvidence,
    SweepEvidence,
    Violation,
    get_invariant,
    invariant_registry,
)
from repro.conformance.relations import (
    DEFAULT_GPU,
    get_relation,
    relation_registry,
)
from repro.distributed.allreduce import RingAllReduceExchange
from repro.distributed.data_parallel import DataParallelTrainer
from repro.distributed.topology import standard_configurations
from repro.engine.cache import ResultCache
from repro.engine.executor import PointSpec, SweepEngine, grid_for
from repro.engine.keys import canonical_json
from repro.experiments.common import SWEEP_PANELS
from repro.hardware.devices import get_gpu
from repro.hardware.memory import OutOfMemoryError
from repro.models.registry import get_model
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.training.session import TrainingSession

#: Default distributed probes: one convnet per framework family plus the
#: RNN panel — enough to exercise every scaling law without rerunning the
#: whole Fig. 10 study.
DEFAULT_SCALING_PROBES = (
    ("resnet-50", "mxnet"),
    ("inception-v3", "tensorflow"),
    ("sockeye", "mxnet"),
)

REPORT_SCHEMA = 1


@dataclass
class ConformanceReport:
    """Aggregated conformance results; JSON form is byte-deterministic."""

    seed: int
    budget: int
    include_grid: bool
    grid_points: int = 0
    deep_points: int = 0
    scaling_probes: int = 0
    serve_probes: int = 0
    fuzz_cases: int = 0
    checks: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def checked_total(self) -> int:
        return sum(entry["checked"] for entry in self.checks.values())

    def to_doc(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "budget": self.budget,
            "include_grid": self.include_grid,
            "grid_points": self.grid_points,
            "deep_points": self.deep_points,
            "scaling_probes": self.scaling_probes,
            "serve_probes": self.serve_probes,
            "fuzz_cases": self.fuzz_cases,
            "checks": {name: dict(self.checks[name]) for name in sorted(self.checks)},
            "violations": [v.to_doc() for v in self.violations],
        }

    def to_json(self) -> str:
        return canonical_json(self.to_doc()) + "\n"

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"conformance: seed {self.seed}, fuzz budget {self.budget}",
            f"  grid points {self.grid_points}, deep points {self.deep_points}, "
            f"scaling probes {self.scaling_probes}, serve probes "
            f"{self.serve_probes}, fuzz cases {self.fuzz_cases}",
            "",
            f"  {'check':<34} {'checked':>8} {'violations':>11}",
        ]
        for name in sorted(self.checks):
            entry = self.checks[name]
            lines.append(
                f"  {name:<34} {entry['checked']:>8} {entry['violations']:>11}"
            )
        lines.append("")
        if self.ok:
            lines.append(f"  all {self.checked_total} checks passed — zero violations")
        else:
            lines.append(f"  {len(self.violations)} violation(s):")
            for v in self.violations:
                subject = ", ".join(f"{k}={v.subject[k]}" for k in sorted(v.subject))
                lines.append(f"    [{v.check}] {subject}")
                lines.append(f"      {v.message}")
                if v.shrunk:
                    minimal = ", ".join(
                        f"{k}={v.shrunk[k]}" for k in sorted(v.shrunk)
                    )
                    lines.append(f"      minimal: {minimal}")
        return "\n".join(lines)


class ConformanceRunner:
    """Run the registries over the paper grid and a fuzzed spec stream."""

    def __init__(
        self,
        seed: int = 7,
        budget: int = 50,
        jobs: int = 1,
        cache: ResultCache | None = None,
        include_grid: bool = True,
        panels=None,
        deep_limit: int | None = None,
        deep_every: int = 5,
        scaling_probes=None,
        scaling_configs=None,
        shrink_failures: bool = True,
        max_shrinks: int = 5,
        max_shrink_evals: int = 24,
    ):
        self.seed = seed
        self.budget = budget
        self.jobs = jobs
        self.cache = cache
        self.include_grid = include_grid
        self.panels = tuple(panels) if panels is not None else SWEEP_PANELS
        self.deep_limit = deep_limit
        self.deep_every = max(1, deep_every)
        self.scaling_probes = (
            tuple(scaling_probes)
            if scaling_probes is not None
            else DEFAULT_SCALING_PROBES
        )
        self.scaling_configs = (
            tuple(scaling_configs)
            if scaling_configs is not None
            else tuple(standard_configurations())
        )
        self.shrink_failures = shrink_failures
        self.max_shrinks = max_shrinks
        self.max_shrink_evals = max_shrink_evals
        self._checks: dict = {}
        self._violations: list = []
        self._sessions: dict = {}

    # ------------------------------------------------------------------
    # bookkeeping

    def _engine(self, gpu_key: str, jobs: int | None = None) -> SweepEngine:
        return SweepEngine(
            jobs=jobs if jobs is not None else self.jobs,
            cache=self.cache,
            gpu=get_gpu(gpu_key),
        )

    def _record(self, name: str, subject: dict, messages) -> None:
        entry = self._checks.setdefault(name, {"checked": 0, "violations": 0})
        entry["checked"] += 1
        get_metrics().counter("conformance_checks_total", {"check": name}).inc()
        for message in messages:
            entry["violations"] += 1
            get_metrics().counter(
                "conformance_violations_total", {"check": name}
            ).inc()
            self._violations.append(Violation(name, dict(subject), message))

    def _session(self, model: str, framework: str, gpu_key: str) -> TrainingSession:
        key = (model, framework, gpu_key)
        if key not in self._sessions:
            self._sessions[key] = TrainingSession(
                model, framework, gpu=get_gpu(gpu_key)
            )
        return self._sessions[key]

    # ------------------------------------------------------------------
    # evidence gathering

    def _gather_point(
        self, model: str, framework: str, batch: int, gpu_key: str
    ) -> PointEvidence | None:
        entry = get_model(model)
        session = self._session(model, framework, gpu_key)
        try:
            profile = session.run_iteration(batch)
        except OutOfMemoryError:
            return None
        plan = session.compile(batch)
        small = min(entry.batch_sizes)
        small_plan = session.compile(small) if small != batch else None
        return PointEvidence(
            model=model,
            framework=framework,
            batch_size=batch,
            gpu=session.gpu,
            profile=profile,
            plan=plan,
            small_batch=small if small_plan is not None else None,
            small_plan=small_plan,
            throughput_unit=entry.throughput_unit,
        )

    def _gather_scaling(
        self, model: str, framework: str, batch: int, config_label: str
    ) -> ScalingEvidence | None:
        cluster = standard_configurations()[config_label]
        exchange = RingAllReduceExchange()
        trainer = DataParallelTrainer(model, framework, cluster, exchange=exchange)
        try:
            profile = trainer.run_iteration(batch)
        except OutOfMemoryError:
            return None
        gradient_bytes = trainer.session.compile(batch).graph.total_weight_bytes
        cost = (
            exchange.cost(gradient_bytes, cluster)
            if cluster.total_gpus > 1
            else None
        )
        return ScalingEvidence(
            model=model,
            framework=framework,
            batch_size=batch,
            cluster=cluster,
            profile=profile,
            allreduce_cost=cost,
            gradient_bytes=gradient_bytes,
        )

    # ------------------------------------------------------------------
    # check evaluation

    def _check_point(self, evidence: PointEvidence, gpu_key: str) -> None:
        subject = {
            "model": evidence.model,
            "framework": evidence.framework,
            "batch_size": evidence.batch_size,
            "faults": "",
            "gpu": gpu_key,
        }
        for inv in invariant_registry(scope="point"):
            self._record(inv.name, subject, inv.check(evidence))

    def _check_sweep(self, evidence: SweepEvidence) -> None:
        subject = {
            "model": evidence.model,
            "framework": evidence.framework,
            "batch_size": min(evidence.batch_sizes) if evidence.batch_sizes else 0,
            "faults": evidence.faults,
            "gpu": evidence.gpu_name,
        }
        for inv in invariant_registry(scope="sweep"):
            self._record(inv.name, subject, inv.check(evidence))

    def _check_scaling(self, evidence: ScalingEvidence, config_label: str) -> None:
        subject = {
            "model": evidence.model,
            "framework": evidence.framework,
            "batch_size": evidence.batch_size,
            "faults": "",
            "gpu": DEFAULT_GPU,
            "cluster": config_label,
        }
        for inv in invariant_registry(scope="scaling"):
            self._record(inv.name, subject, inv.check(evidence))

    def _check_serve(self, evidence: ServeEvidence) -> None:
        subject = {"phase": "serve", "gpu": DEFAULT_GPU}
        for inv in invariant_registry(scope="serve"):
            self._record(inv.name, subject, inv.check(evidence))

    # ------------------------------------------------------------------
    # phases

    def _run_grid_phase(self) -> int:
        specs = grid_for(self.panels)
        engine = self._engine(DEFAULT_GPU)
        points = engine.run_grid(specs)
        by_panel: dict = {}
        for spec, point in zip(specs, points):
            by_panel.setdefault((spec.model, spec.framework), []).append(
                (spec.batch_size, point)
            )
        for (model, framework), pairs in by_panel.items():
            pairs.sort(key=lambda item: item[0])
            self._check_sweep(
                SweepEvidence(
                    model=model,
                    framework=framework,
                    gpu_name=DEFAULT_GPU,
                    batch_sizes=[b for b, _ in pairs],
                    points=[p for _, p in pairs],
                )
            )
        return len(specs)

    def _deep_configs(self) -> list:
        configs = [
            (model, framework, get_model(model).reference_batch)
            for model, frameworks in self.panels
            for framework in frameworks
        ]
        if self.deep_limit is not None:
            configs = configs[: self.deep_limit]
        return configs

    def _run_deep_phase(self) -> int:
        count = 0
        for model, framework, batch in self._deep_configs():
            evidence = self._gather_point(model, framework, batch, DEFAULT_GPU)
            if evidence is None:
                continue
            self._check_point(evidence, DEFAULT_GPU)
            count += 1
        return count

    def _run_scaling_phase(self) -> int:
        count = 0
        for model, framework in self.scaling_probes:
            batch = get_model(model).reference_batch
            for label in self.scaling_configs:
                evidence = self._gather_scaling(model, framework, batch, label)
                if evidence is None:
                    continue
                self._check_scaling(evidence, label)
                count += 1
        return count

    def _run_serve_phase(self) -> int:
        """Check the serve-scope invariants on three probes.

        1. A small deterministic loadgen scenario seeded from the runner
           seed drives the real admission controller (starvation law).
        2. A tightly-budgeted sharded cache absorbs more synthetic
           entries than it can hold (budget/ledger law).
        3. Two grids go through a fresh :class:`~repro.serve.service.
           BenchmarkServer` and directly through an engine; their
           canonical-JSON bytes must match (identity law).

        Everything runs in fresh temp directories (removed before
        returning) and no message carries a path, so the report stays
        byte-deterministic across cache temperatures.
        """
        import asyncio
        import hashlib
        import tempfile

        from repro.engine.keys import canonical_json as to_canonical
        from repro.engine.merge import grid_record
        from repro.serve.jobs import JobRequest
        from repro.serve.loadgen import LoadGenConfig, run_loadgen
        from repro.serve.service import BenchmarkServer
        from repro.serve.shardcache import ShardedResultCache

        report = run_loadgen(
            LoadGenConfig(clients=32, tenants=4, workers=4, seed=self.seed)
        ).to_doc()

        with tempfile.TemporaryDirectory(prefix="tbd-serve-conf-") as root:
            cache = ShardedResultCache(root, shards=2, byte_budget=2048)
            for index in range(24):
                key = hashlib.sha256(
                    f"serve-probe-{self.seed}-{index}".encode()
                ).hexdigest()
                cache.store(
                    key,
                    {"version": 1, "batch_size": index, "oom": False,
                     "metrics": None},
                )
                if index % 3 == 0:
                    cache.load(key)
            budget_probe = {
                "byte_budget": cache.byte_budget,
                "peak_bytes": cache.peak_bytes,
                "tracked_bytes": cache.total_bytes(),
                "disk_bytes": cache.disk_bytes(),
            }

        requests = (
            JobRequest("sweep", "resnet-50", "mxnet", batch_sizes=(4, 8)),
            JobRequest("sweep", "alexnet", "mxnet", batch_sizes=(32,)),
        )

        async def serve_all() -> list:
            docs = []
            with tempfile.TemporaryDirectory(prefix="tbd-serve-id-") as root:
                async with BenchmarkServer(cache_dir=root, workers=1) as server:
                    for request in requests:
                        handle = await server.submit(request, tenant="conf")
                        result = await handle.result()
                        docs.append(result["records"])
            return docs

        served_docs = asyncio.run(serve_all())
        identity_pairs = []
        for request, served in zip(requests, served_docs):
            specs = request.point_specs()
            engine = self._engine(DEFAULT_GPU, jobs=1)
            direct = engine.run_grid(specs)
            identity_pairs.append(
                {
                    "name": f"{request.model}/{request.framework}",
                    "served": to_canonical(served),
                    "direct": to_canonical(
                        [grid_record(s, p) for s, p in zip(specs, direct)]
                    ),
                }
            )

        self._check_serve(
            ServeEvidence(
                loadgen=report,
                identity_pairs=identity_pairs,
                **budget_probe,
            )
        )
        return 1 + 1 + len(identity_pairs)

    def _run_fuzz_phase(self) -> int:
        cases = generate_cases(self.seed, self.budget)
        jobs_by_gpu: dict = {}
        replay_by_gpu: dict = {}

        def enqueue(table: dict, gpu_key: str, spec: PointSpec) -> None:
            bucket = table.setdefault(gpu_key, {})
            bucket.setdefault(spec, None)

        perturbed: dict = {}
        for case in cases:
            relation = get_relation(case.relation)
            pert_spec, pert_gpu = relation.perturb(case.spec, case.gpu)
            perturbed[case.index] = (pert_spec, pert_gpu)
            enqueue(jobs_by_gpu, case.gpu, case.spec)
            if case.relation == "replay-determinism":
                enqueue(replay_by_gpu, pert_gpu, pert_spec)
            else:
                enqueue(jobs_by_gpu, pert_gpu, pert_spec)

        results: dict = {}
        for gpu_key in sorted(jobs_by_gpu):
            specs = list(jobs_by_gpu[gpu_key])
            points = self._engine(gpu_key).run_grid(specs)
            for spec, point in zip(specs, points):
                results[(gpu_key, spec)] = point

        # Replay cases go through a *fresh* engine pass: cache-warm when a
        # cache is configured (round-trip determinism), recomputed when not
        # (pure replay determinism).  Either way the payload bytes must
        # match the first pass.
        replay_results: dict = {}
        for gpu_key in sorted(replay_by_gpu):
            specs = list(replay_by_gpu[gpu_key])
            points = self._engine(gpu_key).run_grid(specs)
            for spec, point in zip(specs, points):
                replay_results[(gpu_key, spec)] = point

        for case in cases:
            relation = get_relation(case.relation)
            pert_spec, pert_gpu = perturbed[case.index]
            base_point = results[(case.gpu, case.spec)]
            if case.relation == "replay-determinism":
                pert_point = replay_results[(pert_gpu, pert_spec)]
            else:
                pert_point = results[(pert_gpu, pert_spec)]
            messages = relation.relate(case.spec, case.gpu, base_point, pert_point)
            self._record(case.relation, case.subject(), messages)
            if case.index % self.deep_every == 0 and not case.spec.faults:
                evidence = self._gather_point(
                    case.spec.model,
                    case.spec.framework,
                    case.spec.batch_size,
                    case.gpu,
                )
                if evidence is not None:
                    self._check_point(evidence, case.gpu)
        return len(cases)

    # ------------------------------------------------------------------
    # recheck + shrink

    def violates(self, check: str, spec: PointSpec, gpu_key: str) -> bool:
        """Does ``check`` fire on ``(spec, gpu)``?  Serial and in-process,
        so monkeypatched bugs and shrink candidates evaluate correctly."""
        try:
            inv = get_invariant(check)
        except KeyError:
            inv = None
        if inv is not None:
            if inv.scope == "serve":
                # Serve-scope laws hold over a service run, not a point
                # spec; they are re-checked by re-running the serve
                # phase, never by spec perturbation.
                return False
            if inv.scope == "point":
                evidence = self._gather_point(
                    spec.model, spec.framework, spec.batch_size, gpu_key
                )
                return evidence is not None and bool(inv.check(evidence))
            if inv.scope == "sweep":
                engine = self._engine(gpu_key, jobs=1)
                batches = sorted(get_model(spec.model).batch_sizes)
                points = engine.run_grid(
                    [
                        PointSpec(spec.model, spec.framework, b, spec.faults)
                        for b in batches
                    ]
                )
                evidence = SweepEvidence(
                    model=spec.model,
                    framework=spec.framework,
                    gpu_name=gpu_key,
                    batch_sizes=batches,
                    points=points,
                    faults=spec.faults,
                )
                return bool(inv.check(evidence))
            if inv.scope == "scaling":
                for label in self.scaling_configs:
                    evidence = self._gather_scaling(
                        spec.model, spec.framework, spec.batch_size, label
                    )
                    if evidence is not None and inv.check(evidence):
                        return True
                return False
        relation = get_relation(check)
        if not relation.applies(spec, gpu_key):
            return False
        pert_spec, pert_gpu = relation.perturb(spec, gpu_key)
        engine = self._engine(gpu_key, jobs=1)
        (base_point,) = engine.run_grid([spec])
        if check == "replay-determinism":
            (pert_point,) = self._engine(pert_gpu, jobs=1).run_grid([pert_spec])
        elif (pert_spec, pert_gpu) == (spec, gpu_key):
            pert_point = base_point
        else:
            (pert_point,) = self._engine(pert_gpu, jobs=1).run_grid([pert_spec])
        return bool(relation.relate(spec, gpu_key, base_point, pert_point))

    def shrink_violation(self, violation: Violation) -> Violation:
        """Minimize one violation's subject; returns it annotated with the
        smallest reproducing spec the search found."""
        subject = violation.subject
        if "model" not in subject:
            # Serve-scope subjects carry no spec coordinates to shrink.
            return violation
        spec = PointSpec(
            subject["model"],
            subject["framework"],
            int(subject["batch_size"]),
            subject.get("faults", ""),
        )
        gpu_key = subject.get("gpu", DEFAULT_GPU)

        def fails(candidate: PointSpec, candidate_gpu: str) -> bool:
            return self.violates(violation.check, candidate, candidate_gpu)

        if not fails(spec, gpu_key):
            return violation  # not reproducible standalone; leave as-is
        minimal_spec, minimal_gpu, _ = shrink(
            spec, gpu_key, fails, max_evals=self.max_shrink_evals
        )
        shrunk = {
            "model": minimal_spec.model,
            "framework": minimal_spec.framework,
            "batch_size": minimal_spec.batch_size,
            "faults": minimal_spec.faults,
            "gpu": minimal_gpu,
        }
        return Violation(violation.check, violation.subject, violation.message, shrunk)

    def _run_shrink_phase(self) -> None:
        if not self.shrink_failures or not self._violations:
            return
        shrunk = []
        for index, violation in enumerate(self._violations):
            if index < self.max_shrinks:
                shrunk.append(self.shrink_violation(violation))
            else:
                shrunk.append(violation)
        self._violations = shrunk

    # ------------------------------------------------------------------

    def run(self) -> ConformanceReport:
        """Execute every phase and aggregate the report."""
        self._checks = {
            inv.name: {"checked": 0, "violations": 0}
            for inv in invariant_registry()
        }
        for relation in relation_registry():
            self._checks[relation.name] = {"checked": 0, "violations": 0}
        self._violations = []
        report = ConformanceReport(
            seed=self.seed, budget=self.budget, include_grid=self.include_grid
        )
        with trace_span(
            "conformance.run",
            seed=self.seed,
            budget=self.budget,
            jobs=self.jobs,
        ) as span:
            if self.include_grid:
                with trace_span("conformance.grid"):
                    report.grid_points = self._run_grid_phase()
                with trace_span("conformance.deep"):
                    report.deep_points = self._run_deep_phase()
                with trace_span("conformance.scaling"):
                    report.scaling_probes = self._run_scaling_phase()
                with trace_span("conformance.serve"):
                    report.serve_probes = self._run_serve_phase()
            if self.budget > 0:
                with trace_span("conformance.fuzz"):
                    report.fuzz_cases = self._run_fuzz_phase()
            self._run_shrink_phase()
            span.set_attributes(
                checks=sum(e["checked"] for e in self._checks.values()),
                violations=len(self._violations),
            )
        report.checks = self._checks
        report.violations = list(self._violations)
        return report
