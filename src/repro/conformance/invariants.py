"""The invariant registry: the paper's physics, stated declaratively.

Every check is an :class:`Invariant` — a named predicate over one kind of
*evidence* — registered in a module-level table so runners, the CLI and
the mutant self-tests all see the same list:

- ``point`` scope: deep checks over one configuration's
  :class:`~repro.training.session.IterationProfile` and
  :class:`~repro.plan.compiled.CompiledPlan` (roofline floors, utilization
  ranges, FLOP conservation, memory additivity, transform contracts, the
  weights/feature-map laws across batch sizes).
- ``sweep`` scope: checks over one model's batch sweep as the engine
  reports it (monotone iteration time, ladder-monotone throughput, the
  OOM boundary).
- ``scaling`` scope: checks over one distributed probe (≤-linear scaling,
  the ring-allreduce bandwidth floor).

A check returns a list of human-readable messages — empty means the law
holds.  The runner wraps each message into a :class:`Violation` carrying
the subject configuration, so every failure is addressable by the
shrinker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import IterationMetrics
from repro.hardware.memory import AllocationTag
from repro.hardware.roofline import speed_of_light_time
from repro.models.registry import get_model
from repro.plan.transform import HalfPrecisionStorageTransform

#: Relative tolerance for comparisons that may reassociate float sums.
REL_TOL = 1e-9
#: Absolute slack (bytes) for memory-accounting comparisons.
BYTE_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant (or relation) failure on one subject configuration."""

    check: str
    subject: dict
    message: str
    shrunk: dict | None = None

    def to_doc(self) -> dict:
        doc = {
            "check": self.check,
            "subject": dict(sorted(self.subject.items())),
            "message": self.message,
        }
        if self.shrunk is not None:
            doc["shrunk"] = dict(sorted(self.shrunk.items()))
        return doc


@dataclass
class PointEvidence:
    """Deep evidence for one fault-free configuration: the profile, the
    compiled plan, and (when the model sweeps) the plan at the model's
    smallest batch for the cross-batch memory laws."""

    model: str
    framework: str
    batch_size: int
    gpu: object  # GPUSpec
    profile: object  # IterationProfile
    plan: object  # CompiledPlan
    small_batch: int | None = None
    small_plan: object = None
    throughput_unit: str = "samples/s"


@dataclass
class SweepEvidence:
    """One model/framework batch sweep as the engine reports it."""

    model: str
    framework: str
    gpu_name: str
    batch_sizes: list = field(default_factory=list)
    points: list = field(default_factory=list)  # SweepPoint per batch
    faults: str = ""


@dataclass
class ScalingEvidence:
    """One distributed probe: a cluster run plus its allreduce cost."""

    model: str
    framework: str
    batch_size: int
    cluster: object  # ClusterSpec
    profile: object  # DistributedProfile
    allreduce_cost: object = None  # AllReduceCost | None
    gradient_bytes: float = 0.0


@dataclass
class ServeEvidence:
    """The serve layer's queue, cache-budget, and identity probes.

    ``loadgen`` is one deterministic :class:`~repro.serve.loadgen.
    LoadGenReport` document; the cache fields come from a budgeted
    :class:`~repro.serve.shardcache.ShardedResultCache` exercise
    (``tracked_bytes`` is the in-memory ledger, ``disk_bytes`` the
    ground truth under the root); ``identity_pairs`` each carry the
    canonical-JSON bytes of one grid served through the server and the
    same grid run directly through the engine."""

    loadgen: dict = field(default_factory=dict)
    byte_budget: int | None = None
    peak_bytes: int = 0
    tracked_bytes: int = 0
    disk_bytes: int = 0
    identity_pairs: list = field(default_factory=list)


@dataclass(frozen=True)
class Invariant:
    """One named physical law over one scope of evidence."""

    name: str
    scope: str  # "point" | "sweep" | "scaling" | "serve"
    description: str
    check: object  # evidence -> list[str]


_REGISTRY: dict = {}


def _register(name: str, scope: str, description: str):
    def deco(fn):
        _REGISTRY[name] = Invariant(name, scope, description, fn)
        return fn

    return deco


def invariant_registry(scope: str | None = None) -> list:
    """All registered invariants (optionally one scope), in name order."""
    items = [inv for inv in _REGISTRY.values() if scope is None or inv.scope == scope]
    return sorted(items, key=lambda inv: inv.name)


def get_invariant(name: str) -> Invariant:
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown invariant {name!r}; known: {known}")
    return _REGISTRY[name]


# ----------------------------------------------------------------------
# point scope


@_register(
    "roofline-kernel-floor",
    "point",
    "every kernel's duration is bounded below by its speed-of-light "
    "roofline time max(flops/peak, bytes/bandwidth)",
)
def _roofline_kernel_floor(ev: PointEvidence) -> list:
    out = []
    for timing in ev.plan.timings:
        floor = speed_of_light_time(timing.kernel, ev.gpu)
        if timing.duration_s < floor * (1.0 - REL_TOL):
            out.append(
                f"kernel {timing.kernel.name!r}: duration {timing.duration_s:.3e}s "
                f"below speed-of-light floor {floor:.3e}s"
            )
    return out


@_register(
    "utilization-in-range",
    "point",
    "gpu/fp32/cpu utilization of a profile all lie in [0, 1]",
)
def _utilization_in_range(ev: PointEvidence) -> list:
    out = []
    for label, value in (
        ("gpu_utilization", ev.profile.gpu_utilization),
        ("fp32_utilization", ev.profile.fp32_utilization),
        ("cpu_utilization", ev.profile.cpu_utilization),
        ("timeline gpu_utilization", ev.plan.timeline.gpu_utilization),
    ):
        if not 0.0 <= value <= 1.0:
            out.append(f"{label} = {value} outside [0, 1]")
    return out


@_register(
    "busy-within-iteration",
    "point",
    "GPU busy time never exceeds the iteration wall time, nor the plan's "
    "busy time its makespan",
)
def _busy_within_iteration(ev: PointEvidence) -> list:
    out = []
    p = ev.profile
    if not 0.0 <= p.gpu_busy_time_s <= p.iteration_time_s * (1.0 + REL_TOL):
        out.append(
            f"gpu_busy_time {p.gpu_busy_time_s:.6e}s outside "
            f"[0, iteration_time {p.iteration_time_s:.6e}s]"
        )
    if ev.plan.gpu_busy_s > ev.plan.makespan_s * (1.0 + REL_TOL):
        out.append(
            f"plan busy {ev.plan.gpu_busy_s:.6e}s exceeds makespan "
            f"{ev.plan.makespan_s:.6e}s"
        )
    return out


@_register(
    "kernel-time-additivity",
    "point",
    "plan GPU busy time equals the sum of its kernel durations, one "
    "timeline event per kernel",
)
def _kernel_time_additivity(ev: PointEvidence) -> list:
    out = []
    total = sum(t.duration_s for t in ev.plan.timings)
    if abs(ev.plan.gpu_busy_s - total) > REL_TOL * max(total, 1e-12):
        out.append(
            f"plan busy {ev.plan.gpu_busy_s:.9e}s != sum of kernel "
            f"durations {total:.9e}s"
        )
    events = len(ev.plan.timeline.events)
    if events != len(ev.plan.timings):
        out.append(f"{events} timeline events for {len(ev.plan.timings)} kernels")
    return out


@_register(
    "flop-conservation",
    "point",
    "the profile's FLOP count equals the plan total, which equals the sum "
    "over kernels",
)
def _flop_conservation(ev: PointEvidence) -> list:
    out = []
    kernel_sum = sum(t.kernel.flops for t in ev.plan.timings)
    for label, value in (
        ("plan.total_flops", ev.plan.total_flops),
        ("profile.gpu_flops", ev.profile.gpu_flops),
    ):
        if abs(value - kernel_sum) > REL_TOL * max(kernel_sum, 1.0):
            out.append(f"{label} = {value:.6e} != kernel sum {kernel_sum:.6e}")
    return out


@_register(
    "throughput-identity",
    "point",
    "throughput x iteration time reproduces the effective sample count, "
    "and derived IterationMetrics mirror the profile",
)
def _throughput_identity(ev: PointEvidence) -> list:
    out = []
    p = ev.profile
    samples = p.throughput * p.iteration_time_s
    if abs(samples - p.effective_samples) > REL_TOL * max(p.effective_samples, 1.0):
        out.append(
            f"throughput x time = {samples:.6e} != effective_samples "
            f"{p.effective_samples:.6e}"
        )
    metrics = IterationMetrics.from_profile(p, throughput_unit=ev.throughput_unit)
    if abs(metrics.throughput - p.throughput) > REL_TOL * max(p.throughput, 1e-12):
        out.append(
            f"IterationMetrics.throughput {metrics.throughput:.9e} != "
            f"profile.throughput {p.throughput:.9e}"
        )
    if abs(metrics.iteration_time_s - p.iteration_time_s) > REL_TOL * max(
        p.iteration_time_s, 1e-12
    ):
        out.append("IterationMetrics.iteration_time_s diverges from the profile")
    return out


@_register(
    "timeline-serial-order",
    "point",
    "the GPU executes its kernel stream serially: timeline events are "
    "ordered and never overlap",
)
def _timeline_serial_order(ev: PointEvidence) -> list:
    out = []
    events = ev.plan.timeline.events
    for prev, cur in zip(events, events[1:]):
        if cur.start_s < prev.end_s - 1e-12:
            out.append(
                f"event {cur.name!r} starts {cur.start_s:.9e}s before "
                f"{prev.name!r} ends {prev.end_s:.9e}s"
            )
            break
    for event in events:
        if event.end_s < event.start_s:
            out.append(f"event {event.name!r} ends before it starts")
            break
    return out


@_register(
    "memory-breakdown-additivity",
    "point",
    "the peak footprint is bounded by its five-way tag breakdown: "
    "max(tag peaks) <= peak_total <= sum(tag peaks)",
)
def _memory_breakdown_additivity(ev: PointEvidence) -> list:
    out = []
    snapshot = ev.plan.memory
    peaks = snapshot.peak_by_tag
    if not peaks:
        return [f"no per-tag peaks recorded for {ev.model}"]
    upper = sum(peaks.values())
    lower = max(peaks.values())
    if snapshot.peak_total > upper + BYTE_TOL + REL_TOL * upper:
        out.append(
            f"peak_total {snapshot.peak_total:.6e}B exceeds sum of tag "
            f"peaks {upper:.6e}B"
        )
    if snapshot.peak_total + BYTE_TOL < lower:
        out.append(
            f"peak_total {snapshot.peak_total:.6e}B below largest tag "
            f"peak {lower:.6e}B"
        )
    return out


@_register(
    "memory-within-capacity",
    "point",
    "a configuration that ran under memory checking fits its GPU",
)
def _memory_within_capacity(ev: PointEvidence) -> list:
    peak = ev.plan.memory.peak_total
    capacity = ev.gpu.memory_bytes
    if peak > capacity * (1.0 + REL_TOL):
        return [
            f"peak footprint {peak / 2**30:.3f} GiB exceeds {ev.gpu.name} "
            f"capacity {capacity / 2**30:.3f} GiB yet the run was admitted"
        ]
    return []


@_register(
    "weights-invariant-in-batch",
    "point",
    "weights and weight-gradient peaks do not depend on the batch size",
)
def _weights_invariant_in_batch(ev: PointEvidence) -> list:
    if ev.small_plan is None:
        return []
    out = []
    big = ev.plan.memory.peak_by_tag
    small = ev.small_plan.memory.peak_by_tag
    for tag in (AllocationTag.WEIGHTS, AllocationTag.WEIGHT_GRADIENTS):
        a, b = big.get(tag, 0.0), small.get(tag, 0.0)
        if abs(a - b) > BYTE_TOL:
            out.append(
                f"{tag.value} peak varies with batch: {b:.6e}B at "
                f"b{ev.small_batch} vs {a:.6e}B at b{ev.batch_size}"
            )
    return out


@_register(
    "feature-maps-monotone-in-batch",
    "point",
    "the feature-map peak never shrinks when the batch grows",
)
def _feature_maps_monotone_in_batch(ev: PointEvidence) -> list:
    if ev.small_plan is None or ev.small_batch >= ev.batch_size:
        return []
    tag = AllocationTag.FEATURE_MAPS
    small = ev.small_plan.memory.peak_by_tag.get(tag, 0.0)
    big = ev.plan.memory.peak_by_tag.get(tag, 0.0)
    if big + BYTE_TOL < small:
        return [
            f"feature-map peak shrank from {small:.6e}B at b{ev.small_batch} "
            f"to {big:.6e}B at b{ev.batch_size}"
        ]
    return []


@_register(
    "transform-conservation",
    "point",
    "the FP16-storage transform preserves FLOPs and weight bytes while "
    "never growing the feature-map peak",
)
def _transform_conservation(ev: PointEvidence) -> list:
    out = []
    try:
        rewritten = HalfPrecisionStorageTransform().apply(ev.plan)
    except Exception as exc:  # TransformContractError and friends
        return [f"fp16-storage transform violated its contract: {exc}"]
    if abs(rewritten.total_flops - ev.plan.total_flops) > REL_TOL * max(
        ev.plan.total_flops, 1.0
    ):
        out.append(
            f"transform changed total FLOPs {ev.plan.total_flops:.6e} -> "
            f"{rewritten.total_flops:.6e}"
        )
    tag = AllocationTag.FEATURE_MAPS
    before = ev.plan.memory.peak_by_tag.get(tag, 0.0)
    after = rewritten.memory.peak_by_tag.get(tag, 0.0)
    if after > before * (1.0 + REL_TOL) + BYTE_TOL:
        out.append(
            f"fp16 storage grew the feature-map peak {before:.6e}B -> {after:.6e}B"
        )
    return out


# Ranking a point enumerates every candidate pipeline, so the verdict is
# memoized per (point, ranking function).  Keying on the *function* keeps
# the memo honest under monkeypatched rank orders (the mutant self-test).
_TUNE_RANK_MEMO: dict = {}


@_register(
    "tuned-config-dominance",
    "point",
    "the autotuner's winning pipeline fits GPU memory (its recorded fits "
    "bit agrees with the analytic check) and never has a larger modeled "
    "makespan than the untransformed baseline",
)
def _tuned_config_dominance(ev: PointEvidence) -> list:
    # Imported here for the same reason as the bench imports below: tune
    # depends on repro.plan and repro.bench.
    from repro.plan.pipeline import parse_transform_spec
    from repro.tune.search import Autotuner

    memo_key = (
        ev.model,
        ev.framework,
        ev.gpu.name,
        int(ev.batch_size),
        Autotuner._rank_key,
    )
    cached = _TUNE_RANK_MEMO.get(memo_key)
    if cached is None:
        tuner = Autotuner(
            ev.model, ev.framework, gpu=ev.gpu, batch_size=ev.batch_size
        )
        result = tuner.rank()
        analytic_fits = None
        if result.winner is not None:
            plan = tuner._session.compile_transformed(
                ev.batch_size, parse_transform_spec(result.winner.spec)
            )
            analytic_fits = plan.fits(ev.gpu.memory_bytes)
        cached = (result, analytic_fits)
        _TUNE_RANK_MEMO[memo_key] = cached
    result, analytic_fits = cached
    winner = result.winner
    if winner is None:
        return []
    out = []
    if not winner.fits or not analytic_fits:
        out.append(
            f"tuned winner {winner.spec!r} does not fit {ev.gpu.name} "
            f"memory (scored fits={winner.fits}, analytic "
            f"fits={analytic_fits})"
        )
    if winner.makespan_s > ev.plan.makespan_s * (1.0 + REL_TOL):
        out.append(
            f"tuned winner {winner.spec!r} has a larger modeled makespan "
            f"({winner.makespan_s:.6e}s) than the untransformed baseline "
            f"({ev.plan.makespan_s:.6e}s)"
        )
    return out


@_register(
    "noise-median-convergence",
    "point",
    "the median of noisy makespan replays converges to the noiseless "
    "closed form (the bench noise model is median-preserving)",
)
def _noise_median_convergence(ev: PointEvidence) -> list:
    # Imported here: the bench package depends on repro.plan, and keeping
    # conformance importable without it would otherwise become circular.
    from repro.bench.noise import NoiseModel, median_convergence_tolerance
    from repro.plan.executor import makespan_under_noise, plan_arrays

    samples = 15
    noise = NoiseModel(seed=ev.batch_size)
    durations, host_syncs = plan_arrays(ev.plan.timings)
    observed = sorted(
        makespan_under_noise(
            durations, host_syncs, ev.plan.framework, noise.stream(index)
        )
        for index in range(samples)
    )
    median = observed[samples // 2]
    noiseless = ev.plan.makespan_s
    tolerance = median_convergence_tolerance(noise, samples)
    deviation = abs(median / noiseless - 1.0)
    if deviation > tolerance:
        return [
            f"median of {samples} noisy makespans {median:.6e}s deviates "
            f"{deviation:.3%} from the noiseless {noiseless:.6e}s "
            f"(tolerance {tolerance:.3%})"
        ]
    return []


@_register(
    "symbolic-concrete-agreement",
    "point",
    "a fresh symbolic trace specialized at the point's batch is "
    "bit-identical to the concrete compiler's plan (kernel stream, "
    "roofline timings, timeline, allocation trace)",
)
def _symbolic_concrete_agreement(ev: PointEvidence) -> list:
    # Imported here like the bench dependency above: repro.plan.symbolic
    # imports the compiler stack, and conformance must stay importable
    # on its own.
    from repro.frameworks.registry import get_framework
    from repro.plan import compiler as plan_compiler
    from repro.plan.symbolic import (
        SymbolicPlanSet,
        TraceEscape,
        plan_difference,
    )

    spec = get_model(ev.model)
    framework = get_framework(ev.framework)
    try:
        symbolic = SymbolicPlanSet(spec, framework, ev.gpu).specialize(
            ev.batch_size
        )
    except TraceEscape:
        return []  # untraceable models use the concrete compiler anyway
    concrete = plan_compiler.compile_graph(
        spec.build(ev.batch_size), framework, ev.gpu
    )
    difference = plan_difference(symbolic, concrete)
    if difference is not None:
        return [
            f"symbolic specialize diverges from the concrete compiler at "
            f"{difference}"
        ]
    return []


@_register(
    "analytic-oom-agreement",
    "point",
    "the analytic max_batch_size (traced allocation expressions, zero "
    "compiles) equals the searched boundary (compile every candidate, "
    "catch OOM) over the model's batch ladder",
)
def _analytic_oom_agreement(ev: PointEvidence) -> list:
    from repro.training.session import TrainingSession

    analytic = TrainingSession(
        ev.model, ev.framework, gpu=ev.gpu
    ).max_batch_size()
    searched = TrainingSession(
        ev.model, ev.framework, gpu=ev.gpu, symbolic=False
    ).max_batch_size(search=True)
    if analytic != searched:
        return [
            f"analytic max_batch_size {analytic} != searched OOM boundary "
            f"{searched}"
        ]
    return []


def _schedule_probes(batch_size: int) -> tuple:
    """Deterministic adaptive probe schedules for one point: growth from
    the point's batch with headroom to produce several segments."""
    ceiling = max(4 * batch_size, batch_size + 1)
    return (
        f"geometric:factor=2,every=50,ceiling={ceiling}",
        f"gns:ceiling={ceiling},every=50",
    )


@_register(
    "schedule-sample-conservation",
    "point",
    "an adaptive schedule's segments tile [0, total_samples] exactly: "
    "the first starts at zero, each starts where its predecessor ends, "
    "the last ends at the integrated total, and no sample is counted "
    "twice or dropped across a segment boundary",
)
def _schedule_sample_conservation(ev: PointEvidence) -> list:
    # Imported here like the bench/tune dependencies above: the schedule
    # package pulls in the convergence curves, and conformance must stay
    # importable on its own.
    import math

    from repro.schedule import integrator
    from repro.training.convergence import FIG2_MODELS

    if ev.model not in FIG2_MODELS:
        return []  # schedules integrate against the convergence curve
    out = []
    for probe in _schedule_probes(ev.batch_size):
        integration = integrator.integrate_schedule(
            ev.model, probe, ev.batch_size
        )
        segments = integration.segments
        total = integration.total_samples
        message = None
        if segments[0].start_samples != 0.0:
            message = (
                f"first segment starts at {segments[0].start_samples!r}, "
                f"not 0"
            )
        if message is None:
            for prev, cur in zip(segments, segments[1:]):
                if cur.start_samples != prev.end_samples:
                    message = (
                        f"segment {cur.index} starts at "
                        f"{cur.start_samples!r} but segment {prev.index} "
                        f"ends at {prev.end_samples!r}"
                    )
                    break
        if message is None and segments[-1].end_samples != total:
            message = (
                f"last segment ends at {segments[-1].end_samples!r}, not "
                f"the integrated total {total!r}"
            )
        if message is None:
            covered = math.fsum(s.samples for s in segments)
            if abs(covered - total) > REL_TOL * max(total, 1.0):
                message = (
                    f"segment samples sum to {covered!r}, not the "
                    f"integrated total {total!r}"
                )
        if message is not None:
            out.append(f"schedule {probe}: {message}")
    return out


@_register(
    "schedule-fixed-equivalence",
    "point",
    "the fixed schedule is byte-identical to no schedule: an engine "
    "point run under schedule='fixed' serializes to the same canonical "
    "payload as the legacy path, and the schedule-aware time_to_metric "
    "reproduces the legacy integrator exactly",
)
def _schedule_fixed_equivalence(ev: PointEvidence) -> list:
    # Imported here for the same reason as the schedule import above.
    from repro.engine.executor import PointSpec, SweepEngine
    from repro.engine.keys import canonical_json
    from repro.engine.merge import point_to_payload
    from repro.training.convergence import FIG2_MODELS, time_to_metric

    out = []
    engine = SweepEngine(jobs=1, cache=None, gpu=ev.gpu)
    plain, scheduled = engine.run_grid(
        [
            PointSpec(ev.model, ev.framework, ev.batch_size),
            PointSpec(
                ev.model, ev.framework, ev.batch_size, schedule="fixed"
            ),
        ]
    )
    plain_bytes = canonical_json(point_to_payload(plain))
    scheduled_bytes = canonical_json(point_to_payload(scheduled))
    if plain_bytes != scheduled_bytes:
        out.append(
            f"schedule='fixed' payload diverges from the legacy path for "
            f"{ev.model}/{ev.framework} b{ev.batch_size}"
        )
    if ev.model in FIG2_MODELS:
        curve = FIG2_MODELS[ev.model]
        target = curve.initial + 0.95 * (curve.final - curve.initial)
        throughput = ev.profile.throughput
        legacy = time_to_metric(ev.model, throughput, target)
        fixed = time_to_metric(
            ev.model, throughput, target, schedule="fixed"
        )
        if legacy != fixed:
            out.append(
                f"time_to_metric under schedule='fixed' gives {fixed!r}, "
                f"legacy path gives {legacy!r}"
            )
    return out


# ----------------------------------------------------------------------
# sweep scope


def _paired(ev: SweepEvidence):
    return list(zip(ev.batch_sizes, ev.points))


@_register(
    "iteration-time-monotone",
    "sweep",
    "iteration time never decreases as the batch grows",
)
def _iteration_time_monotone(ev: SweepEvidence) -> list:
    out = []
    ok = [(b, p) for b, p in _paired(ev) if not p.oom and p.metrics is not None]
    for (b1, p1), (b2, p2) in zip(ok, ok[1:]):
        t1, t2 = p1.metrics.iteration_time_s, p2.metrics.iteration_time_s
        if b2 > b1 and t2 < t1 * (1.0 - REL_TOL):
            out.append(
                f"{ev.model}/{ev.framework}: iteration time dropped "
                f"{t1:.6e}s@b{b1} -> {t2:.6e}s@b{b2}"
            )
    return out


@_register(
    "throughput-monotone-on-ladder",
    "sweep",
    "throughput never decreases along the model's declared batch ladder "
    "(paper Observation 1)",
)
def _throughput_monotone_on_ladder(ev: SweepEvidence) -> list:
    out = []
    ladder = set(get_model(ev.model).batch_sizes)
    ok = [
        (b, p)
        for b, p in _paired(ev)
        if b in ladder and not p.oom and p.metrics is not None
    ]
    for (b1, p1), (b2, p2) in zip(ok, ok[1:]):
        thr1, thr2 = p1.metrics.throughput, p2.metrics.throughput
        if b2 > b1 and thr2 < thr1 * (1.0 - REL_TOL):
            out.append(
                f"{ev.model}/{ev.framework}: throughput dropped "
                f"{thr1:.4f}@b{b1} -> {thr2:.4f}@b{b2}"
            )
    return out


@_register(
    "oom-boundary-monotone",
    "sweep",
    "once a batch size runs out of memory, every larger batch does too",
)
def _oom_boundary_monotone(ev: SweepEvidence) -> list:
    out = []
    first_oom = None
    for b, p in _paired(ev):
        if p.oom and first_oom is None:
            first_oom = b
        elif not p.oom and first_oom is not None and b > first_oom:
            out.append(
                f"{ev.model}/{ev.framework}: b{b} fits although b{first_oom} OOMed"
            )
    return out


@_register(
    "sweep-metrics-in-range",
    "sweep",
    "every computed sweep point reports positive time/throughput and "
    "utilizations in [0, 1]",
)
def _sweep_metrics_in_range(ev: SweepEvidence) -> list:
    out = []
    for b, p in _paired(ev):
        if p.oom:
            continue
        m = p.metrics
        if m is None:
            out.append(f"b{b}: computed point carries no metrics")
            continue
        if m.throughput <= 0 or m.iteration_time_s <= 0:
            out.append(f"b{b}: non-positive throughput or iteration time")
        for label, value in (
            ("gpu_utilization", m.gpu_utilization),
            ("fp32_utilization", m.fp32_utilization),
            ("cpu_utilization", m.cpu_utilization),
        ):
            if not 0.0 <= value <= 1.0:
                out.append(f"b{b}: {label} = {value} outside [0, 1]")
    return out


# ----------------------------------------------------------------------
# scaling scope


@_register(
    "scaling-at-most-linear",
    "scaling",
    "multi-GPU throughput never beats linear: efficiency <= 1, exposed "
    "communication >= 0, communication fraction in [0, 1)",
)
def _scaling_at_most_linear(ev: ScalingEvidence) -> list:
    out = []
    p = ev.profile
    if p.scaling_efficiency > 1.0 + REL_TOL:
        out.append(
            f"{ev.cluster.name}: scaling efficiency {p.scaling_efficiency:.6f} > 1"
        )
    if p.exposed_exchange_s < -1e-12:
        out.append(f"{ev.cluster.name}: negative exposed exchange time")
    if not 0.0 <= p.communication_fraction < 1.0 + REL_TOL:
        out.append(
            f"{ev.cluster.name}: communication fraction "
            f"{p.communication_fraction:.6f} outside [0, 1)"
        )
    if p.iteration_time_s < p.compute_time_s * (1.0 - REL_TOL):
        out.append(f"{ev.cluster.name}: iteration shorter than its compute phase")
    return out


@_register(
    "allreduce-bandwidth-floor",
    "scaling",
    "a ring allreduce can never move its wire volume faster than the raw "
    "link bandwidth, nor dodge per-step latency",
)
def _allreduce_bandwidth_floor(ev: ScalingEvidence) -> list:
    cost = ev.allreduce_cost
    if cost is None or ev.cluster.total_gpus <= 1:
        return []
    workers = ev.cluster.total_gpus
    link = (
        ev.cluster.inter_link
        if ev.cluster.is_distributed
        else ev.cluster.machine.intra_link
    )
    volume = 2.0 * ev.gradient_bytes * (workers - 1) / workers
    floor = 2 * (workers - 1) * link.latency_s + volume / (link.bandwidth_gbs * 1e9)
    if cost.total_s < floor * (1.0 - REL_TOL):
        return [
            f"{ev.cluster.name}: allreduce of {ev.gradient_bytes:.3e}B in "
            f"{cost.total_s:.6e}s beats the wire floor {floor:.6e}s"
        ]
    return []


# ----------------------------------------------------------------------
# serve scope


@_register(
    "serve-no-starvation",
    "serve",
    "under the fair scheduler no priority class starves: zero waits "
    "above the starvation threshold, and every class that submitted "
    "work completed some of it",
)
def _serve_no_starvation(ev: ServeEvidence) -> list:
    out = []
    report = ev.loadgen
    if not report:
        return out
    starved = report.get("starvation_events", 0)
    if starved:
        out.append(
            f"{starved} job(s) waited past the starvation threshold "
            f"({report['config']['starvation_wait_s']}s simulated)"
        )
    for name, stats in sorted(report.get("classes", {}).items()):
        if stats["submitted"] > 0 and stats["completed"] == 0:
            out.append(
                f"class {name!r} submitted {stats['submitted']} job(s) "
                f"and completed none"
            )
    return out


@_register(
    "serve-cache-budget",
    "serve",
    "the sharded result cache never exceeds its byte budget (peak "
    "included) and its in-memory ledger matches the bytes on disk "
    "exactly",
)
def _serve_cache_budget(ev: ServeEvidence) -> list:
    out = []
    if ev.byte_budget is not None and ev.peak_bytes > ev.byte_budget:
        out.append(
            f"cache peaked at {ev.peak_bytes} bytes over its budget "
            f"of {ev.byte_budget}"
        )
    if ev.tracked_bytes != ev.disk_bytes:
        out.append(
            f"byte ledger drifted from disk: tracked {ev.tracked_bytes}, "
            f"on disk {ev.disk_bytes}"
        )
    return out


@_register(
    "serve-byte-identity",
    "serve",
    "a grid served through the benchmark server is byte-identical to "
    "the same grid run directly through the sweep engine",
)
def _serve_byte_identity(ev: ServeEvidence) -> list:
    out = []
    for pair in ev.identity_pairs:
        if pair["served"] != pair["direct"]:
            out.append(
                f"served records for {pair['name']} differ from the "
                f"direct engine run"
            )
    return out
