"""Seeded spec fuzzing and greedy counterexample shrinking.

:func:`generate_cases` samples random model/framework/batch/GPU/fault
combinations from a :class:`random.Random` seed — the same seed always
yields the same cases, so a fuzz run is a pure function of
``(seed, budget)`` and every failure reproduces from its case index.

:func:`shrink` is the counterexample minimizer: given a failing subject
and a ``fails`` predicate, it greedily applies simplifying moves — drop
the fault scenario, return to the default GPU, swap in a simpler model,
walk the batch down the model's ladder, fall back to the model's first
framework — keeping each move only if the failure still reproduces, and
repeats until no move sticks.  The result is a smallest reproducing
spec: one model, minimal batch, no faults unless the bug needs them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.conformance.relations import DEFAULT_GPU, relation_registry
from repro.engine.executor import PointSpec
from repro.models.registry import get_model, model_catalog
from repro.observability.tracer import trace_span

#: GPU keys the fuzzer draws from; the default testbed card dominates.
GPU_CHOICES = (DEFAULT_GPU, DEFAULT_GPU, DEFAULT_GPU, "titan xp")

_CLUSTERS = ("2M1G:infiniband", "3M1G:infiniband", "1M2G", "2M1G:10gbe")
_STRAGGLER_FACTORS = ("1.2", "1.5", "2.0")


@dataclass(frozen=True)
class FuzzCase:
    """One generated conformance case: a spec, the GPU it runs on, and
    the metamorphic relation to check."""

    index: int
    spec: PointSpec
    gpu: str
    relation: str

    def subject(self) -> dict:
        return {
            "model": self.spec.model,
            "framework": self.spec.framework,
            "batch_size": self.spec.batch_size,
            "faults": self.spec.faults,
            "gpu": self.gpu,
        }


def _random_scenario(rng: random.Random) -> str:
    """A compact, always-recoverable fault scenario."""
    cluster = rng.choice(_CLUSTERS)
    steps = rng.randint(8, 14)
    seed = rng.randint(0, 9)
    machines = int(cluster[0])
    events = [
        f"straggler=0x{rng.choice(_STRAGGLER_FACTORS)}@2:6",
        "degrade=bw0.5@2:6",
        f"timeout=1x0.5@{rng.randint(2, 5)}",
    ]
    if machines >= 2:
        events.append(f"crash=1@{rng.randint(3, 6)}")
    event = rng.choice(events)
    return f"cluster={cluster}; steps={steps}; seed={seed}; {event}"


def generate_cases(seed: int, budget: int) -> list:
    """``budget`` deterministic fuzz cases for ``seed``."""
    rng = random.Random(seed)
    models = sorted(model_catalog())
    cases = []
    for index in range(budget):
        model = rng.choice(models)
        spec_entry = get_model(model)
        framework = rng.choice(list(spec_entry.frameworks))
        batch = int(rng.choice(list(spec_entry.batch_sizes)))
        gpu = rng.choice(GPU_CHOICES)
        faults = ""
        if rng.random() < 0.25:
            faults = _random_scenario(rng)
            gpu = DEFAULT_GPU  # fault runs execute on the scenario's cluster
        spec = PointSpec(model, framework, batch, faults)
        applicable = [
            rel.name for rel in relation_registry() if rel.applies(spec, gpu)
        ]
        relation = rng.choice(applicable)
        cases.append(FuzzCase(index, spec, gpu, relation))
    return cases


def simplicity_order() -> list:
    """Model keys from simplest to most complex (layer count, then name) —
    the order the shrinker walks when swapping models."""
    catalog = model_catalog()
    return sorted(catalog, key=lambda key: (catalog[key].paper_layer_count, key))


def _model_moves(spec: PointSpec):
    """Candidate specs on strictly simpler models, simplest first."""
    catalog = model_catalog()
    current = catalog[spec.model]
    for key in simplicity_order():
        entry = catalog[key]
        if key == spec.model:
            continue
        if (entry.paper_layer_count, key) >= (
            current.paper_layer_count,
            spec.model,
        ):
            continue
        framework = (
            spec.framework
            if entry.supports(spec.framework)
            else entry.frameworks[0]
        )
        yield replace(
            spec,
            model=key,
            framework=framework,
            batch_size=min(entry.batch_sizes),
        )


def _batch_moves(spec: PointSpec):
    """Smaller batches on the model's ladder, smallest first."""
    for batch in sorted(get_model(spec.model).batch_sizes):
        if batch < spec.batch_size:
            yield replace(spec, batch_size=batch)


def shrink(spec: PointSpec, gpu: str, fails, max_evals: int = 64):
    """Greedily minimize a failing ``(spec, gpu)`` subject.

    ``fails(spec, gpu) -> bool`` must be True for the input (and stay
    True for every accepted move).  Returns ``(spec, gpu, evals)`` — the
    minimal reproducing subject and how many predicate evaluations the
    search spent.  The search is bounded by ``max_evals``; a hit on the
    bound returns the best subject found so far.
    """
    evals = 0

    def attempt(candidate: PointSpec, candidate_gpu: str) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        return bool(fails(candidate, candidate_gpu))

    with trace_span(
        "conformance.shrink",
        model=spec.model,
        framework=spec.framework,
        batch_size=spec.batch_size,
    ) as span:
        changed = True
        while changed and evals < max_evals:
            changed = False
            if spec.faults and attempt(replace(spec, faults=""), gpu):
                spec, changed = replace(spec, faults=""), True
            if gpu != DEFAULT_GPU and attempt(spec, DEFAULT_GPU):
                gpu, changed = DEFAULT_GPU, True
            for candidate in _model_moves(spec):
                if attempt(candidate, gpu):
                    spec, changed = candidate, True
                    break
            for candidate in _batch_moves(spec):
                if attempt(candidate, gpu):
                    spec, changed = candidate, True
                    break
            first_framework = get_model(spec.model).frameworks[0]
            if spec.framework != first_framework:
                candidate = replace(spec, framework=first_framework)
                if attempt(candidate, gpu):
                    spec, changed = candidate, True
        span.set_attributes(
            evals=evals,
            shrunk_model=spec.model,
            shrunk_batch=spec.batch_size,
        )
    return spec, gpu, evals
