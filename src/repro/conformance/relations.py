"""Metamorphic relations: perturb a :class:`PointSpec`, relate two runs.

Each :class:`Relation` is a named triple — an applicability predicate, a
deterministic perturbation of ``(spec, gpu)``, and a ``relate`` check over
the two engine results — registered in the same declarative style as the
invariant registry.  Relations catch bugs no single run can: a batch
doubling that makes iterations *faster*, a bigger GPU that suddenly OOMs,
a fault scenario that beats its own fault-free baseline, a cache replay
that changes bytes.

The subject of a relation is always the *base* spec; the perturbed spec
is derived, never sampled, so every case is reproducible from the base
alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conformance.invariants import REL_TOL
from repro.engine.keys import canonical_json
from repro.engine.merge import point_to_payload
from repro.engine.executor import PointSpec
from repro.hardware.devices import get_gpu
from repro.models.registry import get_model

#: GPU registry keys the conformance harness runs on.  The default device
#: is the paper's testbed card; the alternate has strictly more memory,
#: which is what the swap-gpu relation relies on.
DEFAULT_GPU = "p4000"
BIGGER_GPU = "titan xp"

#: Scenario fields that define *where* a fault run happens rather than
#: what goes wrong; stripping everything else yields the fault-free twin.
_SCENARIO_FIELDS = ("cluster", "steps", "seed")


def strip_fault_events(faults: str) -> str:
    """The fault-free twin of a scenario: same cluster/steps/seed, no
    injected events."""
    kept = []
    for piece in faults.split(";"):
        piece = piece.strip()
        if piece and piece.split("=", 1)[0].strip() in _SCENARIO_FIELDS:
            kept.append(piece)
    return "; ".join(kept)


def has_fault_events(faults: str) -> bool:
    """True when the scenario injects at least one fault event."""
    return bool(faults) and strip_fault_events(faults) != faults.strip()


@dataclass(frozen=True)
class Relation:
    """One metamorphic relation between a base run and its perturbation."""

    name: str
    description: str
    applies: object  # (spec, gpu_key) -> bool
    perturb: object  # (spec, gpu_key) -> (PointSpec, gpu_key)
    relate: object  # (spec, gpu_key, base_point, pert_point) -> list[str]


_REGISTRY: dict = {}


def _register(name: str, description: str, applies, perturb, relate) -> None:
    _REGISTRY[name] = Relation(name, description, applies, perturb, relate)


def relation_registry() -> list:
    """All registered relations, in name order."""
    return sorted(_REGISTRY.values(), key=lambda rel: rel.name)


def get_relation(name: str) -> Relation:
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown relation {name!r}; known: {known}")
    return _REGISTRY[name]


# ----------------------------------------------------------------------
# double-batch


def _double_applies(spec: PointSpec, gpu_key: str) -> bool:
    # Fault scenarios have their own relation; fixed-batch models
    # (Faster R-CNN trains one image per GPU) cannot double.
    return not spec.faults and len(get_model(spec.model).batch_sizes) > 1


def _double_perturb(spec: PointSpec, gpu_key: str):
    return (
        PointSpec(spec.model, spec.framework, spec.batch_size * 2, spec.faults),
        gpu_key,
    )


def _double_relate(spec, gpu_key, base, pert) -> list:
    if base.oom:
        if not pert.oom:
            return [
                f"b{spec.batch_size} OOMs but doubled b{spec.batch_size * 2} fits"
            ]
        return []
    if pert.oom:
        return []  # growing out of memory is allowed
    t1 = base.metrics.iteration_time_s
    t2 = pert.metrics.iteration_time_s
    if t2 < t1 * (1.0 - REL_TOL):
        return [
            f"doubling the batch sped the iteration up: {t1:.6e}s@b"
            f"{spec.batch_size} -> {t2:.6e}s@b{spec.batch_size * 2}"
        ]
    return []


_register(
    "double-batch",
    "doubling the batch never shortens the iteration and never turns an "
    "OOM point into a fitting one",
    _double_applies,
    _double_perturb,
    _double_relate,
)


# ----------------------------------------------------------------------
# swap-gpu (memory-capacity monotonicity)


def _swap_applies(spec: PointSpec, gpu_key: str) -> bool:
    return not spec.faults and gpu_key == DEFAULT_GPU


def _swap_perturb(spec: PointSpec, gpu_key: str):
    return spec, BIGGER_GPU


def _swap_relate(spec, gpu_key, base, pert) -> list:
    small = get_gpu(DEFAULT_GPU)
    big = get_gpu(BIGGER_GPU)
    if not base.oom and pert.oom:
        return [
            f"fits in {small.name} ({small.memory_gb} GB) but OOMs on "
            f"{big.name} ({big.memory_gb} GB)"
        ]
    return []


_register(
    "swap-gpu-more-memory",
    "a configuration that fits the default GPU also fits a GPU with "
    "strictly more memory (note: it may still be *slower* there — launch "
    "overheads scale with the part, paper Observation 10)",
    _swap_applies,
    _swap_perturb,
    _swap_relate,
)


# ----------------------------------------------------------------------
# drop-fault-events


def _drop_applies(spec: PointSpec, gpu_key: str) -> bool:
    return has_fault_events(spec.faults)


def _drop_perturb(spec: PointSpec, gpu_key: str):
    return (
        PointSpec(
            spec.model,
            spec.framework,
            spec.batch_size,
            strip_fault_events(spec.faults),
        ),
        gpu_key,
    )


def _drop_relate(spec, gpu_key, base, pert) -> list:
    if base.oom or pert.oom:
        if base.oom != pert.oom:
            return ["fault events changed the OOM verdict of the same cluster"]
        return []
    faulted = base.metrics.throughput
    clean = pert.metrics.throughput
    if faulted > clean * (1.0 + REL_TOL):
        return [
            f"faulted run beats its fault-free twin: {faulted:.4f} vs "
            f"{clean:.4f} samples/s"
        ]
    return []


_register(
    "drop-fault-events",
    "stripping the injected events from a fault scenario (same cluster, "
    "steps and seed) never lowers throughput",
    _drop_applies,
    _drop_perturb,
    _drop_relate,
)


# ----------------------------------------------------------------------
# replay-determinism


def _replay_applies(spec: PointSpec, gpu_key: str) -> bool:
    return True


def _replay_perturb(spec: PointSpec, gpu_key: str):
    return spec, gpu_key


def _replay_relate(spec, gpu_key, base, pert) -> list:
    a = canonical_json(point_to_payload(base))
    b = canonical_json(point_to_payload(pert))
    if a != b:
        return ["replaying the identical spec produced different payload bytes"]
    return []


_register(
    "replay-determinism",
    "running the identical spec again (cache-warm or recomputed) yields "
    "byte-identical payloads",
    _replay_applies,
    _replay_perturb,
    _replay_relate,
)
