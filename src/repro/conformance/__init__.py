"""Conformance harness: the paper's physics as executable invariants.

The simulator's five metric families obey physical laws — kernel times sit
on the roofline, memory breakdowns add up, multi-GPU scaling never beats
linear.  This package turns those laws into a declarative registry of
checks (:mod:`~repro.conformance.invariants`), metamorphic relations
between perturbed runs (:mod:`~repro.conformance.relations`), a seeded
spec fuzzer with a greedy counterexample shrinker
(:mod:`~repro.conformance.generator`), and a parallel runner that drives
everything through the sweep engine and emits a machine-readable
violation report (:mod:`~repro.conformance.runner`).
"""

from repro.conformance.generator import FuzzCase, generate_cases, shrink
from repro.conformance.invariants import (
    Invariant,
    PointEvidence,
    ScalingEvidence,
    SweepEvidence,
    Violation,
    get_invariant,
    invariant_registry,
)
from repro.conformance.relations import Relation, get_relation, relation_registry
from repro.conformance.runner import ConformanceReport, ConformanceRunner

__all__ = [
    "ConformanceReport",
    "ConformanceRunner",
    "FuzzCase",
    "Invariant",
    "PointEvidence",
    "Relation",
    "ScalingEvidence",
    "SweepEvidence",
    "Violation",
    "generate_cases",
    "get_invariant",
    "get_relation",
    "invariant_registry",
    "relation_registry",
    "shrink",
]
