"""CLI surface of the conformance harness: ``tbd conformance run|list|shrink``.

Kept next to the harness (mirroring :mod:`repro.engine.cli`) so flag
semantics and runner construction live in one place.
"""

from __future__ import annotations

from repro.conformance.invariants import invariant_registry
from repro.conformance.relations import DEFAULT_GPU, relation_registry
from repro.conformance.runner import ConformanceRunner
from repro.engine.cache import ResultCache
from repro.engine.cli import add_engine_arguments
from repro.engine.executor import PointSpec


def register_conformance_command(subparsers) -> None:
    """Add ``tbd conformance run|list|shrink`` to the subparser set."""
    conformance = subparsers.add_parser(
        "conformance",
        help="check the simulator's physics: invariants, metamorphic "
        "relations, seeded fuzzing",
    )
    sub = conformance.add_subparsers(dest="conformance_command", required=True)

    run = sub.add_parser(
        "run", help="paper grid + fuzzed specs through every registered check"
    )
    add_engine_arguments(run)
    run.add_argument(
        "--budget", type=int, default=50, help="fuzz cases to generate (default 50)"
    )
    run.add_argument(
        "--seed", type=int, default=7, help="fuzz generator seed (default 7)"
    )
    run.add_argument(
        "--report",
        default="conformance_report.json",
        help="machine-readable violation report path "
        "(default conformance_report.json; 'none' to skip)",
    )
    run.add_argument(
        "--no-grid",
        action="store_true",
        help="skip the paper-grid/deep/scaling phases; fuzz only",
    )
    run.add_argument(
        "--deep-every",
        type=int,
        default=5,
        help="deep-check every Nth fuzz case (default 5)",
    )
    run.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violations without minimizing them",
    )

    lister = sub.add_parser("list", help="the registered invariants and relations")

    shrink_cmd = sub.add_parser(
        "shrink", help="minimize one failing configuration by hand"
    )
    shrink_cmd.add_argument("check", help="invariant or relation name")
    shrink_cmd.add_argument("model")
    shrink_cmd.add_argument("framework")
    shrink_cmd.add_argument("batch", type=int)
    shrink_cmd.add_argument("--faults", default="", help="fault scenario text")
    shrink_cmd.add_argument(
        "--gpu", default=DEFAULT_GPU, help=f"GPU registry key (default {DEFAULT_GPU})"
    )
    add_engine_arguments(shrink_cmd)

    conformance.set_defaults(func=cmd_conformance)


def _cache_from_args(args) -> ResultCache | None:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)  # None -> default location


def _cmd_run(args) -> int:
    runner = ConformanceRunner(
        seed=args.seed,
        budget=args.budget,
        jobs=args.jobs,
        cache=_cache_from_args(args),
        include_grid=not args.no_grid,
        deep_every=args.deep_every,
        shrink_failures=not args.no_shrink,
    )
    report = runner.run()
    print(report.render())
    if args.report and args.report != "none":
        report.write(args.report)
        print(f"\nreport written to {args.report}")
    return 0 if report.ok else 1


def _cmd_list(args) -> int:
    print("invariants:")
    for inv in invariant_registry():
        print(f"  {inv.name:<34} [{inv.scope}]")
        print(f"      {inv.description}")
    print("\nmetamorphic relations:")
    for rel in relation_registry():
        print(f"  {rel.name}")
        print(f"      {rel.description}")
    return 0


def _cmd_shrink(args) -> int:
    runner = ConformanceRunner(
        jobs=1, cache=_cache_from_args(args), include_grid=False, budget=0
    )
    spec = PointSpec(args.model, args.framework, args.batch, args.faults)
    if not runner.violates(args.check, spec, args.gpu):
        print(
            f"{args.check} holds for {args.model}/{args.framework} "
            f"b{args.batch} on {args.gpu} — nothing to shrink"
        )
        return 0
    from repro.conformance.generator import shrink

    minimal, gpu, evals = shrink(
        spec,
        args.gpu,
        lambda s, g: runner.violates(args.check, s, g),
    )
    print(
        f"{args.check} violated; minimal reproduction after {evals} eval(s):\n"
        f"  model={minimal.model} framework={minimal.framework} "
        f"batch={minimal.batch_size} faults={minimal.faults!r} gpu={gpu}"
    )
    return 1


def cmd_conformance(args) -> int:
    """Handler for ``tbd conformance ...``."""
    if args.conformance_command == "run":
        return _cmd_run(args)
    if args.conformance_command == "list":
        return _cmd_list(args)
    return _cmd_shrink(args)
