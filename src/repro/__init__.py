"""repro — a full reproduction of *TBD: Benchmarking and Analyzing Deep
Neural Network Training* (Zhu et al., IISWC 2018).

The package provides:

- :mod:`repro.core` — the TBD benchmark suite and end-to-end analysis
  toolchain (the paper's primary contribution).
- :mod:`repro.hardware` — simulated GPUs/CPUs/interconnects with the paper's
  exact device specifications (Table 4).
- :mod:`repro.frameworks` — TensorFlow/MXNet/CNTK execution personalities.
- :mod:`repro.models` — layer-graph definitions of all eight TBD models.
- :mod:`repro.data` — synthetic stand-ins for the six datasets (Table 3).
- :mod:`repro.training` — the simulated training loop and convergence models.
- :mod:`repro.distributed` — data-parallel multi-GPU / multi-machine training.
- :mod:`repro.profiling` — nvprof-like kernel traces, vTune-like CPU sampling,
  and the paper's memory profiler with the five-way breakdown.
- :mod:`repro.observability` — the telemetry runtime: structured spans,
  a metrics registry, deterministic exporters, and the run archive behind
  ``tbd trace`` / ``tbd runs``.
- :mod:`repro.experiments` — generators for every table and figure.
- :mod:`repro.tensor` — a real numpy autodiff engine used to run genuine
  (miniature) training end-to-end.

Quickstart::

    from repro import standard_suite

    suite = standard_suite()
    result = suite.run("resnet-50", framework="mxnet", batch_size=32)
    print(result.throughput, result.gpu_utilization, result.fp32_utilization)
"""

from repro.core.analysis import AnalysisPipeline
from repro.core.metrics import IterationMetrics
from repro.core.suite import TBDSuite, standard_suite

__version__ = "1.0.0"

__all__ = [
    "TBDSuite",
    "standard_suite",
    "AnalysisPipeline",
    "IterationMetrics",
    "__version__",
]
