"""Content-addressed cache keys for sweep points.

A sweep point's result is a pure function of

- the model architecture (its :class:`~repro.models.registry.ModelSpec`
  and the source of its graph builder),
- the framework personality (dispatch costs, allocator behaviour,
  kernel-efficiency table),
- the device pair (GPU roofline inputs, host CPU),
- the mini-batch size and the model's reference hyper-parameters, and
- the timing-model *code* itself (roofline, kernel library, and the
  plan compiler/executor that lowers and replays the kernel stream).

The key is the SHA-256 of a canonical JSON document over exactly those
inputs, so any change to any of them moves the key — and therefore
invalidates the cached entry — while irrelevant changes (dict insertion
order, field declaration order, unrelated modules) leave it fixed.

Code is fingerprinted at module granularity: every point depends on the
shared timing core (session, roofline, kernels, graph, frameworks, data
pipeline), but only on *its own* model-builder module, so editing
``repro/models/resnet.py`` invalidates ResNet entries and nothing else.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

from repro.hardware.devices import CPUSpec, GPUSpec, QUADRO_P4000, XEON_E5_2680
from repro.frameworks.base import Framework
from repro.frameworks.registry import get_framework
from repro.models.registry import ModelSpec, get_model
from repro.training.hyperparams import MODEL_DEFAULTS, Hyperparameters

#: Schema version of the key document; bump to invalidate every entry.
#: v2: the document gained a ``faults`` dimension (empty string when the
#: point is fault-free).
#: v3: the document gained a ``transforms`` dimension — but only for
#: transformed points.  Untransformed documents keep the v2 shape (no
#: ``transforms`` field, ``schema: 2``) so every pre-v3 cache entry and
#: JSONL export stays byte-identical, exactly how ``faults`` landed.
#: v4: the document gained a ``schedule`` dimension — again only for
#: points with an *adaptive* batch schedule.  Unscheduled (and
#: ``fixed``-scheduled, which normalizes to empty) documents keep their
#: v2/v3 shapes, so the whole pre-v4 grid stays byte-identical.
KEY_SCHEMA = 4

#: The schema untransformed documents declare (and are byte-identical to).
_UNTRANSFORMED_SCHEMA = 2

#: The schema transformed-but-unscheduled documents declare (the v3 shape).
_TRANSFORMED_SCHEMA = 3

#: Timing-model modules every sweep point depends on, relative to the
#: ``repro`` package root.  Directories mean "every .py file inside".
CORE_CODE = (
    "training/session.py",
    "plan",
    "hardware/roofline.py",
    "hardware/memory.py",
    "hardware/devices.py",
    "kernels",
    "graph",
    "frameworks",
    "data",
)

#: Extra modules a *faulted* point's result additionally depends on:
#: the fault/recovery simulator and the distributed cost models it
#: perturbs.  Fault-free points deliberately exclude these, so editing
#: the fault layer never invalidates the plain paper grid.
FAULT_CODE = (
    "faults",
    "distributed",
    "hardware/cluster.py",
    "hardware/interconnect.py",
)

#: Extra modules a *transformed* point's result additionally depends on:
#: the optimization rewrites a pipeline composes.  (``plan/`` — including
#: the pipeline parser and the transform contracts — is already in
#: :data:`CORE_CODE`.)  Untransformed points deliberately exclude these,
#: so editing an optimization never invalidates the plain paper grid.
TRANSFORM_CODE = ("optimizations",)

#: Extra modules a *scheduled* point's result additionally depends on:
#: the schedule family/integrator and the convergence curves that drive
#: its segment boundaries.  Unscheduled points deliberately exclude
#: these, so editing the schedule layer never invalidates the plain
#: paper grid.
SCHEDULE_CODE = ("schedule", "training/convergence.py")

#: Run dimensions that deliberately do NOT participate in the cache key.
#: The bench noise seed is measurement-layer state: it perturbs *observed*
#: times, never the simulated result a point caches, so two runs at
#: different seeds must hit the same cache entry.  Adding one of these to
#: the key document is a bug (it would shard the cache by measurement
#: configuration); the bench trajectory records them separately in each
#: ``BENCH_*.json`` record instead.  ``tenant`` and ``priority`` are
#: service-layer state (who asked, how urgently) — the serve job queue
#: tracks them, but the result of a point is identical whoever asked for
#: it, so the shared cache stays content-addressed across tenants and
#: concurrent duplicate submissions coalesce onto one entry.
NON_KEY_RUN_DIMENSIONS = ("noise_seed", "tenant", "priority")

_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Per-file digest cache: absolute path -> sha256 hex of the source bytes.
_FILE_DIGESTS: dict = {}
#: Composite fingerprint cache: model module name (or None) -> hex digest.
_CODE_FINGERPRINTS: dict = {}


def canonical_json(document) -> str:
    """Serialize ``document`` deterministically: keys sorted at every
    level, compact separators, exact (repr-roundtrip) floats."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def digest(document) -> str:
    """SHA-256 hex digest of a document's canonical JSON."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# input fingerprints
# ----------------------------------------------------------------------


def fingerprint_gpu(gpu: GPUSpec) -> dict:
    """Every roofline input the GPU contributes, as a plain dict."""
    return dataclasses.asdict(gpu)


def fingerprint_cpu(cpu: CPUSpec) -> dict:
    """Every host-side input the CPU contributes."""
    return dataclasses.asdict(cpu)


def fingerprint_framework(framework: Framework) -> dict:
    """The framework personality, with enum keys/values made canonical."""
    doc = {}
    for spec_field in dataclasses.fields(framework):
        value = getattr(framework, spec_field.name)
        if spec_field.name == "kernel_efficiency":
            value = {category.value: factor for category, factor in value.items()}
        elif spec_field.name == "momentum_allocation":
            value = value.value
        doc[spec_field.name] = value
    return doc


def fingerprint_model(spec: ModelSpec) -> dict:
    """The model's static description; the ``build`` callable is replaced
    by its defining module (fingerprinted separately as code)."""
    doc = {}
    for spec_field in dataclasses.fields(spec):
        if spec_field.name == "build":
            doc["build_module"] = spec.build.__module__
            continue
        value = getattr(spec, spec_field.name)
        if isinstance(value, tuple):
            value = list(value)
        doc[spec_field.name] = value
    return doc


def fingerprint_hyperparameters(hyperparams: Hyperparameters | None) -> dict | None:
    """The reference hyper-parameters, or ``None`` for models without a
    registered default set."""
    if hyperparams is None:
        return None
    return dataclasses.asdict(hyperparams)


# ----------------------------------------------------------------------
# code fingerprint
# ----------------------------------------------------------------------


def _file_digest(path: str) -> str:
    cached = _FILE_DIGESTS.get(path)
    if cached is None:
        with open(path, "rb") as handle:
            cached = hashlib.sha256(handle.read()).hexdigest()
        _FILE_DIGESTS[path] = cached
    return cached


def _iter_code_files(entry: str):
    """Yield package-relative paths of every source file under ``entry``."""
    absolute = os.path.join(_PACKAGE_ROOT, entry)
    if os.path.isfile(absolute):
        yield entry
        return
    if not os.path.isdir(absolute):
        return
    for name in sorted(os.listdir(absolute)):
        if name.endswith(".py"):
            yield f"{entry}/{name}"


def _module_relpath(module_name: str) -> str | None:
    """``repro.models.resnet`` -> ``models/resnet.py`` (None if outside
    the package, e.g. a test-defined builder)."""
    prefix = "repro."
    if not module_name.startswith(prefix):
        return None
    relative = module_name[len(prefix):].replace(".", "/") + ".py"
    return relative if os.path.isfile(os.path.join(_PACKAGE_ROOT, relative)) else None


def code_fingerprint(
    model_module: str | None = None,
    with_faults: bool = False,
    with_transforms: bool = False,
    with_schedule: bool = False,
) -> str:
    """Fingerprint of the timing-model source a point's result depends on.

    ``model_module`` is the model builder's module name; only that model's
    entries move when it changes.  ``with_faults`` widens the dependency
    set by :data:`FAULT_CODE` for points running under a fault scenario;
    ``with_transforms`` widens it by :data:`TRANSFORM_CODE` for points
    running under a transform pipeline; ``with_schedule`` widens it by
    :data:`SCHEDULE_CODE` for points running an adaptive batch schedule.
    The composite digest hashes the sorted ``(relative path, file
    sha256)`` list so renames count as changes.
    """
    cache_key = (model_module, with_faults, with_transforms, with_schedule)
    cached = _CODE_FINGERPRINTS.get(cache_key)
    if cached is not None:
        return cached
    entries = []
    seen = set()
    sources = list(CORE_CODE)
    if with_faults:
        sources.extend(FAULT_CODE)
    if with_transforms:
        sources.extend(TRANSFORM_CODE)
    if with_schedule:
        sources.extend(SCHEDULE_CODE)
    if model_module is not None:
        relative = _module_relpath(model_module)
        if relative is not None:
            sources.append(relative)
    for source in sources:
        for relative in _iter_code_files(source):
            if relative in seen:
                continue
            seen.add(relative)
            entries.append(
                [relative, _file_digest(os.path.join(_PACKAGE_ROOT, relative))]
            )
    fingerprint = digest(sorted(entries))
    _CODE_FINGERPRINTS[cache_key] = fingerprint
    return fingerprint


def modules_fingerprint(entries) -> str:
    """Composite digest of arbitrary package-relative source entries
    (files or directories), for subsystems with their own code-dependency
    sets — e.g. the bench harness fingerprints itself on top of
    :data:`CORE_CODE` so trajectory records can tell "the timing model
    changed" apart from "the measurement harness changed"."""
    digests = []
    seen = set()
    for entry in entries:
        for relative in _iter_code_files(entry):
            if relative in seen:
                continue
            seen.add(relative)
            digests.append(
                [relative, _file_digest(os.path.join(_PACKAGE_ROOT, relative))]
            )
    return digest(sorted(digests))


def clear_fingerprint_caches() -> None:
    """Drop memoized file/code digests (tests, or long-lived processes
    that edit source on the fly)."""
    _FILE_DIGESTS.clear()
    _CODE_FINGERPRINTS.clear()


# ----------------------------------------------------------------------
# the point key
# ----------------------------------------------------------------------


def key_document(
    model,
    framework,
    batch_size: int,
    gpu: GPUSpec = QUADRO_P4000,
    cpu: CPUSpec = XEON_E5_2680,
    hyperparams: Hyperparameters | None = None,
    code: str | None = None,
    faults: str = "",
    transforms: str = "",
    schedule: str = "",
) -> dict:
    """The full canonical document a point key hashes.

    ``model``/``framework`` accept registry keys or resolved spec objects;
    ``hyperparams`` defaults to the model's registered reference set;
    ``code`` defaults to :func:`code_fingerprint` of the timing model plus
    the model's builder module (widened by :data:`FAULT_CODE` when the
    point carries a ``faults`` scenario, by :data:`TRANSFORM_CODE` when
    it carries a ``transforms`` pipeline, and by :data:`SCHEDULE_CODE`
    when it carries an adaptive ``schedule``); ``faults``, ``transforms``
    and ``schedule`` are the raw scenario/pipeline/schedule strings —
    hashed as text because the text *is* the deterministic input (same
    text + same code = same result).  ``schedule`` must already be
    normalized (``fixed`` collapses to the empty string — the executor
    does this via :func:`repro.schedule.spec.normalized_schedule`).  An
    unscheduled document omits the ``schedule`` field and declares the
    v2/v3 schema its other dimensions imply, keeping every pre-v4 key
    byte-identical.
    """
    spec = get_model(model) if isinstance(model, str) else model
    personality = (
        get_framework(framework) if isinstance(framework, str) else framework
    )
    if hyperparams is None:
        hyperparams = MODEL_DEFAULTS.get(spec.key)
    if code is None:
        code = code_fingerprint(
            spec.build.__module__,
            with_faults=bool(faults),
            with_transforms=bool(transforms),
            with_schedule=bool(schedule),
        )
    if schedule:
        schema = KEY_SCHEMA
    elif transforms:
        schema = _TRANSFORMED_SCHEMA
    else:
        schema = _UNTRANSFORMED_SCHEMA
    document = {
        "schema": schema,
        "model": fingerprint_model(spec),
        "framework": fingerprint_framework(personality),
        "gpu": fingerprint_gpu(gpu),
        "cpu": fingerprint_cpu(cpu),
        "batch_size": int(batch_size),
        "hyperparameters": fingerprint_hyperparameters(hyperparams),
        "code": code,
        "faults": faults,
    }
    if transforms:
        document["transforms"] = transforms
    if schedule:
        document["schedule"] = schedule
    return document


def point_key(
    model,
    framework,
    batch_size: int,
    gpu: GPUSpec = QUADRO_P4000,
    cpu: CPUSpec = XEON_E5_2680,
    hyperparams: Hyperparameters | None = None,
    code: str | None = None,
    faults: str = "",
    transforms: str = "",
    schedule: str = "",
) -> str:
    """Content address of one sweep point: SHA-256 over every input the
    simulated result depends on."""
    return digest(
        key_document(
            model,
            framework,
            batch_size,
            gpu=gpu,
            cpu=cpu,
            hyperparams=hyperparams,
            code=code,
            faults=faults,
            transforms=transforms,
            schedule=schedule,
        )
    )
