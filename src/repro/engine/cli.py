"""CLI surface of the sweep engine: the ``--jobs``/``--cache-dir``/
``--no-cache`` options and the ``tbd cache`` maintenance subcommand.

Kept next to the engine (rather than inside ``repro.cli``) so the flag
semantics, the default cache location, and the engine construction logic
live in one place and stay in lockstep.
"""

from __future__ import annotations

from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.executor import SweepEngine
from repro.hardware.devices import GPUSpec, QUADRO_P4000


def add_engine_arguments(parser) -> None:
    """Attach the engine options to an argparse (sub)parser."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep grid (default 1: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default $TBD_CACHE_DIR or {default_cache_dir()!r})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every point; do not read or write the result cache",
    )


def add_faults_argument(parser) -> None:
    """Attach the ``--faults`` scenario option to a sweep-shaped parser."""
    parser.add_argument(
        "--faults",
        default="",
        metavar="SPEC",
        help=(
            "fault scenario to run every point under, e.g. "
            "'cluster=2M1G:1gbe; straggler=0x1.5@10:40; crash=1@30' "
            "(default: none; cached as its own grid dimension)"
        ),
    )


def add_transforms_argument(parser) -> None:
    """Attach the ``--transforms`` pipeline option to a sweep-shaped parser."""
    parser.add_argument(
        "--transforms",
        default="",
        metavar="SPEC",
        help=(
            "transform pipeline to run every point under, e.g. "
            "'fused_rnn+fp16+offload:0.5' "
            "(default: none; cached as its own grid dimension)"
        ),
    )


def add_schedule_argument(parser) -> None:
    """Attach the ``--schedule`` option to a sweep-shaped parser."""
    parser.add_argument(
        "--schedule",
        default="",
        metavar="SPEC",
        help=(
            "batch schedule to grow every point's batch under, e.g. "
            "'geometric:factor=2,every=50' or 'gns:ceiling=256' "
            "(default: none; 'fixed' is byte-identical to none; adaptive "
            "schedules are cached as their own grid dimension)"
        ),
    )


def engine_from_args(args, gpu: GPUSpec | None = None) -> SweepEngine:
    """Build the :class:`SweepEngine` an engine-aware command asked for."""
    cache = None
    if not getattr(args, "no_cache", False):
        cache = ResultCache(args.cache_dir)  # None -> default location
    return SweepEngine(
        jobs=args.jobs,
        cache=cache,
        gpu=gpu if gpu is not None else QUADRO_P4000,
    )


def format_engine_summary(engine: SweepEngine) -> str:
    """One status line for command output, e.g.
    ``engine: jobs=4, 12 hit(s), 3 computed (cache .tbd-cache)``."""
    stats = engine.stats
    if engine.cache is None:
        return f"engine: jobs={engine.jobs}, {stats.points_computed} computed (cache off)"
    return (
        f"engine: jobs={engine.jobs}, {stats.cache_hits} hit(s), "
        f"{stats.points_computed} computed (cache {engine.cache.root})"
    )


def register_cache_command(subparsers) -> None:
    """Add ``tbd cache stats|clear`` to the top-level subparser set."""
    cache = subparsers.add_parser("cache", help="inspect or clear the sweep result cache")
    cache.add_argument(
        "--dir",
        default=None,
        help=f"cache directory (default $TBD_CACHE_DIR or {default_cache_dir()!r})",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="entry counts and on-disk size")
    cache_sub.add_parser("clear", help="delete every cached point (safe mid-sweep)")
    cache.set_defaults(func=cmd_cache)


def cmd_cache(args) -> int:
    """Handler for ``tbd cache stats|clear``."""
    store = ResultCache(args.dir)
    if args.cache_command == "stats":
        print(store.stats().format_report())
        return 0
    removed = store.clear()
    print(f"cleared {removed} cached point(s) from {store.root}")
    return 0
