"""``repro.engine`` — parallel sweep execution with content-addressed
result memoization.

The engine is the fast path for everything grid-shaped in the repo: the
Figs. 4-6 batch-size sweeps, cross-framework comparisons, and any custom
grid built from :func:`grid_for` / :class:`PointSpec`.  Its two
guarantees, pinned by the differential test harness:

- **parallel == serial**: fan-out across a process pool never changes a
  result, a field, or an exported byte;
- **cached == cold**: a memoized point is indistinguishable from a fresh
  computation, and any relevant input change (device numbers, framework
  personality, hyper-parameters, timing-model source) moves the cache
  key so stale entries can never be served.
"""

from repro.engine.cache import (
    CacheCorruptionWarning,
    CacheStats,
    ResultCache,
    default_cache_dir,
)
from repro.engine.executor import (
    EngineStats,
    EngineWorkerWarning,
    PointSpec,
    SweepEngine,
    grid_for,
)
from repro.engine.keys import code_fingerprint, key_document, point_key
from repro.engine.merge import (
    grid_record,
    payload_to_point,
    point_to_payload,
    write_grid_jsonl,
)

__all__ = [
    "CacheCorruptionWarning",
    "CacheStats",
    "EngineStats",
    "EngineWorkerWarning",
    "PointSpec",
    "ResultCache",
    "SweepEngine",
    "code_fingerprint",
    "default_cache_dir",
    "grid_for",
    "grid_record",
    "key_document",
    "payload_to_point",
    "point_key",
    "point_to_payload",
    "write_grid_jsonl",
]
