"""Result serialization and ordered merging for the sweep engine.

Every result the engine produces — computed inline, computed in a worker
process, or loaded from the cache — passes through the same plain-dict
*payload* form defined here.  That single representation is what makes
the differential guarantees cheap to state: parallel, serial and cached
runs cannot diverge in serialization because there is exactly one
serializer, and Python's exact repr-roundtrip floats make the JSON form
lossless.
"""

from __future__ import annotations

import dataclasses

from repro.core.metrics import IterationMetrics
from repro.core.suite import SweepPoint
from repro.engine.keys import canonical_json

#: Payload-format version carried inside each cache entry's ``point``.
PAYLOAD_VERSION = 1


def point_to_payload(point: SweepPoint) -> dict:
    """``SweepPoint`` -> JSON-able dict (the cache/worker wire format)."""
    return {
        "version": PAYLOAD_VERSION,
        "batch_size": point.batch_size,
        "oom": bool(point.oom),
        "metrics": (
            None if point.metrics is None else dataclasses.asdict(point.metrics)
        ),
    }


def payload_to_point(payload: dict) -> SweepPoint:
    """Inverse of :func:`point_to_payload`.

    Raises:
        ValueError: if the payload is not a valid point (the cache treats
            that as corruption and recomputes).
    """
    try:
        if payload["version"] != PAYLOAD_VERSION:
            raise ValueError(f"unknown payload version {payload.get('version')!r}")
        metrics = payload["metrics"]
        return SweepPoint(
            batch_size=int(payload["batch_size"]),
            metrics=None if metrics is None else IterationMetrics(**metrics),
            oom=bool(payload["oom"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed sweep-point payload: {exc}") from exc


def merge_ordered(total: int, indexed_payloads) -> list:
    """Merge ``(index, payload)`` pairs — from any number of workers, in
    any completion order — back into grid order.

    Raises:
        ValueError: on a missing or duplicated index (a worker-accounting
            bug; never silently drop or double a point).
    """
    slots: list = [None] * total
    filled = [False] * total
    for index, payload in indexed_payloads:
        if not 0 <= index < total:
            raise ValueError(f"merge index {index} outside grid of {total}")
        if filled[index]:
            raise ValueError(f"duplicate result for grid index {index}")
        slots[index] = payload
        filled[index] = True
    missing = [index for index, present in enumerate(filled) if not present]
    if missing:
        raise ValueError(f"grid indices never produced a result: {missing}")
    return slots


def grid_record(spec, point: SweepPoint) -> dict:
    """One exportable record: the grid coordinates plus the point payload.

    The ``faults``, ``transforms`` and ``schedule`` coordinates appear
    only when the spec carries one, so plain exports stay byte-identical
    to the format that predates each dimension (``schedule="fixed"``
    normalizes away entirely, like no schedule at all).
    """
    payload = point_to_payload(point)
    record = {
        "model": spec.model,
        "framework": spec.framework,
        "batch_size": point.batch_size,
        "oom": payload["oom"],
        "metrics": payload["metrics"],
    }
    faults = getattr(spec, "faults", "")
    if faults:
        record["faults"] = faults
    transforms = getattr(spec, "transforms", "")
    if transforms:
        record["transforms"] = transforms
    schedule = getattr(spec, "schedule", "")
    if schedule:
        from repro.schedule.spec import normalized_schedule

        schedule = normalized_schedule(schedule)
        if schedule:
            record["schedule"] = schedule
    return record


def write_grid_jsonl(path: str, specs, points) -> int:
    """Write one canonical-JSON line per grid point; returns line count.

    Byte-determinism is part of the contract: the differential harness
    asserts serial, parallel and warm-cache runs export identical files.
    """
    if len(specs) != len(points):
        raise ValueError(
            f"grid/result length mismatch: {len(specs)} specs, {len(points)} points"
        )
    with open(path, "w", encoding="utf-8") as handle:
        for spec, point in zip(specs, points):
            handle.write(canonical_json(grid_record(spec, point)))
            handle.write("\n")
    return len(points)
