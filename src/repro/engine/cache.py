"""Content-addressed on-disk cache of sweep-point results.

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON document per point,
fanned out over 256 shard directories so a full paper grid never piles
thousands of files into one listing.  Writes are atomic (temp file in the
shard directory, then ``os.replace``), so a reader can never observe a
half-written entry; a concurrent ``tbd cache clear`` at worst deletes an
entry that is immediately recomputed.

Robustness contract: a corrupted, truncated, or wrong-schema entry is a
*miss with a warning*, never an exception and never a wrong result — the
engine recomputes the point and overwrites the bad entry.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field

from repro.engine.keys import canonical_json

#: Entry-format version; bump when the stored payload shape changes.
ENTRY_SCHEMA = 1

#: Environment override for the default cache location.
CACHE_DIR_ENV = "TBD_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".tbd-cache"


class CacheCorruptionWarning(UserWarning):
    """A cache entry could not be read and will be recomputed."""


def default_cache_dir() -> str:
    """``$TBD_CACHE_DIR`` or ``./.tbd-cache``."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


@dataclass
class CacheStats:
    """One ``tbd cache stats`` snapshot."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    by_model: dict = field(default_factory=dict)

    def format_report(self) -> str:
        lines = [
            f"cache {self.root}",
            f"  entries: {self.entries}",
            f"  size:    {self.total_bytes} bytes",
        ]
        for model in sorted(self.by_model):
            lines.append(f"  {model:16s} {self.by_model[model]} point(s)")
        return "\n".join(lines)


class ResultCache:
    """The content-addressed store the sweep engine memoizes into."""

    def __init__(self, root: str | None = None):
        self.root = root if root is not None else default_cache_dir()
        self.corrupt_entries = 0

    def path_for(self, key: str) -> str:
        """Sharded entry path for one point key."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The stored point payload, or ``None`` on miss *or* damage."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            self._quarantine(path, f"unreadable entry ({exc})")
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != ENTRY_SCHEMA
            or entry.get("key") != key
            or not isinstance(entry.get("point"), dict)
        ):
            self._quarantine(path, "schema/key mismatch")
            return None
        return entry["point"]

    def store(self, key: str, point: dict, config: dict | None = None) -> str:
        """Atomically write one entry; returns its path.

        Safe against a concurrent :meth:`clear`: the shard directory is
        recreated on demand and the final ``os.replace`` either lands the
        entry or (if the root vanished mid-write) is retried once.
        """
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "config": config or {},
            "point": point,
        }
        text = canonical_json(entry)
        path = self.path_for(key)
        for attempt in (0, 1):
            shard = os.path.dirname(path)
            os.makedirs(shard, exist_ok=True)
            handle, temp_path = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=shard
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    stream.write(text)
                os.replace(temp_path, path)
                return path
            except FileNotFoundError:
                # The shard was cleared between mkdir and replace; retry.
                if attempt:
                    raise
            finally:
                if os.path.exists(temp_path):
                    try:
                        os.remove(temp_path)
                    except OSError:
                        pass
        return path

    def remove(self, key: str) -> int:
        """Silently drop one entry (eviction, not corruption) and return
        the bytes freed — 0 when the entry was already gone.

        Unlike :meth:`discard` this neither warns nor counts toward
        ``corrupt_entries``: eviction is the cache-budget policy of the
        serve layer doing its job, not damage.
        """
        path = self.path_for(key)
        try:
            size = os.path.getsize(path)
            os.remove(path)
        except OSError:
            return 0
        return size

    def discard(self, key: str, reason: str) -> None:
        """Drop one entry that decoded but failed deeper validation (the
        engine's payload check); counted and warned like any corruption."""
        self._quarantine(self.path_for(key), reason)

    def _quarantine(self, path: str, reason: str) -> None:
        """Count, warn about, and remove a damaged entry so the recompute
        path can overwrite it cleanly."""
        self.corrupt_entries += 1
        warnings.warn(
            f"discarding damaged cache entry {path}: {reason}; recomputing",
            CacheCorruptionWarning,
            stacklevel=3,
        )
        try:
            os.remove(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def _entry_paths(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield os.path.join(shard_dir, name)

    def stats(self) -> CacheStats:
        """Entry count, byte size, and per-model point counts."""
        stats = CacheStats(root=self.root)
        for path in self._entry_paths():
            try:
                size = os.path.getsize(path)
                with open(path, encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            stats.entries += 1
            stats.total_bytes += size
            model = entry.get("config", {}).get("model", "<unknown>")
            stats.by_model[model] = stats.by_model.get(model, 0) + 1
        return stats

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.  Safe to run
        while a sweep is in flight — in-flight points simply recompute."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.remove(path)
                removed += 1
            except FileNotFoundError:
                pass
        if os.path.isdir(self.root):
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                try:
                    os.rmdir(shard_dir)
                except OSError:
                    pass
        return removed
