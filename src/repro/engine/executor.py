"""The parallel sweep-execution engine.

One :class:`SweepEngine` turns a list of grid points (model, framework,
batch size) into :class:`~repro.core.suite.SweepPoint` results:

1. **Cache probe.**  Each point's content address
   (:func:`repro.engine.keys.point_key`) is looked up in the
   :class:`~repro.engine.cache.ResultCache`; hits skip execution
   entirely.
2. **Deterministic fan-out.**  Missing points are partitioned round-robin
   across ``jobs`` chunks and executed on a process pool.  Partitioning
   depends only on (grid order, jobs) — never on completion timing — and
   results are merged back in grid order, so a parallel run is
   byte-identical to a serial one (the simulated timebase does the rest).
3. **Degrade, never corrupt.**  A worker chunk that fails — or a pool
   that cannot start at all — is recomputed inline in the parent with a
   warning; a damaged cache entry is discarded and recomputed.  Every
   failure mode converges on the serial result.

All three result sources (cache, worker, inline) share one wire format
(:mod:`repro.engine.merge`), which is what the differential test harness
pins down.
"""

from __future__ import annotations

import concurrent.futures
import warnings
from dataclasses import dataclass

from repro.core.metrics import IterationMetrics
from repro.core.suite import SweepPoint
from repro.engine.cache import ResultCache
from repro.engine.keys import point_key
from repro.engine.merge import (
    merge_ordered,
    payload_to_point,
    point_to_payload,
)
from repro.hardware.devices import CPUSpec, GPUSpec, QUADRO_P4000, XEON_E5_2680
from repro.hardware.memory import OutOfMemoryError
from repro.models.registry import get_model
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.training.session import TrainingSession


class EngineWorkerWarning(UserWarning):
    """A worker chunk failed and its points were recomputed inline."""


@dataclass(frozen=True)
class PointSpec:
    """Grid coordinates of one sweep point.

    ``faults`` is an optional fault-scenario string
    (:func:`repro.faults.spec.parse_fault_spec` syntax); ``transforms``
    is an optional transform-pipeline string
    (:func:`repro.plan.pipeline.parse_transform_spec` syntax, e.g.
    ``"fused_rnn+fp16+offload:0.5"``); ``schedule`` is an optional
    batch-schedule string (:func:`repro.schedule.spec.parse_schedule_spec`
    syntax, e.g. ``"gns:ceiling=256"``), growing the batch from
    ``batch_size`` over the simulated run.  For all three, the empty
    string — the default — is the plain point, and its cache keys,
    payloads and exported records are byte-identical to what they were
    before the dimension existed; ``schedule="fixed"`` normalizes to the
    empty string and shares the plain point's bytes too.  A point cannot
    combine the dimensions: the fault trainer replays the untransformed
    plan, and a scheduled point's segment aggregation assumes the
    unmodified single-GPU session.
    """

    model: str
    framework: str
    batch_size: int
    faults: str = ""
    transforms: str = ""
    schedule: str = ""


@dataclass
class EngineStats:
    """Cumulative accounting over an engine's lifetime."""

    cache_hits: int = 0
    cache_misses: int = 0
    points_computed: int = 0
    worker_failures: int = 0
    corrupt_entries: int = 0


def grid_for(panels, batch_sizes=None) -> list:
    """Expand ``(model, (framework, ...))`` panels into grid order.

    ``batch_sizes`` overrides every model's sweep; by default each model
    contributes its paper sweep (``ModelSpec.batch_sizes``).
    """
    specs = []
    for model, frameworks in panels:
        sizes = (
            batch_sizes if batch_sizes is not None else get_model(model).batch_sizes
        )
        for framework in frameworks:
            for batch in sizes:
                specs.append(PointSpec(model, framework, int(batch)))
    return specs


# ----------------------------------------------------------------------
# point execution (runs in the parent *and* in pool workers)
# ----------------------------------------------------------------------


def _compute_payload(
    spec: PointSpec,
    gpu: GPUSpec,
    cpu: CPUSpec,
    check_memory: bool,
    sessions: dict | None = None,
    symbolic: bool = True,
) -> dict:
    """Simulate one grid point and return its wire-format payload.

    ``sessions`` lets a chunk reuse one :class:`TrainingSession` per
    (model, framework) across its batch sizes — with ``symbolic`` (the
    default) that session compiles symbolically once per guard region and
    every batch in the sweep is a cheap specialization.
    """
    if spec.faults:
        return _compute_faulted_payload(spec)
    key = (spec.model, spec.framework)
    session = sessions.get(key) if sessions is not None else None
    if session is None:
        session = TrainingSession(
            spec.model,
            spec.framework,
            gpu=gpu,
            cpu=cpu,
            check_memory=check_memory,
            symbolic=symbolic,
        )
        if sessions is not None:
            sessions[key] = session
    if getattr(spec, "transforms", ""):
        return _compute_transformed_payload(spec, session)
    if getattr(spec, "schedule", ""):
        from repro.schedule.spec import normalized_schedule

        schedule = normalized_schedule(spec.schedule)
        if schedule:
            return _compute_scheduled_payload(spec, session, schedule)
    try:
        profile = session.run_iteration(spec.batch_size)
    except OutOfMemoryError:
        return point_to_payload(SweepPoint(batch_size=spec.batch_size, oom=True))
    return point_to_payload(
        SweepPoint(
            batch_size=spec.batch_size,
            metrics=IterationMetrics.from_profile(
                profile, throughput_unit=session.spec.throughput_unit
            ),
        )
    )


def _compute_transformed_payload(spec: PointSpec, session: TrainingSession) -> dict:
    """Simulate one grid point under its transform pipeline.

    The session compiles (symbolically when possible) and the pipeline
    rewrites the specialized plan — trace once, specialize per batch,
    rewrite per pipeline, with every prefix memoized in the session's
    plan cache.  Memory is checked against the *transformed* plan: that
    is the whole point of the memory transforms (an offloaded point may
    fit where the baseline OOMs, and a deepened one may OOM where the
    baseline fits).
    """
    from repro.plan.pipeline import parse_transform_spec

    pipeline = parse_transform_spec(spec.transforms)
    try:
        plan = session.compile_transformed(spec.batch_size, pipeline)
        memory = None
        if session.check_memory:
            memory = plan.check_memory(session.gpu.memory_bytes)
    except OutOfMemoryError:
        return point_to_payload(SweepPoint(batch_size=spec.batch_size, oom=True))
    profile = session.execute_plan(
        plan, memory=memory, display_name=session.spec.display_name
    )
    return point_to_payload(
        SweepPoint(
            batch_size=spec.batch_size,
            metrics=IterationMetrics.from_profile(
                profile, throughput_unit=session.spec.throughput_unit
            ),
        )
    )


def _compute_scheduled_payload(
    spec: PointSpec, session: TrainingSession, schedule: str
) -> dict:
    """Simulate one grid point under an adaptive batch schedule.

    The schedule's segments come from the closed-form curve integrator;
    each *distinct* batch size costs one ``run_iteration`` — a cheap
    symbolic ``specialize(batch)`` after the session's one trace — and
    the point's metrics are the time-weighted aggregate over segments
    (throughput = total samples / total time, utilizations weighted by
    segment wall-clock).  ``batch_size`` stays the spec's base batch: it
    is the grid coordinate, not the (growing) realized batch.  Any
    segment whose batch no longer fits the GPU makes the whole point OOM,
    exactly like a fixed point at that batch.
    """
    from repro.schedule.integrator import integrate_schedule

    integration = integrate_schedule(spec.model, schedule, spec.batch_size)
    profiles = {}
    try:
        for batch in integration.batch_sizes:
            profiles[batch] = session.run_iteration(batch)
    except OutOfMemoryError:
        return point_to_payload(SweepPoint(batch_size=spec.batch_size, oom=True))
    total_time = 0.0
    total_steps = 0.0
    weighted = {"gpu": 0.0, "fp32": 0.0, "cpu": 0.0}
    for segment in integration.segments:
        if segment.samples == 0.0:
            continue
        profile = profiles[segment.batch_size]
        segment_time = segment.samples / profile.throughput
        total_time += segment_time
        total_steps += segment.steps
        weighted["gpu"] += profile.gpu_utilization * segment_time
        weighted["fp32"] += profile.fp32_utilization * segment_time
        weighted["cpu"] += profile.cpu_utilization * segment_time
    reference = profiles[integration.segments[0].batch_size]
    if total_time <= 0.0:
        metrics = IterationMetrics.from_profile(
            reference, throughput_unit=session.spec.throughput_unit
        )
    else:
        metrics = IterationMetrics(
            model=reference.model,
            framework=reference.framework,
            device=reference.device,
            batch_size=spec.batch_size,
            throughput=integration.total_samples / total_time,
            throughput_unit=session.spec.throughput_unit,
            gpu_utilization=weighted["gpu"] / total_time,
            fp32_utilization=weighted["fp32"] / total_time,
            cpu_utilization=weighted["cpu"] / total_time,
            iteration_time_s=total_time / total_steps,
        )
    return point_to_payload(
        SweepPoint(batch_size=spec.batch_size, metrics=metrics)
    )


def _compute_faulted_payload(spec: PointSpec) -> dict:
    """Simulate one grid point under its fault scenario.

    The scenario string supplies the cluster and run length; the run goes
    through :class:`~repro.faults.trainer.FaultTolerantTrainer` and the
    realized (degraded) averages become the point's metrics.  A scenario
    the recovery policies cannot survive raises
    :class:`~repro.faults.recovery.UnrecoverableFaultError` — a faulted
    grid is allowed to fail loudly, never to hang or cache a wrong
    number.
    """
    from repro.faults.spec import parse_fault_spec
    from repro.faults.trainer import FaultTolerantTrainer

    scenario = parse_fault_spec(spec.faults)
    try:
        trainer = FaultTolerantTrainer(
            spec.model,
            spec.framework,
            scenario.cluster,
            spec.batch_size,
            plan=scenario.plan,
        )
    except OutOfMemoryError:
        return point_to_payload(SweepPoint(batch_size=spec.batch_size, oom=True))
    result = trainer.run(steps=scenario.steps)
    return point_to_payload(
        SweepPoint(
            batch_size=spec.batch_size,
            metrics=trainer.iteration_metrics(result),
        )
    )


def _pool_worker(
    chunk, gpu: GPUSpec, cpu: CPUSpec, check_memory: bool, symbolic: bool = True
) -> list:
    """Execute one ``[(grid_index, PointSpec), ...]`` chunk in a worker
    process; returns ``[(grid_index, payload), ...]``."""
    sessions: dict = {}
    return [
        (index, _compute_payload(spec, gpu, cpu, check_memory, sessions, symbolic))
        for index, spec in chunk
    ]


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


class SweepEngine:
    """Executes experiment grids in parallel with content-addressed
    memoization.

    Args:
        jobs: worker processes; ``1`` executes inline (no pool).
        cache: a :class:`ResultCache`, a cache-directory path, or ``None``
            to disable memoization.
        gpu / cpu: the device pair every point runs on.
        check_memory: forwarded to :class:`TrainingSession`; when off,
            nothing can OOM (and the cache key is unaffected — memory
            checking changes *whether* a result exists, not its value,
            so cached metrics stay valid either way).
        symbolic: forwarded to :class:`TrainingSession`; the default
            compiles each (model, framework) symbolically once and
            specializes per batch.  Results are bit-identical either way
            (the differential harness proves it), so the cache key is
            unaffected.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        gpu: GPUSpec = QUADRO_P4000,
        cpu: CPUSpec = XEON_E5_2680,
        check_memory: bool = True,
        symbolic: bool = True,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = ResultCache(cache) if isinstance(cache, str) else cache
        self.gpu = gpu
        self.cpu = cpu
        self.check_memory = check_memory
        self.symbolic = symbolic
        self._stats = EngineStats()

    @property
    def stats(self) -> EngineStats:
        """Cumulative hit/miss/compute accounting (cache damage included)."""
        if self.cache is not None:
            self._stats.corrupt_entries = self.cache.corrupt_entries
        return self._stats

    # ------------------------------------------------------------------
    # grid execution
    # ------------------------------------------------------------------

    def _validate_specs(self, specs) -> None:
        """Fail fast on any malformed spec, before any point computes or
        any cache entry is touched."""
        for spec in specs:
            model = get_model(spec.model)
            if not model.supports(spec.framework):
                raise ValueError(
                    f"the paper has no {spec.framework} implementation of "
                    f"{model.display_name} (available: {model.frameworks})"
                )
            if spec.faults:
                from repro.faults.spec import parse_fault_spec

                parse_fault_spec(spec.faults)
            transforms = getattr(spec, "transforms", "")
            if transforms:
                if spec.faults:
                    raise ValueError(
                        f"a point cannot combine faults and transforms "
                        f"(got faults={spec.faults!r}, "
                        f"transforms={transforms!r}): the fault trainer "
                        f"replays the untransformed plan"
                    )
                from repro.plan.pipeline import parse_transform_spec

                parse_transform_spec(transforms)
            schedule = getattr(spec, "schedule", "")
            if schedule:
                from repro.schedule.spec import normalized_schedule
                from repro.training.convergence import FIG2_MODELS

                if normalized_schedule(schedule):
                    if spec.faults:
                        raise ValueError(
                            f"a point cannot combine faults and an adaptive "
                            f"schedule (got faults={spec.faults!r}, "
                            f"schedule={schedule!r}): compose them through "
                            f"scheduled_time_to_accuracy instead"
                        )
                    if transforms:
                        raise ValueError(
                            f"a point cannot combine transforms and an "
                            f"adaptive schedule (got "
                            f"transforms={transforms!r}, "
                            f"schedule={schedule!r})"
                        )
                    if spec.model not in FIG2_MODELS:
                        known = ", ".join(sorted(FIG2_MODELS))
                        raise ValueError(
                            f"adaptive schedules integrate against a "
                            f"convergence curve, and {spec.model!r} has "
                            f"none (models with curves: {known})"
                        )

    def _key_for(self, spec: PointSpec) -> str:
        """Content-address of one point under this engine's devices."""
        schedule = getattr(spec, "schedule", "")
        if schedule:
            from repro.schedule.spec import normalized_schedule

            schedule = normalized_schedule(schedule)
        return point_key(
            spec.model,
            spec.framework,
            spec.batch_size,
            gpu=self.gpu,
            cpu=self.cpu,
            faults=spec.faults,
            transforms=getattr(spec, "transforms", ""),
            schedule=schedule,
        )

    def _config_for(self, spec: PointSpec) -> dict:
        """Human-readable entry metadata stored alongside a payload."""
        config = {
            "model": spec.model,
            "framework": spec.framework,
            "batch_size": spec.batch_size,
            "gpu": self.gpu.name,
            "cpu": self.cpu.name,
        }
        if spec.faults:
            config["faults"] = spec.faults
        if getattr(spec, "transforms", ""):
            config["transforms"] = spec.transforms
        if getattr(spec, "schedule", ""):
            from repro.schedule.spec import normalized_schedule

            schedule = normalized_schedule(spec.schedule)
            if schedule:
                config["schedule"] = schedule
        return config

    def _load_cached(self, key: str) -> dict | None:
        """Cache probe for one key; a decoded-but-invalid payload is
        discarded (counted as damage) and reported as a miss."""
        payload = self.cache.load(key)
        if payload is not None:
            try:
                payload_to_point(payload)
            except ValueError as exc:
                self.cache.discard(key, str(exc))
                payload = None
        return payload

    def run_grid(self, specs) -> list:
        """Execute every :class:`PointSpec`, in grid order, and return one
        :class:`~repro.core.suite.SweepPoint` per spec."""
        specs = list(specs)
        with trace_span(
            "engine.run_grid", jobs=self.jobs, points=len(specs)
        ) as grid_span:
            self._validate_specs(specs)
            results: list = []
            missing: list = []
            keys: list = [None] * len(specs)
            for index, spec in enumerate(specs):
                payload = None
                if self.cache is not None:
                    keys[index] = self._key_for(spec)
                    payload = self._load_cached(keys[index])
                if payload is not None:
                    self._stats.cache_hits += 1
                    get_metrics().counter("engine_cache_hits_total").inc()
                    self._record_point_span(spec, "cache")
                    results.append((index, payload))
                else:
                    if self.cache is not None:
                        self._stats.cache_misses += 1
                        get_metrics().counter("engine_cache_misses_total").inc()
                    missing.append((index, spec))

            computed = self._execute(missing)
            for index, payload in computed:
                if self.cache is not None:
                    self.cache.store(
                        keys[index], payload, config=self._config_for(specs[index])
                    )
            results.extend(computed)
            grid_span.set_attributes(
                cache_hits=len(specs) - len(missing), computed=len(missing)
            )
        return [payload_to_point(payload) for payload in merge_ordered(len(specs), results)]

    def iter_grid(self, specs):
        """Lazily execute a grid, yielding ``(index, spec, SweepPoint)``
        in grid order as each point completes.

        This is the streaming path of the serve layer: a consumer sees
        partial results the moment each point lands instead of waiting
        for the whole grid.  Points compute inline in this process (no
        pool — a streaming consumer wants the first result early, not
        batch throughput), reuse one session dict across the grid like a
        pool worker chunk does, and read/write the same content-addressed
        cache as :meth:`run_grid`, so interleaving the two paths is
        byte-identical to running either alone.
        """
        specs = list(specs)
        with trace_span(
            "engine.iter_grid", points=len(specs)
        ) as grid_span:
            self._validate_specs(specs)
            sessions: dict = {}
            computed = 0
            for index, spec in enumerate(specs):
                payload = None
                key = None
                if self.cache is not None:
                    key = self._key_for(spec)
                    payload = self._load_cached(key)
                if payload is not None:
                    self._stats.cache_hits += 1
                    get_metrics().counter("engine_cache_hits_total").inc()
                    self._record_point_span(spec, "cache")
                else:
                    if self.cache is not None:
                        self._stats.cache_misses += 1
                        get_metrics().counter("engine_cache_misses_total").inc()
                    ((_, payload),) = self._compute_inline(
                        [(index, spec)], sessions=sessions
                    )
                    computed += 1
                    if self.cache is not None:
                        self.cache.store(
                            key, payload, config=self._config_for(spec)
                        )
                grid_span.set_attributes(
                    cache_hits=index + 1 - computed, computed=computed
                )
                yield index, spec, payload_to_point(payload)

    def _execute(self, missing) -> list:
        """Compute every missing ``(index, spec)`` pair; any-order output."""
        if not missing:
            return []
        if self.jobs == 1 or len(missing) == 1:
            return self._compute_inline(missing)
        chunks = [missing[offset :: self.jobs] for offset in range(self.jobs)]
        chunks = [chunk for chunk in chunks if chunk]
        try:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=len(chunks)
            )
        except (OSError, ValueError) as exc:
            self._warn_degraded(f"process pool unavailable ({exc})")
            return self._compute_inline(missing)
        spec_by_index = dict(missing)
        results: list = []
        with executor:
            futures = {
                executor.submit(
                    _pool_worker,
                    chunk,
                    self.gpu,
                    self.cpu,
                    self.check_memory,
                    self.symbolic,
                ): chunk
                for chunk in chunks
            }
            for future in concurrent.futures.as_completed(futures):
                chunk = futures[future]
                try:
                    chunk_results = future.result()
                except Exception as exc:  # worker died or raised
                    self._warn_degraded(
                        f"worker chunk of {len(chunk)} point(s) failed "
                        f"({type(exc).__name__}: {exc})"
                    )
                    chunk_results = self._compute_inline(chunk)
                else:
                    for index, _payload in chunk_results:
                        self._record_point_span(
                            spec_by_index[index], "worker", index=index
                        )
                    self._count_computed(len(chunk_results), "worker")
                results.extend(chunk_results)
        return results

    def _compute_inline(self, items, sessions=None) -> list:
        """Serial fallback/primary path, executed in this process.

        ``sessions`` lets a streaming caller (:meth:`iter_grid`) reuse
        compiled sessions across single-point calls, matching the
        session reuse a batch chunk gets for free.
        """
        if sessions is None:
            sessions = {}
        results = []
        for index, spec in items:
            with trace_span(
                "engine.point",
                model=spec.model,
                framework=spec.framework,
                batch_size=spec.batch_size,
                source="inline",
            ):
                results.append(
                    (
                        index,
                        _compute_payload(
                            spec,
                            self.gpu,
                            self.cpu,
                            self.check_memory,
                            sessions,
                            self.symbolic,
                        ),
                    )
                )
        self._count_computed(len(items), "inline")
        return results

    def _record_point_span(self, spec: PointSpec, source: str, index=None) -> None:
        """Zero-width marker span for points not simulated in-process
        (cache hits, pool results) so traces still show the full grid."""
        span = trace_span(
            "engine.point",
            model=spec.model,
            framework=spec.framework,
            batch_size=spec.batch_size,
            source=source,
        )
        with span:
            if index is not None:
                span.set_attribute("grid_index", index)

    def _count_computed(self, count: int, source: str) -> None:
        if not count:
            return
        self._stats.points_computed += count
        get_metrics().counter(
            "engine_points_computed_total", {"source": source}
        ).inc(count)

    def _warn_degraded(self, reason: str) -> None:
        self._stats.worker_failures += 1
        get_metrics().counter("engine_worker_failures_total").inc()
        warnings.warn(
            f"sweep engine degraded to inline execution: {reason}",
            EngineWorkerWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # suite-shaped conveniences
    # ------------------------------------------------------------------

    def sweep(
        self,
        model: str,
        framework: str,
        batch_sizes=None,
        faults: str = "",
        transforms: str = "",
        schedule: str = "",
    ) -> list:
        """Engine-backed equivalent of :meth:`TBDSuite.sweep`.

        ``faults`` runs every point of the sweep under one fault
        scenario; ``transforms`` runs every point under one transform
        pipeline; ``schedule`` grows each point's batch from its grid
        ``batch_size`` over the simulated run (each cached as its own
        grid dimension, mutually exclusive).  The default empty strings
        are the plain sweep, byte-identical to before any dimension
        existed.
        """
        spec = get_model(model)
        sizes = batch_sizes if batch_sizes is not None else spec.batch_sizes
        return self.run_grid(
            [
                PointSpec(
                    spec.key,
                    framework,
                    int(batch),
                    faults,
                    transforms,
                    schedule,
                )
                for batch in sizes
            ]
        )

    def run(self, model: str, framework: str, batch_size: int | None = None):
        """Engine-backed equivalent of :meth:`TBDSuite.run`.

        Raises:
            OutOfMemoryError: mirroring the suite's contract for single
                runs (sweeps record OOM points instead).
        """
        spec = get_model(model)
        batch = batch_size if batch_size is not None else spec.reference_batch
        (point,) = self.run_grid([PointSpec(spec.key, framework, int(batch))])
        if point.oom:
            raise OutOfMemoryError(
                f"{spec.key} on {framework} at batch {batch} exceeds "
                f"{self.gpu.name} memory"
            )
        return point.metrics
