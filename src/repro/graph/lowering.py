"""Layer constructors: lower each DNN layer family to kernel sequences.

Every function returns a fully-populated :class:`~repro.graph.layer.Layer`
whose kernel lists reflect how the 2017-era frameworks actually executed the
layer (e.g. a ``dynamic_rnn``-style LSTM launches one small GEMM plus one
pointwise kernel per timestep — the mechanism behind the paper's RNN
utilization findings).
"""

from __future__ import annotations

from dataclasses import replace

from repro.graph.layer import Layer
import repro.kernels.attention as attention_kernels
import repro.kernels.elementwise as ew
import repro.kernels.misc as misc
import repro.kernels.norm as norm
import repro.kernels.rnn as rnn
from repro.kernels.conv import (
    ConvShape,
    conv2d_backward_data,
    conv2d_backward_filter,
    conv2d_forward,
    conv_workspace_bytes,
)
from repro.kernels.gemm import gemm


def conv_layer(
    name: str,
    shape: ConvShape,
    bias: bool = False,
    algorithm: str | None = None,
    first_layer: bool = False,
) -> Layer:
    """2-D convolution with training-time backward passes.

    ``first_layer`` skips the backward-data kernel (no gradient flows into
    the input images).
    """
    forward = [conv2d_forward(shape, algorithm)]
    if bias:
        forward.append(ew.bias_add(shape.output_elements))
    backward = [conv2d_backward_filter(shape, algorithm)]
    if not first_layer:
        backward.append(conv2d_backward_data(shape, algorithm))
    if bias:
        backward.append(
            ew.elementwise(
                shape.output_elements,
                flops_per_element=1.0,
                name="bias_grad_reduce_kernel",
            )
        )
    return Layer(
        name=name,
        kind="conv",
        weight_elements=shape.weight_elements + (shape.out_channels if bias else 0),
        output_elements=shape.output_elements,
        workspace_bytes=conv_workspace_bytes(shape, algorithm),
        forward_kernels=forward,
        backward_kernels=backward,
    )


def batchnorm_layer(name: str, elements: int, channels: int) -> Layer:
    """Batch normalization (scale + shift parameters per channel).

    The stash is half the map: frameworks recycle roughly every other BN
    output buffer once the downstream (in-place) activation has consumed it.
    """
    return Layer(
        name=name,
        kind="batchnorm",
        weight_elements=2 * channels,
        output_elements=elements // 2,
        forward_kernels=[norm.batchnorm_forward(elements, channels)],
        backward_kernels=[norm.batchnorm_backward(elements, channels)],
    )


def layernorm_layer(name: str, elements: int, features: int) -> Layer:
    """Layer normalization (Transformer blocks)."""
    return Layer(
        name=name,
        kind="layernorm",
        weight_elements=2 * features,
        output_elements=elements,
        forward_kernels=[norm.layernorm_forward(elements)],
        backward_kernels=[norm.layernorm_backward(elements)],
    )


def activation_layer(name: str, elements: int, kind: str = "relu") -> Layer:
    """Pointwise nonlinearity (executed in place, as the frameworks do)."""
    return Layer(
        name=name,
        kind="activation",
        output_elements=elements,
        forward_kernels=[ew.activation_forward(elements, kind)],
        backward_kernels=[ew.activation_backward(elements, kind)],
        inplace=True,
    )


def pool_layer(name: str, in_elements: int, out_elements: int, window: int = 9) -> Layer:
    """Max/average pooling."""
    return Layer(
        name=name,
        kind="pooling",
        output_elements=out_elements,
        forward_kernels=[ew.pooling_forward(in_elements, out_elements, window)],
        backward_kernels=[ew.pooling_backward(in_elements, out_elements, window)],
    )


def dropout_layer(name: str, elements: int) -> Layer:
    """Dropout (stashes its mask alongside the output)."""
    return Layer(
        name=name,
        kind="dropout",
        output_elements=2 * elements,  # output + mask
        forward_kernels=[ew.dropout(elements)],
        backward_kernels=[
            ew.elementwise(elements, reads=2, name="dropout_bw_kernel")
        ],
    )


def residual_add_layer(name: str, elements: int) -> Layer:
    """Residual shortcut addition (ResNet / Transformer), in place."""
    return Layer(
        name=name,
        kind="elementwise",
        output_elements=elements,
        inplace=True,
        forward_kernels=[
            ew.elementwise(elements, reads=2, name="residual_add_kernel")
        ],
        backward_kernels=[
            ew.elementwise(elements, reads=1, writes=2, name="residual_add_bw_kernel")
        ],
    )


def dense_layer(
    name: str, batch: int, in_features: int, out_features: int, bias: bool = True
) -> Layer:
    """Fully-connected layer: one forward GEMM, two backward GEMMs."""
    out_elements = batch * out_features
    forward = [gemm(batch, out_features, in_features)]
    if bias:
        forward.append(ew.bias_add(out_elements, name="bias_add_1d_kernel"))
    backward = [
        gemm(batch, in_features, out_features, name="sgemm_dgrad"),  # dX = dY @ W^T
        gemm(in_features, out_features, batch, name="sgemm_wgrad"),  # dW = X^T @ dY
    ]
    weights = in_features * out_features + (out_features if bias else 0)
    return Layer(
        name=name,
        kind="dense",
        weight_elements=weights,
        output_elements=out_elements,
        forward_kernels=forward,
        backward_kernels=backward,
    )


def embedding_layer(name: str, tokens: int, vocab: int, embed_dim: int) -> Layer:
    """Token embedding table."""
    return Layer(
        name=name,
        kind="embedding",
        weight_elements=vocab * embed_dim,
        output_elements=tokens * embed_dim,
        forward_kernels=[misc.embedding_lookup(tokens, embed_dim)],
        backward_kernels=[misc.embedding_lookup(tokens, embed_dim, backward=True)],
    )


def _recurrent_layer(
    name: str,
    kind: str,
    batch: int,
    seq_len: int,
    input_size: int,
    hidden: int,
    gates: int,
    pointwise_factory,
    bidirectional: bool = False,
    stepwise_host_sync: bool = False,
) -> Layer:
    """Shared lowering for LSTM/GRU/vanilla-RNN layers.

    Matches the ``dynamic_rnn`` execution style of the paper's NMT/Sockeye
    implementations: per timestep, one GEMM over the concatenated
    ``[input, hidden]`` vector producing all gate pre-activations, plus one
    pointwise cell-update kernel.  Backward mirrors it with transposed GEMMs
    (dgrad + wgrad) and the backward pointwise kernel.  ``seq_len`` small
    GEMMs per direction per pass are what keep these layers launch-bound.
    """
    if seq_len <= 0:
        raise ValueError("sequence length must be positive")
    directions = 2 if bidirectional else 1
    k_dim = input_size + hidden
    forward: list = []
    backward: list = []
    for _direction in range(directions):
        for _step in range(seq_len):
            forward.append(gemm(batch, gates * hidden, k_dim, name="rnn_step_sgemm"))
            step_fw = pointwise_factory(batch, hidden, backward=False)
            step_bw = pointwise_factory(batch, hidden, backward=True)
            if stepwise_host_sync:
                # dynamic_rnn-style loops re-enter host control flow after
                # every cell update, forward and backward.
                step_fw = replace(step_fw, host_sync=True)
                step_bw = replace(step_bw, host_sync=True)
            forward.append(step_fw)
            backward.append(step_bw)
            backward.append(
                gemm(batch, k_dim, gates * hidden, name="rnn_step_sgemm_dgrad")
            )
            backward.append(
                gemm(k_dim, gates * hidden, batch, name="rnn_step_sgemm_wgrad")
            )
    weights = directions * (k_dim * gates * hidden + gates * hidden)
    # Stash per step: the concatenated [input, hidden] GEMM operand, gate
    # values both before and after their nonlinearities, and the cell/state
    # intermediates (new cell, tanh(cell), hidden, masks) — unfused cells
    # keep all of them live for backward.
    stash_per_step = k_dim + 2 * gates * hidden + 6 * hidden
    output_elements = directions * seq_len * batch * stash_per_step
    return Layer(
        name=name,
        kind=kind,
        weight_elements=weights,
        output_elements=output_elements,
        forward_kernels=forward,
        backward_kernels=backward,
        attributes={
            "batch": batch,
            "seq_len": seq_len,
            "input_size": input_size,
            "hidden": hidden,
            "gates": gates,
            "directions": directions,
        },
    )


def lstm_layer(
    name: str,
    batch: int,
    seq_len: int,
    input_size: int,
    hidden: int,
    bidirectional: bool = False,
) -> Layer:
    """LSTM layer (4 gates)."""
    return _recurrent_layer(
        name,
        "lstm",
        batch,
        seq_len,
        input_size,
        hidden,
        gates=4,
        pointwise_factory=rnn.lstm_cell_pointwise,
        bidirectional=bidirectional,
        stepwise_host_sync=True,
    )


def gru_layer(
    name: str,
    batch: int,
    seq_len: int,
    input_size: int,
    hidden: int,
    bidirectional: bool = False,
) -> Layer:
    """GRU layer (3 gates)."""
    return _recurrent_layer(
        name,
        "gru",
        batch,
        seq_len,
        input_size,
        hidden,
        gates=3,
        pointwise_factory=rnn.gru_cell_pointwise,
        bidirectional=bidirectional,
        stepwise_host_sync=True,
    )


def vanilla_rnn_layer(
    name: str,
    batch: int,
    seq_len: int,
    input_size: int,
    hidden: int,
    bidirectional: bool = False,
) -> Layer:
    """Plain tanh/ReLU recurrent layer (Deep Speech 2 style)."""
    return _recurrent_layer(
        name,
        "rnn",
        batch,
        seq_len,
        input_size,
        hidden,
        gates=1,
        pointwise_factory=rnn.vanilla_rnn_pointwise,
        bidirectional=bidirectional,
    )


def attention_layer(
    name: str,
    batch: int,
    heads: int,
    seq_q: int,
    seq_k: int,
    model_dim: int,
) -> Layer:
    """Multi-head scaled dot-product attention block (projections included).

    Lowered to four large projection GEMMs plus two *batched* GEMMs and a
    fused softmax — large launches, hence the high GPU utilization the paper
    observes for the Transformer.
    """
    if model_dim % heads != 0:
        raise ValueError(f"model_dim {model_dim} not divisible by heads {heads}")
    head_dim = model_dim // heads
    batch_heads = batch * heads
    tokens_q = batch * seq_q
    tokens_k = batch * seq_k
    forward = [
        gemm(tokens_q, model_dim, model_dim, name="attention_q_proj_sgemm"),
        gemm(tokens_k, model_dim, model_dim, name="attention_k_proj_sgemm"),
        gemm(tokens_k, model_dim, model_dim, name="attention_v_proj_sgemm"),
        attention_kernels.attention_scores(batch_heads, seq_q, seq_k, head_dim),
        attention_kernels.attention_softmax(batch_heads, seq_q, seq_k),
        attention_kernels.attention_context(batch_heads, seq_q, seq_k, head_dim),
        gemm(tokens_q, model_dim, model_dim, name="attention_out_proj_sgemm"),
    ]
    backward = [
        gemm(tokens_q, model_dim, model_dim, name="attention_out_proj_sgemm_bw").scaled(
            2.0
        ),
        attention_kernels.attention_context(
            batch_heads, seq_q, seq_k, head_dim, backward=True
        ),
        attention_kernels.attention_softmax(batch_heads, seq_q, seq_k),
        attention_kernels.attention_scores(
            batch_heads, seq_q, seq_k, head_dim, backward=True
        ),
        gemm(tokens_q, model_dim, model_dim, name="attention_q_proj_sgemm_bw").scaled(
            2.0
        ),
        gemm(tokens_k, model_dim, model_dim, name="attention_k_proj_sgemm_bw").scaled(
            2.0
        ),
        gemm(tokens_k, model_dim, model_dim, name="attention_v_proj_sgemm_bw").scaled(
            2.0
        ),
    ]
    weights = 4 * model_dim * model_dim
    # Stash: Q, K, V, scores, softmax, context.
    output_elements = (
        (tokens_q + 2 * tokens_k) * model_dim
        + 2 * batch_heads * seq_q * seq_k
        + tokens_q * model_dim
    )
    return Layer(
        name=name,
        kind="attention",
        weight_elements=weights,
        output_elements=output_elements,
        forward_kernels=forward,
        backward_kernels=backward,
    )


def feedforward_layer(
    name: str, tokens: int, model_dim: int, inner_dim: int
) -> Layer:
    """Transformer position-wise feed-forward (two GEMMs + ReLU)."""
    forward = [
        gemm(tokens, inner_dim, model_dim, name="ffn_sgemm_1"),
        ew.activation_forward(tokens * inner_dim, "relu"),
        gemm(tokens, model_dim, inner_dim, name="ffn_sgemm_2"),
    ]
    backward = [
        gemm(tokens, inner_dim, model_dim, name="ffn_sgemm_2_bw").scaled(2.0),
        ew.activation_backward(tokens * inner_dim, "relu"),
        gemm(tokens, model_dim, inner_dim, name="ffn_sgemm_1_bw").scaled(2.0),
    ]
    return Layer(
        name=name,
        kind="feedforward",
        weight_elements=2 * model_dim * inner_dim + model_dim + inner_dim,
        output_elements=tokens * (inner_dim + model_dim),
        forward_kernels=forward,
        backward_kernels=backward,
    )


def softmax_cross_entropy_kernels(batch: int, classes: int) -> list:
    """Loss kernels appended to a graph's ``extra_kernels``."""
    return [
        misc.cross_entropy_loss(batch, classes),
        misc.cross_entropy_loss(batch, classes, backward=True),
    ]


def ctc_loss_kernels(batch: int, time_steps: int, labels: int, vocab: int) -> list:
    """CTC loss kernels (Deep Speech 2)."""
    return [
        misc.ctc_loss(batch, time_steps, labels, vocab),
        misc.ctc_loss(batch, time_steps, labels, vocab),  # beta/backward pass
    ]
