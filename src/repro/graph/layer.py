"""The :class:`Layer` record and :class:`LayerGraph` container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels.base import Kernel

_FP32_BYTES = 4


@dataclass
class Layer:
    """One layer instance of a model, fully lowered.

    Attributes:
        name: unique layer name within its graph (``conv1``, ``res2a_bn``…).
        kind: layer family (``conv``, ``dense``, ``batchnorm``, ``lstm``…).
        weight_elements: trainable parameters in this layer.
        output_elements: feature-map values this layer produces per
            iteration (mini-batch included) and must stash for backward.
        workspace_bytes: scratch memory its kernels request.
        forward_kernels / backward_kernels: lowered kernel sequences.  The
            backward list is *already* in execution order for the backward
            pass of this single layer; :class:`LayerGraph` reverses layer
            order, not kernel order.
    """

    name: str
    kind: str
    weight_elements: int = 0
    output_elements: int = 0
    workspace_bytes: float = 0.0
    forward_kernels: list = field(default_factory=list)
    backward_kernels: list = field(default_factory=list)
    #: In-place layers (ReLU, residual adds) overwrite their input buffer;
    #: they produce output elements but allocate no new stash.
    inplace: bool = False
    #: Free-form structural metadata (recurrent geometry, conv shapes…) for
    #: graph transformations like the fused-RNN rewrite.
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.weight_elements < 0 or self.output_elements < 0:
            raise ValueError(f"layer {self.name!r} has negative sizes")
        if self.workspace_bytes < 0:
            raise ValueError(f"layer {self.name!r} has negative workspace")

    @property
    def weight_bytes(self) -> float:
        return self.weight_elements * _FP32_BYTES

    @property
    def output_bytes(self) -> float:
        return self.output_elements * _FP32_BYTES

    @property
    def stash_bytes(self) -> float:
        """Feature-map bytes this layer adds to the training footprint."""
        return 0.0 if self.inplace else self.output_bytes

    @property
    def flops(self) -> float:
        """Total FLOPs of one training iteration through this layer."""
        return sum(k.flops for k in self.forward_kernels) + sum(
            k.flops for k in self.backward_kernels
        )

    @property
    def kernel_count(self) -> int:
        return len(self.forward_kernels) + len(self.backward_kernels)


@dataclass
class LayerGraph:
    """An ordered, lowered model graph for one mini-batch size.

    This is the unit the training session executes.  ``input_bytes`` is the
    host-side size of one mini-batch (drives the H2D copy and the data
    pipeline); ``extra_kernels`` carries loss and auxiliary kernels that
    belong to the iteration but to no single layer.
    """

    model_name: str
    batch_size: int
    layers: list = field(default_factory=list)
    input_bytes: float = 0.0
    extra_kernels: list = field(default_factory=list)
    #: Optional per-iteration samples count when it differs from batch_size
    #: (e.g. speech models report seconds of audio; RL reports frames).
    samples_per_iteration: float | None = None
    #: Implementation-level feature-map over-allocation: bucketed RNN
    #: executors size their activation pools for the largest bucket, padded
    #: speech batches for the longest utterance.  1.0 = exact.
    feature_map_overallocation: float = 1.0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch size must be positive")
        names = [layer.name for layer in self.layers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate layer names in {self.model_name}: {sorted(duplicates)}"
            )

    @property
    def effective_samples(self) -> float:
        """Samples credited to one iteration for throughput accounting."""
        if self.samples_per_iteration is not None:
            return self.samples_per_iteration
        return float(self.batch_size)

    @property
    def total_weight_elements(self) -> int:
        return sum(layer.weight_elements for layer in self.layers)

    @property
    def total_weight_bytes(self) -> float:
        return self.total_weight_elements * _FP32_BYTES

    @property
    def total_feature_map_bytes(self) -> float:
        return sum(layer.stash_bytes for layer in self.layers)

    @property
    def total_workspace_bytes(self) -> float:
        return sum(layer.workspace_bytes for layer in self.layers)

    @property
    def layer_count(self) -> int:
        return len(self.layers)

    def add(self, layer: Layer) -> "LayerGraph":
        """Append a layer (fluent)."""
        if any(existing.name == layer.name for existing in self.layers):
            raise ValueError(f"duplicate layer name {layer.name!r}")
        self.layers.append(layer)
        return self

    def iteration_kernels(self) -> list:
        """All kernels of one training iteration, in execution order:
        forward pass, then backward pass in reverse layer order, then any
        extra (loss/auxiliary) kernels interleaved at the boundary."""
        kernels: list = []
        for layer in self.layers:
            kernels.extend(layer.forward_kernels)
        kernels.extend(self.extra_kernels)
        for layer in reversed(self.layers):
            kernels.extend(layer.backward_kernels)
        return kernels

    def iteration_flops(self) -> float:
        """FLOPs of one full training iteration."""
        return sum(k.flops for k in self.iteration_kernels())

    def dominant_layer_kind(self) -> str:
        """Layer family contributing the most FLOPs (Table 2's
        'Dominant Layer' column)."""
        totals: dict = {}
        for layer in self.layers:
            totals[layer.kind] = totals.get(layer.kind, 0.0) + layer.flops
        if not totals:
            return "none"
        return max(totals.items(), key=lambda item: item[1])[0]
