"""Graph linting: structural well-formedness checks for layer graphs.

Model definitions are data; like any data they rot.  ``lint_graph`` runs
every invariant a valid training graph must satisfy and returns the
violations — the model tests run it over the whole zoo (including
extensions) at several batch sizes, so a malformed layer can never ship.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.layer import LayerGraph

_RECURRENT_KINDS = ("lstm", "gru", "rnn")
_REQUIRED_RECURRENT_ATTRS = (
    "batch",
    "seq_len",
    "input_size",
    "hidden",
    "gates",
    "directions",
)


@dataclass(frozen=True)
class LintFinding:
    """One violated invariant."""

    layer: str
    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.layer}: {self.rule} ({self.detail})"


def lint_graph(graph: LayerGraph) -> list:
    """Check every structural invariant; returns the findings (empty = ok)."""
    findings: list = []

    if graph.layer_count == 0:
        findings.append(LintFinding("<graph>", "empty graph", graph.model_name))
    if graph.iteration_flops() <= 0:
        findings.append(
            LintFinding("<graph>", "no computation", "iteration FLOPs are zero")
        )
    if graph.input_bytes < 0:
        findings.append(LintFinding("<graph>", "negative input bytes", ""))
    if graph.feature_map_overallocation < 1.0:
        findings.append(
            LintFinding(
                "<graph>",
                "over-allocation below 1",
                str(graph.feature_map_overallocation),
            )
        )

    trainable_layers = 0
    for layer in graph.layers:
        if layer.weight_elements > 0:
            trainable_layers += 1
        if not layer.forward_kernels and not layer.inplace and layer.flops == 0:
            # A layer with no kernels must at least carry stash (pure
            # buffer layers like reorg are allowed kernels though).
            if layer.output_elements == 0:
                findings.append(
                    LintFinding(layer.name, "inert layer", "no kernels, no stash")
                )
        if layer.weight_elements > 0 and not layer.backward_kernels:
            findings.append(
                LintFinding(
                    layer.name,
                    "untrainable weights",
                    f"{layer.weight_elements} weights but no backward kernels",
                )
            )
        for kernel in list(layer.forward_kernels) + list(layer.backward_kernels):
            if kernel.flops < 0 or kernel.bytes_accessed < 0:
                findings.append(
                    LintFinding(layer.name, "negative kernel work", kernel.name)
                )
            if kernel.flops == 0 and kernel.bytes_accessed == 0:
                findings.append(
                    LintFinding(layer.name, "empty kernel", kernel.name)
                )
        if layer.kind in _RECURRENT_KINDS:
            missing = [
                key for key in _REQUIRED_RECURRENT_ATTRS if key not in layer.attributes
            ]
            if missing:
                findings.append(
                    LintFinding(
                        layer.name, "missing recurrent geometry", str(missing)
                    )
                )
            elif layer.attributes["batch"] != graph.batch_size and graph.samples_per_iteration is None:
                findings.append(
                    LintFinding(
                        layer.name,
                        "batch mismatch",
                        f"layer batch {layer.attributes['batch']} vs graph "
                        f"{graph.batch_size}",
                    )
                )
    if trainable_layers == 0:
        findings.append(
            LintFinding("<graph>", "no trainable layers", graph.model_name)
        )
    return findings


def assert_valid(graph: LayerGraph) -> None:
    """Raise ``ValueError`` listing every lint finding, if any."""
    findings = lint_graph(graph)
    if findings:
        details = "; ".join(str(finding) for finding in findings)
        raise ValueError(f"invalid graph {graph.model_name!r}: {details}")
