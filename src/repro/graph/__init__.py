"""Layer-graph intermediate representation.

Models (:mod:`repro.models`) are expressed as ordered :class:`Layer` lists;
each layer carries its parameter count, the feature-map elements it must
stash for the backward pass, its conv workspace demand, and the forward /
backward / update kernel sequences it lowers to.  The training session
(:mod:`repro.training`) executes those kernel sequences on a simulated
device.
"""

from repro.graph.layer import Layer, LayerGraph
from repro.graph import lowering

__all__ = ["Layer", "LayerGraph", "lowering"]
