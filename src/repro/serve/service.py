"""The asyncio benchmark server: sweep-as-a-service over `SweepEngine`.

:class:`BenchmarkServer` turns the one-shot engine into a long-running
multi-tenant service: tenants :meth:`~BenchmarkServer.submit` jobs, the
:class:`~repro.serve.admission.FairScheduler` bounds and orders the
queue, a pool of worker coroutines executes jobs through the engine's
streaming :meth:`~repro.engine.executor.SweepEngine.iter_grid`, and each
job's progress arrives as an ordered :class:`~repro.serve.jobs.JobEvent`
stream — consumable as an async iterator, drained as a result document,
or appended to a JSONL event log.

Coalescing: requests are content-addressed
(:meth:`~repro.serve.jobs.JobRequest.fingerprint`), so a submission
identical to one already queued or running — from *any* tenant — does
not execute again; the duplicate's handle replays the primary's event
stream live.  Together with the shared
:class:`~repro.serve.shardcache.ShardedResultCache` this gives two
dedup layers: in-flight (same job, same instant) and at-rest (same
point, any time).

Results served here are byte-identical to direct engine calls — the
server adds scheduling, never arithmetic — which the differential tests
and the ``serve-byte-identity`` conformance invariant both prove.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict

from repro.engine.executor import SweepEngine
from repro.engine.merge import grid_record
from repro.hardware.devices import get_gpu
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.serve.admission import (
    AdmissionConfig,
    FairScheduler,
    QueuedJob,
    ServerClosedError,
)
from repro.serve.jobs import DEFAULT_PRIORITY, JobEvent, JobRequest
from repro.serve.shardcache import ShardedResultCache


class _Execution:
    """One physical run of a request: the event log plus its followers.

    The primary handle and every coalesced duplicate subscribe here;
    events are buffered so a late subscriber replays the full history
    before tailing live ones.
    """

    def __init__(self, fingerprint: str):
        self.fingerprint = fingerprint
        self.events: list = []
        self.done = asyncio.Event()
        self._queues: list = []

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        self._queues.append(queue)
        return queue

    def publish(self, event: JobEvent) -> None:
        self.events.append(event)
        for queue in self._queues:
            queue.put_nowait(event)
        if event.terminal:
            self.done.set()


class JobHandle:
    """A tenant's view of one submitted job.

    ``async for event in handle.events()`` streams partial results;
    :meth:`result` waits for the terminal event and returns the final
    data document.  A coalesced handle streams the primary execution's
    events under its own job id.
    """

    def __init__(self, job_id: str, request: JobRequest, tenant: str,
                 priority: str, execution: _Execution, coalesced: bool):
        self.job_id = job_id
        self.request = request
        self.tenant = tenant
        self.priority = priority
        self.coalesced = coalesced
        self._execution = execution
        self._queue = execution.subscribe()

    def _localize(self, event: JobEvent) -> JobEvent:
        if event.job_id == self.job_id:
            return event
        return JobEvent(event.kind, self.job_id, event.seq, event.data)

    async def events(self):
        """Yield this job's events in order, ending on the terminal one."""
        while True:
            event = self._localize(await self._queue.get())
            yield event
            if event.terminal:
                return

    async def result(self) -> dict:
        """Wait for completion; the terminal event's data document.

        Raises:
            RuntimeError: when the job failed (terminal ``failed`` event).
        """
        await self._execution.done.wait()
        last = self._execution.events[-1]
        if last.kind == "failed":
            raise RuntimeError(
                f"job {self.job_id} failed: {last.data.get('error')}"
            )
        return last.data


class BenchmarkServer:
    """The multi-tenant async benchmark service.

    Args:
        cache_dir: root for the sharded result cache, or ``None`` to
            serve uncached (every job recomputes).
        shards / byte_budget: forwarded to
            :class:`~repro.serve.shardcache.ShardedResultCache`.
        workers: concurrent worker coroutines executing jobs.
        admission: queue bounds; defaults to
            :class:`~repro.serve.admission.AdmissionConfig` defaults.
        symbolic: forwarded to every engine the server builds.
        event_log: optional JSONL path appended with every event.

    Usage::

        async with BenchmarkServer(cache_dir) as server:
            handle = await server.submit(request, tenant="alice")
            async for event in handle.events():
                ...
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        shards: int = 8,
        byte_budget: int | None = None,
        workers: int = 2,
        admission: AdmissionConfig | None = None,
        symbolic: bool = True,
        event_log: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.cache = (
            ShardedResultCache(cache_dir, shards=shards, byte_budget=byte_budget)
            if cache_dir is not None
            else None
        )
        self.workers = workers
        self.symbolic = symbolic
        self.event_log = event_log
        self.scheduler = FairScheduler(admission or AdmissionConfig())
        self._engines: dict = {}
        self._condition: asyncio.Condition | None = None
        self._tasks: list = []
        self._active: OrderedDict = OrderedDict()  # fingerprint -> _Execution
        self._job_seq = 0
        self._running = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "BenchmarkServer":
        """Spawn the worker pool (idempotent)."""
        if self._condition is None:
            self._condition = asyncio.Condition()
        if not self._tasks:
            self._closed = False
            self._tasks = [
                asyncio.create_task(self._worker(index))
                for index in range(self.workers)
            ]
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting work; optionally finish the queue first.

        With ``drain`` (default) every queued job still executes; without
        it, queued jobs receive a terminal ``failed`` event with code
        ``server-stopped`` and only in-flight jobs finish.
        """
        self._closed = True
        assert self._condition is not None
        if drain:
            async with self._condition:
                await self._condition.wait_for(
                    lambda: len(self.scheduler) == 0 and self._running == 0
                )
        else:
            async with self._condition:
                while True:
                    job = self.scheduler.pick()
                    if job is None:
                        break
                    execution = job.payload["execution"]
                    self._emit(
                        execution,
                        JobEvent(
                            "failed",
                            job.job_id,
                            len(execution.events),
                            {"error": "server stopped", "code": "server-stopped"},
                        ),
                    )
                    self._active.pop(execution.fingerprint, None)
                    self.jobs_failed += 1
                await self._condition.wait_for(lambda: self._running == 0)
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    async def __aenter__(self) -> "BenchmarkServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    async def submit(
        self,
        request: JobRequest,
        tenant: str,
        priority: str = DEFAULT_PRIORITY,
    ) -> JobHandle:
        """Validate, admit, and enqueue one request.

        Raises:
            ValueError: malformed request (before any admission check).
            AdmissionError: typed rejection (queue full, tenant quota,
                unknown priority, server closed).
        """
        assert self._condition is not None, "server not started"
        request.validate()
        if self._closed:
            raise ServerClosedError("server is draining; submission refused")
        fingerprint = request.fingerprint()
        self._job_seq += 1
        job_id = f"job-{self._job_seq:06d}"
        async with self._condition:
            existing = self._active.get(fingerprint)
            if existing is not None:
                self.jobs_coalesced += 1
                get_metrics().counter("serve.jobs.coalesced").inc()
                return JobHandle(
                    job_id, request, tenant, priority, existing, coalesced=True
                )
            execution = _Execution(fingerprint)
            queued = QueuedJob(
                job_id=job_id,
                tenant=tenant,
                priority=priority,
                payload={"request": request, "execution": execution},
            )
            self.scheduler.admit(queued)  # raises typed AdmissionError
            self._active[fingerprint] = execution
            self.jobs_submitted += 1
            get_metrics().counter(
                "serve.jobs.submitted", {"priority": priority}
            ).inc()
            self._emit(
                execution,
                JobEvent(
                    "queued",
                    job_id,
                    0,
                    {
                        "kind": request.kind,
                        "tenant": tenant,
                        "priority": priority,
                        "fingerprint": fingerprint,
                    },
                ),
            )
            self._condition.notify_all()
            return JobHandle(
                job_id, request, tenant, priority, execution, coalesced=False
            )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _engine(self, gpu_name: str) -> SweepEngine:
        """One inline engine per GPU, all sharing the sharded cache."""
        if gpu_name not in self._engines:
            self._engines[gpu_name] = SweepEngine(
                jobs=1,
                cache=self.cache,
                gpu=get_gpu(gpu_name),
                symbolic=self.symbolic,
            )
        return self._engines[gpu_name]

    def _emit(self, execution: _Execution, event: JobEvent) -> None:
        execution.publish(event)
        if self.event_log:
            with open(self.event_log, "a", encoding="utf-8") as sink:
                sink.write(event.to_json() + "\n")

    async def _worker(self, index: int) -> None:
        assert self._condition is not None
        while True:
            async with self._condition:
                await self._condition.wait_for(
                    lambda: len(self.scheduler) > 0
                )
                job = self.scheduler.pick()
                if job is None:
                    continue
                self._running += 1
            try:
                await self._run_job(job)
            finally:
                async with self._condition:
                    self._running -= 1
                    self._active.pop(
                        job.payload["execution"].fingerprint, None
                    )
                    self._condition.notify_all()

    async def _run_job(self, job: QueuedJob) -> None:
        """Execute one admitted job, streaming per-point events."""
        request: JobRequest = job.payload["request"]
        execution: _Execution = job.payload["execution"]
        seq = len(execution.events)
        with trace_span(
            "serve.job",
            job_id=job.job_id,
            kind=request.kind,
            tenant=job.tenant,
            priority=job.priority,
        ) as span:
            self._emit(
                execution,
                JobEvent("started", job.job_id, seq, {"worker": job.job_id}),
            )
            seq += 1
            try:
                if request.kind == "tune":
                    data = self._run_tune(request)
                else:
                    data, seq = await self._stream_grid(
                        job, request, execution, seq
                    )
            except Exception as exc:
                self.jobs_failed += 1
                get_metrics().counter("serve.jobs.failed").inc()
                span.set_attribute("outcome", "failed")
                self._emit(
                    execution,
                    JobEvent(
                        "failed",
                        job.job_id,
                        seq,
                        {"error": f"{type(exc).__name__}: {exc}"},
                    ),
                )
                return
            self.jobs_completed += 1
            get_metrics().counter(
                "serve.jobs.completed", {"priority": job.priority}
            ).inc()
            span.set_attribute("outcome", "done")
            self._emit(execution, JobEvent("done", job.job_id, seq, data))

    async def _stream_grid(self, job, request, execution, seq):
        """Run the request's grid through the streaming engine path,
        emitting one ``point`` event per completed point."""
        engine = self._engine(request.gpu)
        specs = request.point_specs()
        records = []
        points = []
        for index, spec, point in engine.iter_grid(specs):
            record = grid_record(spec, point)
            records.append(record)
            points.append(point)
            self._emit(
                execution,
                JobEvent(
                    "point",
                    job.job_id,
                    seq,
                    {"index": index, "total": len(specs), "record": record},
                ),
            )
            seq += 1
            # Yield the loop between points so submitters and event
            # consumers interleave with a long-running grid.
            await asyncio.sleep(0)
        data = {"kind": request.kind, "records": records}
        if request.kind == "conformance":
            data["conformance"] = self._check_sweep(request, specs, points)
        return data, seq

    def _check_sweep(self, request, specs, points) -> dict:
        """Sweep-scope invariant verdict for a conformance job."""
        from repro.conformance.invariants import (
            SweepEvidence,
            invariant_registry,
        )

        evidence = SweepEvidence(
            model=request.model,
            framework=request.framework,
            gpu_name=get_gpu(request.gpu).name,
            batch_sizes=[spec.batch_size for spec in specs],
            points=list(points),
            faults=request.faults,
        )
        violations = {}
        for invariant in invariant_registry(scope="sweep"):
            messages = invariant.check(evidence)
            if messages:
                violations[invariant.name] = messages
        return {
            "checked": len(invariant_registry(scope="sweep")),
            "violations": violations,
            "ok": not violations,
        }

    def _run_tune(self, request) -> dict:
        """Cost-model autotuner ranking (no A/B) for a tune job."""
        from repro.tune.search import Autotuner

        tuner = Autotuner(
            request.model,
            request.framework,
            batch_size=request.resolved_batches()[0],
        )
        result = tuner.rank(budget=request.budget)
        return {"kind": "tune", "tune": result.to_doc()}

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """One status-endpoint snapshot (queue, jobs, cache)."""
        return {
            "closed": self._closed,
            "workers": self.workers,
            "running": self._running,
            "queue": self.scheduler.snapshot(),
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "coalesced": self.jobs_coalesced,
            },
            "cache": self.cache.stats() if self.cache is not None else None,
        }


__all__ = ["BenchmarkServer", "JobHandle"]
