"""Admission control and fair scheduling for the benchmark service.

Two cooperating pieces, both synchronous and lock-free by design (the
server serializes access under its own asyncio lock; the load generator
drives them directly on a simulated clock):

- admission: a submission is rejected *typed* — :class:`QueueFullError`
  when the global queue depth bound is hit, :class:`TenantQuotaError`
  when one tenant holds its per-tenant share, :class:`UnknownPriorityError`
  for a class outside :data:`repro.serve.jobs.PRIORITIES` — so clients
  can distinguish "back off" from "you are the problem" from "fix your
  request".
- scheduling: a smooth weighted round-robin across priority classes
  (the nginx upstream algorithm: each pick raises every non-empty
  class's credit by its weight, takes the class with the most credit,
  and debits the winner by the total active weight) combined with
  per-tenant round-robin *within* each class.  Together they give the
  two fairness properties the conformance suite checks: a class with
  queued work is picked at a bounded-ratio share (no class starves),
  and within a class no tenant is picked twice before every other
  waiting tenant is picked once.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.serve.jobs import PRIORITIES, PRIORITY_WEIGHTS


class AdmissionError(Exception):
    """Base of all typed submission rejections.

    Attributes:
        code: stable machine-readable rejection code (wire field).
    """

    code = "rejected"


class QueueFullError(AdmissionError):
    """The global queue depth bound is exhausted; back off and retry."""

    code = "queue-full"


class TenantQuotaError(AdmissionError):
    """The submitting tenant already holds its per-tenant queue share."""

    code = "tenant-quota"


class UnknownPriorityError(AdmissionError):
    """The submission named a priority class that does not exist."""

    code = "unknown-priority"


class ServerClosedError(AdmissionError):
    """The server is draining or stopped and accepts no new work."""

    code = "server-closed"


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounds the scheduler enforces.

    Attributes:
        max_depth: global bound on queued (admitted, unstarted) jobs.
        tenant_depth: per-tenant bound across all priority classes;
            keeps one chatty tenant from filling the global queue.
        weights: priority-class weight table; defaults to
            :data:`repro.serve.jobs.PRIORITY_WEIGHTS`.
    """

    max_depth: int = 256
    tenant_depth: int = 32
    weights: tuple = PRIORITY_WEIGHTS

    def __post_init__(self):
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.tenant_depth < 1:
            raise ValueError(
                f"tenant_depth must be >= 1, got {self.tenant_depth}"
            )
        if self.tenant_depth > self.max_depth:
            raise ValueError(
                f"tenant_depth {self.tenant_depth} exceeds max_depth "
                f"{self.max_depth}: the per-tenant bound could never bind"
            )
        names = tuple(name for name, _ in self.weights)
        if len(set(names)) != len(names) or not names:
            raise ValueError(f"weights must name distinct classes: {names}")
        for name, weight in self.weights:
            if weight < 1:
                raise ValueError(f"class {name!r} weight must be >= 1")

    @property
    def classes(self) -> tuple:
        """Priority class names in declared order."""
        return tuple(name for name, _ in self.weights)

    def weight(self, priority: str) -> int:
        for name, weight in self.weights:
            if name == priority:
                return weight
        raise UnknownPriorityError(
            f"unknown priority {priority!r}; known: {self.classes}"
        )


@dataclass
class QueuedJob:
    """One admitted-but-unstarted job as the scheduler tracks it."""

    job_id: str
    tenant: str
    priority: str
    payload: object = None
    enqueued_at: float = 0.0


@dataclass
class _ClassQueue:
    """Per-priority-class state: tenant FIFOs plus a rotation order."""

    # tenant -> FIFO of that tenant's queued jobs in this class.  The
    # OrderedDict order IS the round-robin rotation: the front tenant is
    # picked next, then moved to the back (or dropped when drained).
    tenants: OrderedDict = field(default_factory=OrderedDict)
    credit: int = 0

    def __len__(self) -> int:
        return sum(len(fifo) for fifo in self.tenants.values())

    def push(self, job: QueuedJob) -> None:
        fifo = self.tenants.get(job.tenant)
        if fifo is None:
            fifo = self.tenants[job.tenant] = deque()
        fifo.append(job)

    def pop(self) -> QueuedJob:
        tenant, fifo = next(iter(self.tenants.items()))
        job = fifo.popleft()
        del self.tenants[tenant]
        if fifo:
            # Rotate a still-waiting tenant to the back of the order.
            self.tenants[tenant] = fifo
        return job


class FairScheduler:
    """Bounded multi-tenant queue with weighted-fair class selection.

    Not thread-safe: callers (the asyncio server under its lock, the
    single-threaded load generator) serialize access.
    """

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config or AdmissionConfig()
        self._classes = OrderedDict(
            (name, _ClassQueue()) for name in self.config.classes
        )
        self._tenant_depth: dict = {}
        self._depth = 0
        self.admitted_total = 0
        self.rejected = {
            QueueFullError.code: 0,
            TenantQuotaError.code: 0,
            UnknownPriorityError.code: 0,
        }

    def __len__(self) -> int:
        return self._depth

    def depth_of(self, tenant: str) -> int:
        """Queued jobs currently held by one tenant."""
        return self._tenant_depth.get(tenant, 0)

    def class_depths(self) -> dict:
        """Queued jobs per priority class (for status/telemetry)."""
        return {name: len(cq) for name, cq in self._classes.items()}

    def admit(self, job: QueuedJob) -> None:
        """Admit one job or raise a typed :class:`AdmissionError`.

        Check order is fixed — priority validity, global depth, tenant
        quota — so a rejection code is deterministic for a given state.
        """
        if job.priority not in self._classes:
            self.rejected[UnknownPriorityError.code] += 1
            raise UnknownPriorityError(
                f"unknown priority {job.priority!r}; "
                f"known: {self.config.classes}"
            )
        if self._depth >= self.config.max_depth:
            self.rejected[QueueFullError.code] += 1
            raise QueueFullError(
                f"queue depth {self._depth} at bound {self.config.max_depth}"
            )
        if self.depth_of(job.tenant) >= self.config.tenant_depth:
            self.rejected[TenantQuotaError.code] += 1
            raise TenantQuotaError(
                f"tenant {job.tenant!r} holds {self.depth_of(job.tenant)} "
                f"queued jobs at quota {self.config.tenant_depth}"
            )
        self._classes[job.priority].push(job)
        self._tenant_depth[job.tenant] = self.depth_of(job.tenant) + 1
        self._depth += 1
        self.admitted_total += 1

    def pick(self) -> QueuedJob | None:
        """Dequeue the next job under smooth weighted round-robin.

        Returns ``None`` when nothing is queued.  Only non-empty classes
        accrue credit, so a class cannot bank priority while idle and
        then monopolize the workers on arrival.
        """
        active = [
            (name, cq)
            for name, cq in self._classes.items()
            if len(cq) > 0
        ]
        if not active:
            return None
        total = 0
        for name, cq in active:
            cq.credit += self.config.weight(name)
            total += self.config.weight(name)
        best = max(active, key=lambda item: item[1].credit)[1]
        best.credit -= total
        job = best.pop()
        if len(best) == 0:
            # A drained class forfeits leftover credit (smoothness: an
            # idle class restarts from zero, it does not bank shares).
            best.credit = 0
        self._tenant_depth[job.tenant] -= 1
        if self._tenant_depth[job.tenant] == 0:
            del self._tenant_depth[job.tenant]
        self._depth -= 1
        return job

    def snapshot(self) -> dict:
        """Deterministic queue-state document for status/telemetry."""
        return {
            "depth": self._depth,
            "max_depth": self.config.max_depth,
            "tenant_depth_bound": self.config.tenant_depth,
            "classes": self.class_depths(),
            "tenants": dict(sorted(self._tenant_depth.items())),
            "admitted_total": self.admitted_total,
            "rejected": dict(self.rejected),
        }


__all__ = [
    "AdmissionConfig",
    "AdmissionError",
    "FairScheduler",
    "QueueFullError",
    "QueuedJob",
    "ServerClosedError",
    "TenantQuotaError",
    "UnknownPriorityError",
]
