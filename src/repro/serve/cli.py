"""``tbd serve`` — run, drive, and load-test the benchmark service.

Subcommands:

- ``tbd serve run`` — start a server, feed it a JSONL job file (or the
  built-in demo workload), stream every event, and print the final
  status snapshot.
- ``tbd serve submit KIND MODEL`` — one-shot client: submit one job to
  a fresh server and stream its events to stdout.
- ``tbd serve status`` — inspect a sharded cache directory offline
  (entries, bytes, shard occupancy).
- ``tbd serve loadgen`` — the deterministic load generator: simulate
  thousands of closed-loop clients against the real admission
  controller and report p50/p99 latency, throughput, rejections, and
  fairness per priority class; ``--gate`` makes SLO breaches exit 1.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.admission import AdmissionConfig, AdmissionError
from repro.serve.jobs import DEFAULT_PRIORITY, JOB_KINDS, JobRequest
from repro.serve.loadgen import LoadGenConfig, evaluate_slo, run_loadgen


def _request_from_doc(doc: dict) -> JobRequest:
    """A :class:`JobRequest` from one JSONL job document."""
    return JobRequest(
        kind=doc.get("kind", "sweep"),
        model=doc["model"],
        framework=doc.get("framework", "tensorflow"),
        batch_sizes=tuple(doc.get("batch_sizes", ())),
        batch_size=doc.get("batch_size"),
        faults=doc.get("faults", ""),
        transforms=doc.get("transforms", ""),
        gpu=doc.get("gpu", "p4000"),
        budget=doc.get("budget"),
    )


def _demo_jobs() -> list:
    """The built-in multi-tenant demo workload for ``serve run --demo``."""
    return [
        {"kind": "sweep", "model": "resnet-50", "framework": "tensorflow",
         "tenant": "vision-team", "priority": "interactive"},
        {"kind": "sweep", "model": "resnet-50", "framework": "tensorflow",
         "tenant": "infra-team", "priority": "batch"},  # coalesces
        {"kind": "conformance", "model": "alexnet", "framework": "mxnet",
         "tenant": "qa-team", "priority": "standard"},
        {"kind": "fault", "model": "resnet-50", "framework": "mxnet",
         "batch_size": 32, "faults": "cluster=2M1G:1gbe; steps=20; crash=1@10",
         "tenant": "chaos-team", "priority": "batch"},
        {"kind": "tune", "model": "nmt", "framework": "tensorflow",
         "batch_size": 64, "budget": 4,
         "tenant": "perf-team", "priority": "standard"},
    ]


def _server_from_args(args):
    from repro.serve.service import BenchmarkServer

    return BenchmarkServer(
        cache_dir=args.cache_dir,
        shards=args.shards,
        byte_budget=args.byte_budget,
        workers=args.workers,
        admission=AdmissionConfig(
            max_depth=args.max_depth, tenant_depth=args.tenant_depth
        ),
        event_log=getattr(args, "event_log", None),
    )


def _print_event(event, verbose: bool) -> None:
    if verbose:
        print(event.to_json())
        return
    data = event.data
    if event.kind == "point":
        record = data["record"]
        state = "OOM" if record["oom"] else "ok"
        print(
            f"{event.job_id} point {data['index'] + 1}/{data['total']} "
            f"b={record['batch_size']} {state}"
        )
    elif event.kind == "failed":
        print(f"{event.job_id} FAILED: {data.get('error')}")
    else:
        print(f"{event.job_id} {event.kind}")


def _cmd_run(args) -> int:
    if args.jobs_file:
        with open(args.jobs_file, encoding="utf-8") as handle:
            docs = [json.loads(line) for line in handle if line.strip()]
    else:
        docs = _demo_jobs()

    async def drive() -> int:
        failures = 0
        async with _server_from_args(args) as server:
            handles = []
            for doc in docs:
                try:
                    handles.append(
                        await server.submit(
                            _request_from_doc(doc),
                            tenant=doc.get("tenant", "default"),
                            priority=doc.get("priority", DEFAULT_PRIORITY),
                        )
                    )
                except (AdmissionError, ValueError) as exc:
                    failures += 1
                    code = getattr(exc, "code", "invalid")
                    print(f"rejected [{code}]: {exc}")
            for handle in handles:
                async for event in handle.events():
                    _print_event(event, args.verbose)
                    if event.kind == "failed":
                        failures += 1
            print(json.dumps(server.status(), indent=2, sort_keys=True))
        return 1 if failures else 0

    return asyncio.run(drive())


def _cmd_submit(args) -> int:
    request = JobRequest(
        kind=args.kind,
        model=args.model,
        framework=args.framework,
        batch_sizes=tuple(args.batches or ()),
        batch_size=args.batch,
        faults=args.faults or "",
        transforms=args.transforms or "",
        gpu=args.gpu,
        budget=args.budget,
    )

    async def drive() -> int:
        async with _server_from_args(args) as server:
            try:
                handle = await server.submit(
                    request, tenant=args.tenant, priority=args.priority
                )
            except (AdmissionError, ValueError) as exc:
                code = getattr(exc, "code", "invalid")
                print(f"rejected [{code}]: {exc}")
                return 2
            failed = False
            async for event in handle.events():
                _print_event(event, args.verbose)
                failed = failed or event.kind == "failed"
            return 1 if failed else 0

    return asyncio.run(drive())


def _cmd_status(args) -> int:
    from repro.serve.shardcache import ShardedResultCache

    cache = ShardedResultCache(
        args.cache_dir, shards=args.shards, byte_budget=args.byte_budget
    )
    print(json.dumps(cache.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_loadgen(args) -> int:
    config = LoadGenConfig(
        clients=args.clients,
        tenants=args.tenants,
        workers=args.workers,
        jobs_per_client=args.jobs_per_client,
        seed=args.seed,
        admission=AdmissionConfig(
            max_depth=args.max_depth, tenant_depth=args.tenant_depth
        ),
    )
    report = run_loadgen(config)
    print(report.format_report())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote {args.report}")
    if args.gate:
        breaches = evaluate_slo(report)
        if breaches:
            print("SLO BREACHED:")
            for breach in breaches:
                print(f"  {breach}")
            return 1
        print("SLO ok")
    return 0


def _add_server_arguments(parser) -> None:
    parser.add_argument(
        "--cache-dir", default=None,
        help="sharded result-cache root (default: uncached)",
    )
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument(
        "--byte-budget", type=int, default=None,
        help="cache byte ceiling across all shards (LRU-evicted)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-depth", type=int, default=256)
    parser.add_argument("--tenant-depth", type=int, default=32)
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print raw JSONL events instead of summaries",
    )


def register_serve_command(sub) -> None:
    """Attach ``tbd serve`` and its subcommands to the parser."""
    serve = sub.add_parser(
        "serve", help="the multi-tenant benchmark service + load generator"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    run = serve_sub.add_parser(
        "run", help="serve a JSONL job file (or the demo workload)"
    )
    run.add_argument(
        "--jobs-file", default=None,
        help='JSONL: {"kind","model","framework","tenant","priority",...}',
    )
    run.add_argument(
        "--event-log", default=None, help="append every event here as JSONL"
    )
    _add_server_arguments(run)
    run.set_defaults(func=_cmd_run)

    submit = serve_sub.add_parser("submit", help="one-shot job submission")
    submit.add_argument("kind", choices=JOB_KINDS)
    submit.add_argument("model")
    submit.add_argument("-f", "--framework", default="tensorflow")
    submit.add_argument("-b", "--batch", type=int, default=None)
    submit.add_argument(
        "--batches", type=int, nargs="+", default=None,
        help="explicit sweep batch sizes (default: the paper sweep)",
    )
    submit.add_argument("--faults", default=None)
    submit.add_argument("--transforms", default=None)
    submit.add_argument("-g", "--gpu", default="p4000")
    submit.add_argument("--budget", type=int, default=None)
    submit.add_argument("--tenant", default="cli")
    submit.add_argument("--priority", default=DEFAULT_PRIORITY)
    _add_server_arguments(submit)
    submit.set_defaults(func=_cmd_submit)

    status = serve_sub.add_parser(
        "status", help="inspect a sharded cache directory"
    )
    status.add_argument("--cache-dir", required=True)
    status.add_argument("--shards", type=int, default=8)
    status.add_argument("--byte-budget", type=int, default=None)
    status.set_defaults(func=_cmd_status)

    loadgen = serve_sub.add_parser(
        "loadgen", help="deterministic load test against the real scheduler"
    )
    loadgen.add_argument("--clients", type=int, default=200)
    loadgen.add_argument("--tenants", type=int, default=8)
    loadgen.add_argument("--workers", type=int, default=8)
    loadgen.add_argument("--jobs-per-client", type=int, default=2)
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument("--max-depth", type=int, default=256)
    loadgen.add_argument("--tenant-depth", type=int, default=32)
    loadgen.add_argument(
        "--report", default=None, help="write the canonical JSON report here"
    )
    loadgen.add_argument(
        "--gate", action="store_true",
        help="exit 1 when the report breaches the default SLO",
    )
    loadgen.set_defaults(func=_cmd_loadgen)
