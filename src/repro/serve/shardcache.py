"""Sharded, budgeted facade over the content-addressed result cache.

:class:`ShardedResultCache` duck-types the :class:`repro.engine.cache.
ResultCache` surface the sweep engine consumes (``load``/``store``/
``discard``/``corrupt_entries``/``stats``), so it drops straight into
``SweepEngine(cache=...)`` — but spreads entries over N independent
on-disk shards, each with its own lock, LRU order, and byte ledger.

Budget discipline: a global ``byte_budget`` is split evenly across
shards, and each shard evicts its own least-recently-used entries under
its own lock *before* an insert can push it over.  Because every shard
individually respects ``budget // shards``, the whole cache respects the
global budget at every instant without any cross-shard lock — the
concurrency-correctness property the ``serve-cache-budget`` conformance
invariant checks (and whose mutant self-test breaks the ledger to prove
the check has teeth).

Telemetry: ``serve.cache.{hits,misses,evictions}`` counters and a
``serve.cache.bytes`` gauge in the PR 1 metrics registry, plus local
counts for status snapshots that work with metrics disabled.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

from repro.engine.cache import ResultCache
from repro.observability.metrics import get_metrics

#: Default shard count; 8 keeps per-shard lock contention negligible for
#: the worker counts the service runs while staying cheap to scan.
DEFAULT_SHARDS = 8


class ShardedResultCache:
    """N locked LRU shards over N :class:`ResultCache` stores.

    Args:
        root: directory holding the ``shard-NN`` subdirectories.
        shards: shard count (key space is split by key prefix).
        byte_budget: global byte ceiling, or ``None`` for unbounded.
            Each shard enforces ``byte_budget // shards``; a budget
            smaller than the shard count is rejected rather than
            silently rounding every shard's share to zero.
    """

    def __init__(
        self,
        root: str,
        shards: int = DEFAULT_SHARDS,
        byte_budget: int | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if byte_budget is not None and byte_budget < shards:
            raise ValueError(
                f"byte_budget {byte_budget} is smaller than one byte per "
                f"shard ({shards} shards)"
            )
        self.root = root
        self.shards = shards
        self.byte_budget = byte_budget
        self.shard_budget = (
            byte_budget // shards if byte_budget is not None else None
        )
        self._stores = [
            ResultCache(os.path.join(root, f"shard-{index:02d}"))
            for index in range(shards)
        ]
        self._locks = [threading.Lock() for _ in range(shards)]
        # Per-shard LRU: key -> stored size; least-recent first.
        self._lru = [OrderedDict() for _ in range(shards)]
        self._bytes = [0] * shards
        self._peak_lock = threading.Lock()
        self.peak_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._rebuild()

    # ------------------------------------------------------------------
    # ResultCache surface (what SweepEngine consumes)
    # ------------------------------------------------------------------

    @property
    def corrupt_entries(self) -> int:
        """Damaged entries seen across all shards (engine telemetry)."""
        return sum(store.corrupt_entries for store in self._stores)

    def shard_for(self, key: str) -> int:
        """Shard index for a point key (stable prefix hash)."""
        return int(key[:8], 16) % self.shards

    def load(self, key: str) -> dict | None:
        """Point payload or ``None``; a hit refreshes the LRU position."""
        index = self.shard_for(key)
        with self._locks[index]:
            point = self._stores[index].load(key)
            lru = self._lru[index]
            if point is None:
                self.misses += 1
                if key in lru:
                    # The file vanished or decoded damaged underneath us
                    # (quarantine removed it) — drop it from the ledger.
                    self._bytes[index] -= lru.pop(key)
                get_metrics().counter("serve.cache.misses").inc()
                return None
            self.hits += 1
            lru.move_to_end(key)
            get_metrics().counter("serve.cache.hits").inc()
            return point

    def store(self, key: str, point: dict, config: dict | None = None) -> str:
        """Write one entry, evicting LRU entries to stay under budget."""
        index = self.shard_for(key)
        with self._locks[index]:
            store = self._stores[index]
            lru = self._lru[index]
            if key in lru:
                self._bytes[index] -= lru.pop(key)
            path = store.store(key, point, config)
            size = self._entry_bytes(path)
            lru[key] = size
            self._bytes[index] += size
            budget = self.shard_budget
            if budget is not None:
                # Evict oldest-first until under budget.  The entry just
                # written is last in LRU order, so it survives unless it
                # alone exceeds the shard budget — in which case it too
                # is evicted: the budget bound is absolute.
                while self._bytes[index] > budget and lru:
                    victim, _ = next(iter(lru.items()))
                    self._evict_locked(index, victim)
            self._note_total()
            get_metrics().gauge("serve.cache.bytes").set(self.total_bytes())
            return path

    def discard(self, key: str, reason: str) -> None:
        """Engine-initiated drop of a decoded-but-invalid entry."""
        index = self.shard_for(key)
        with self._locks[index]:
            if key in self._lru[index]:
                self._bytes[index] -= self._lru[index].pop(key)
            self._stores[index].discard(key, reason)

    # ------------------------------------------------------------------
    # budget / telemetry
    # ------------------------------------------------------------------

    @staticmethod
    def _entry_bytes(path: str) -> int:
        """Ledger size of one stored entry (its on-disk byte size)."""
        return os.path.getsize(path)

    def _evict_locked(self, index: int, key: str) -> None:
        """Evict one entry; caller holds the shard lock."""
        self._bytes[index] -= self._lru[index].pop(key)
        self._stores[index].remove(key)
        self.evictions += 1
        get_metrics().counter("serve.cache.evictions").inc()

    def _note_total(self) -> None:
        total = self.total_bytes()
        with self._peak_lock:
            if total > self.peak_bytes:
                self.peak_bytes = total

    def total_bytes(self) -> int:
        """Ledger bytes across all shards (may be read without locks —
        each cell is updated under its shard lock)."""
        return sum(self._bytes)

    def disk_bytes(self) -> int:
        """Actual on-disk bytes across all shards — the ground truth the
        conformance invariant compares the ledger against."""
        total = 0
        for store in self._stores:
            for path in store._entry_paths():
                try:
                    total += os.path.getsize(path)
                except OSError:
                    pass
        return total

    def entry_count(self) -> int:
        """Tracked entries across all shards."""
        return sum(len(lru) for lru in self._lru)

    def keys(self) -> list:
        """All tracked keys, least-recently-used first per shard."""
        out = []
        for index in range(self.shards):
            with self._locks[index]:
                out.extend(self._lru[index].keys())
        return out

    def _rebuild(self) -> None:
        """Re-index entries already on disk (warm service restart).

        Pre-existing entries enter LRU order by sorted path — a neutral,
        deterministic order — and the budget is enforced immediately, so
        a restart under a smaller budget trims the cache up front.
        """
        for index, store in enumerate(self._stores):
            with self._locks[index]:
                for path in store._entry_paths():
                    key = os.path.splitext(os.path.basename(path))[0]
                    try:
                        size = self._entry_bytes(path)
                    except OSError:
                        continue
                    self._lru[index][key] = size
                    self._bytes[index] += size
                budget = self.shard_budget
                if budget is not None:
                    lru = self._lru[index]
                    while self._bytes[index] > budget and lru:
                        victim, _ = next(iter(lru.items()))
                        self._evict_locked(index, victim)
        self._note_total()

    def stats(self) -> dict:
        """Status-endpoint document (deterministic given cache state)."""
        return {
            "root": self.root,
            "shards": self.shards,
            "byte_budget": self.byte_budget,
            "entries": self.entry_count(),
            "bytes": self.total_bytes(),
            "peak_bytes": self.peak_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_entries": self.corrupt_entries,
            "per_shard": [
                {"entries": len(self._lru[i]), "bytes": self._bytes[i]}
                for i in range(self.shards)
            ],
        }


__all__ = ["DEFAULT_SHARDS", "ShardedResultCache"]
