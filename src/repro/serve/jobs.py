"""Job model of the benchmark service: requests, priorities, events.

A :class:`JobRequest` is the tenant-facing unit of work — one sweep,
conformance, fault, or tune request over the existing engine/conformance/
tune layers.  Requests are frozen and content-addressed
(:meth:`JobRequest.fingerprint`), which is what lets the server coalesce
concurrent duplicate submissions onto one execution: the fingerprint
deliberately excludes the tenant and the priority class, mirroring how
:data:`repro.engine.keys.NON_KEY_RUN_DIMENSIONS` keeps measurement-layer
state out of the result cache.

Execution is observable as an ordered stream of :class:`JobEvent`
records — ``queued``/``started``, one ``point`` per completed grid point
(the streaming partial results), and a terminal ``done``/``failed`` —
whose JSON form is deterministic: no wall-clock fields, canonical key
order, so a drained stream can be written as byte-stable JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import PointSpec
from repro.engine.keys import canonical_json, digest

#: Priority classes, highest service share first, with their scheduler
#: weights (a weight-4 class receives 4x the picks of a weight-1 class
#: while both have queued jobs — proportional share, never preemption).
PRIORITY_WEIGHTS = (
    ("interactive", 4),
    ("standard", 2),
    ("batch", 1),
)

#: Priority class names in declared (descending-weight) order.
PRIORITIES = tuple(name for name, _ in PRIORITY_WEIGHTS)

#: The default class for submissions that do not name one.
DEFAULT_PRIORITY = "standard"

#: Request kinds the service executes.
JOB_KINDS = ("sweep", "conformance", "fault", "tune")

#: Event kinds, in lifecycle order; ``point`` repeats per grid point.
EVENT_KINDS = ("queued", "started", "point", "done", "failed")

#: Terminal event kinds: after one of these a job's stream ends.
TERMINAL_EVENTS = ("done", "failed")


def priority_weight(priority: str) -> int:
    """Scheduler weight of one priority class.

    Raises:
        KeyError: for a name outside :data:`PRIORITIES`.
    """
    for name, weight in PRIORITY_WEIGHTS:
        if name == priority:
            return weight
    raise KeyError(f"unknown priority {priority!r}; known: {PRIORITIES}")


@dataclass(frozen=True)
class JobRequest:
    """One unit of service work.

    ``kind`` selects the execution path:

    - ``sweep``: the model's batch sweep (``batch_sizes`` or the paper
      default), optionally under a ``transforms`` pipeline, streamed one
      point at a time.
    - ``conformance``: the same sweep, then every sweep-scope invariant
      of :mod:`repro.conformance` checked over it; the terminal event
      carries the verdict.
    - ``fault``: one point replayed under the ``faults`` scenario text.
    - ``tune``: the cost-model autotuner ranked over the point (no A/B
      confirmation; ``budget`` caps the candidate count).
    """

    kind: str
    model: str
    framework: str
    batch_sizes: tuple = ()
    batch_size: int | None = None
    faults: str = ""
    transforms: str = ""
    gpu: str = "p4000"
    budget: int | None = None

    def validate(self) -> None:
        """Raise ``ValueError`` on a malformed request, before admission.

        Validation is deliberately exhaustive here — a job must never be
        admitted, queued, and only then discovered to be unrunnable.
        """
        from repro.hardware.devices import get_gpu
        from repro.models.registry import get_model

        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; known: {JOB_KINDS}"
            )
        spec = get_model(self.model)
        if not spec.supports(self.framework):
            raise ValueError(
                f"the paper has no {self.framework} implementation of "
                f"{spec.display_name} (available: {spec.frameworks})"
            )
        get_gpu(self.gpu)
        if self.kind == "fault":
            if not self.faults:
                raise ValueError("a fault job requires a fault scenario text")
            from repro.faults.spec import parse_fault_spec

            parse_fault_spec(self.faults)
        elif self.faults:
            raise ValueError(
                f"only fault jobs carry a fault scenario (kind={self.kind!r})"
            )
        if self.transforms:
            if self.kind not in ("sweep", "conformance"):
                raise ValueError(
                    f"only sweep-shaped jobs carry a transform pipeline "
                    f"(kind={self.kind!r})"
                )
            from repro.plan.pipeline import parse_transform_spec

            parse_transform_spec(self.transforms)

    def resolved_batches(self) -> tuple:
        """The batch sizes this request sweeps (or its single batch)."""
        from repro.models.registry import get_model

        spec = get_model(self.model)
        if self.kind in ("sweep", "conformance"):
            sizes = self.batch_sizes or tuple(spec.batch_sizes)
            return tuple(int(size) for size in sizes)
        batch = self.batch_size if self.batch_size else spec.reference_batch
        return (int(batch),)

    def point_specs(self) -> list:
        """The engine grid this request expands to (empty for ``tune``)."""
        if self.kind == "tune":
            return []
        return [
            PointSpec(
                self.model,
                self.framework,
                batch,
                self.faults,
                self.transforms,
            )
            for batch in self.resolved_batches()
        ]

    def to_doc(self) -> dict:
        """Canonical plain-dict form (the fingerprint input)."""
        return {
            "kind": self.kind,
            "model": self.model,
            "framework": self.framework,
            "batch_sizes": [int(size) for size in self.batch_sizes],
            "batch_size": self.batch_size,
            "faults": self.faults,
            "transforms": self.transforms,
            "gpu": self.gpu,
            "budget": self.budget,
        }

    def fingerprint(self) -> str:
        """Content address of the request — tenant- and priority-blind,
        so identical submissions from different tenants coalesce."""
        return digest(self.to_doc())


@dataclass(frozen=True)
class JobEvent:
    """One record of a job's event stream.

    Deterministic by construction: ``seq`` is the per-job emission index
    and ``data`` carries only simulated/derived values — never wall-clock
    timestamps — so two runs of the same job produce byte-identical
    streams.
    """

    kind: str
    job_id: str
    seq: int
    data: dict = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        """True when this event ends the job's stream."""
        return self.kind in TERMINAL_EVENTS

    def to_doc(self) -> dict:
        """JSON-able form, canonical key order via :func:`to_json`."""
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "seq": self.seq,
            "data": self.data,
        }

    def to_json(self) -> str:
        """One canonical-JSON line (the JSONL wire format)."""
        return canonical_json(self.to_doc())
