"""Deterministic load generator for the benchmark service.

A discrete-event simulation on a virtual clock that drives the *real*
admission controller and fair scheduler (:mod:`repro.serve.admission`)
with thousands of closed-loop synthetic clients.  Nothing here touches
wall time or the engine: service times are drawn up front from a seeded
median-preserving lognormal (the PR 6 noise model's shape), so the same
seed produces a byte-identical report — which is what lets CI gate a
latency SLO on it.

Client model (closed loop): each client belongs to one tenant, submits
a job, and only after that job completes — or is rejected and retried
after a backoff — thinks for a while and submits its next one.  Because
every client holds at most one outstanding job, offered load is
self-limiting; the *bounded queue* is what turns heavy traffic into
typed rejections instead of unbounded latency, and the report shows
exactly that trade: p50/p99 wait and latency per priority class,
throughput, per-code rejection counts, and Jain's fairness index over
per-tenant completions.

SLO terms (checked by :func:`evaluate_slo` and the CI smoke job):

- *wait*: admission -> execution start.  A *starvation event* is a wait
  above ``starvation_wait_s``.
- *latency*: admission -> completion (rejected submissions retry and
  are counted separately; they do not smear the latency distribution).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field, replace

from repro.engine.keys import canonical_json
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionError,
    FairScheduler,
    QueuedJob,
)
from repro.serve.jobs import JOB_KINDS, PRIORITIES

#: Schema version of the loadgen report document.
REPORT_SCHEMA = 1

#: Simulated service seconds per job kind (medians; jitter multiplies).
KIND_SERVICE_S = {
    "sweep": 6.0,
    "conformance": 8.0,
    "fault": 4.0,
    "tune": 10.0,
}

#: Default traffic mix over priority classes (must sum to 1).
DEFAULT_PRIORITY_MIX = (
    ("interactive", 0.2),
    ("standard", 0.5),
    ("batch", 0.3),
)

#: Default traffic mix over job kinds (must sum to 1).
DEFAULT_KIND_MIX = (
    ("sweep", 0.55),
    ("conformance", 0.15),
    ("fault", 0.15),
    ("tune", 0.15),
)


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generation scenario.

    Attributes:
        clients: concurrent closed-loop clients.
        tenants: tenant count; client ``i`` belongs to tenant
            ``i % tenants``.
        workers: simulated service workers draining the queue.
        jobs_per_client: jobs each client completes before leaving.
        seed: master RNG seed; same seed => byte-identical report.
        arrival_window_s: first submissions land uniformly in this window.
        think_time_s: median pause between a client's jobs.
        service_jitter: lognormal sigma on service times (0 disables).
        starvation_wait_s: wait above this counts as a starvation event.
        priority_mix / kind_mix: traffic composition.
        admission: queue bounds; ``None`` uses service defaults.
    """

    clients: int = 200
    tenants: int = 8
    workers: int = 8
    jobs_per_client: int = 2
    seed: int = 7
    arrival_window_s: float = 30.0
    think_time_s: float = 5.0
    service_jitter: float = 0.25
    starvation_wait_s: float = 1200.0
    priority_mix: tuple = DEFAULT_PRIORITY_MIX
    kind_mix: tuple = DEFAULT_KIND_MIX
    admission: AdmissionConfig | None = None

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.jobs_per_client < 1:
            raise ValueError(
                f"jobs_per_client must be >= 1, got {self.jobs_per_client}"
            )
        for mix, domain, label in (
            (self.priority_mix, PRIORITIES, "priority_mix"),
            (self.kind_mix, JOB_KINDS, "kind_mix"),
        ):
            total = sum(weight for _, weight in mix)
            if not math.isclose(total, 1.0, abs_tol=1e-9):
                raise ValueError(f"{label} must sum to 1, got {total}")
            for name, _ in mix:
                if name not in domain:
                    raise ValueError(f"{label} names unknown class {name!r}")

    def to_doc(self) -> dict:
        admission = self.admission or AdmissionConfig()
        return {
            "clients": self.clients,
            "tenants": self.tenants,
            "workers": self.workers,
            "jobs_per_client": self.jobs_per_client,
            "seed": self.seed,
            "arrival_window_s": self.arrival_window_s,
            "think_time_s": self.think_time_s,
            "service_jitter": self.service_jitter,
            "starvation_wait_s": self.starvation_wait_s,
            "priority_mix": [list(item) for item in self.priority_mix],
            "kind_mix": [list(item) for item in self.kind_mix],
            "admission": {
                "max_depth": admission.max_depth,
                "tenant_depth": admission.tenant_depth,
                "weights": [list(item) for item in admission.weights],
            },
        }


def percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of a sequence (0 for an empty one)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def jain_index(counts) -> float:
    """Jain's fairness index over per-tenant completion counts: 1.0 is
    perfectly even, 1/n is one tenant taking everything."""
    counts = list(counts)
    if not counts:
        return 1.0
    square_sum = sum(count * count for count in counts)
    if square_sum == 0:
        return 1.0
    total = sum(counts)
    return (total * total) / (len(counts) * square_sum)


@dataclass
class _ClassStats:
    """Accumulators for one priority class."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    rejected: int = 0
    starvation_events: int = 0
    waits: list = field(default_factory=list)
    latencies: list = field(default_factory=list)

    def doc(self, makespan_s: float) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "starvation_events": self.starvation_events,
            "wait_p50_s": round(percentile(self.waits, 0.50), 6),
            "wait_p99_s": round(percentile(self.waits, 0.99), 6),
            "wait_max_s": round(max(self.waits, default=0.0), 6),
            "latency_p50_s": round(percentile(self.latencies, 0.50), 6),
            "latency_p99_s": round(percentile(self.latencies, 0.99), 6),
            "throughput_jobs_per_s": round(
                self.completed / makespan_s if makespan_s > 0 else 0.0, 6
            ),
        }


@dataclass
class LoadGenReport:
    """The deterministic outcome of one :func:`run_loadgen` run."""

    config: LoadGenConfig
    makespan_s: float
    events_processed: int
    per_class: dict
    rejected_by_code: dict
    tenant_completions: dict
    fairness_index: float
    starvation_events: int
    scheduler: dict

    @property
    def completed(self) -> int:
        return sum(stats.completed for stats in self.per_class.values())

    @property
    def submitted(self) -> int:
        return sum(stats.submitted for stats in self.per_class.values())

    def to_doc(self) -> dict:
        """Canonical report document — byte-stable for a given config."""
        makespan = self.makespan_s
        return {
            "schema": REPORT_SCHEMA,
            "config": self.config.to_doc(),
            "makespan_s": round(makespan, 6),
            "events_processed": self.events_processed,
            "submitted": self.submitted,
            "completed": self.completed,
            "throughput_jobs_per_s": round(
                self.completed / makespan if makespan > 0 else 0.0, 6
            ),
            "classes": {
                name: stats.doc(makespan)
                for name, stats in sorted(self.per_class.items())
            },
            "rejected_by_code": dict(sorted(self.rejected_by_code.items())),
            "tenant_completions": dict(
                sorted(self.tenant_completions.items())
            ),
            "fairness_index": round(self.fairness_index, 6),
            "starvation_events": self.starvation_events,
            "scheduler": self.scheduler,
        }

    def to_json(self) -> str:
        return canonical_json(self.to_doc())

    def format_report(self) -> str:
        doc = self.to_doc()
        lines = [
            f"loadgen: {doc['config']['clients']} clients / "
            f"{doc['config']['tenants']} tenants / "
            f"{doc['config']['workers']} workers (seed "
            f"{doc['config']['seed']})",
            f"  submitted {doc['submitted']}  completed {doc['completed']}  "
            f"makespan {doc['makespan_s']:.1f}s  "
            f"throughput {doc['throughput_jobs_per_s']:.3f} jobs/s",
            f"  fairness(Jain) {doc['fairness_index']:.4f}  "
            f"starvation events {doc['starvation_events']}",
        ]
        for name, cls in doc["classes"].items():
            lines.append(
                f"  {name:12s} n={cls['completed']:<5d} "
                f"wait p50/p99 {cls['wait_p50_s']:.2f}/"
                f"{cls['wait_p99_s']:.2f}s  "
                f"latency p50/p99 {cls['latency_p50_s']:.2f}/"
                f"{cls['latency_p99_s']:.2f}s  "
                f"rejected {cls['rejected']}"
            )
        if any(doc["rejected_by_code"].values()):
            parts = ", ".join(
                f"{code}={count}"
                for code, count in doc["rejected_by_code"].items()
                if count
            )
            lines.append(f"  rejections by code: {parts}")
        return "\n".join(lines)


def _draw(rng: random.Random, mix) -> str:
    """One weighted categorical draw from a ((name, weight), ...) mix."""
    roll = rng.random()
    cumulative = 0.0
    for name, weight in mix:
        cumulative += weight
        if roll < cumulative:
            return name
    return mix[-1][0]


def _jitter(rng: random.Random, sigma: float) -> float:
    """Median-preserving lognormal factor (the PR 6 noise shape)."""
    if sigma <= 0:
        return 1.0
    return math.exp(rng.gauss(0.0, sigma))


def run_loadgen(config: LoadGenConfig) -> LoadGenReport:
    """Simulate the scenario and return its deterministic report.

    The virtual clock only moves via the event heap; ties break on a
    monotonically assigned sequence number, so the processing order —
    and therefore every RNG draw — is reproducible bit-for-bit.
    """
    rng = random.Random(config.seed)
    scheduler = FairScheduler(config.admission or AdmissionConfig())
    per_class = {name: _ClassStats() for name in scheduler.config.classes}
    rejected_by_code: dict = {}
    tenant_completions = {
        f"tenant-{index}": 0 for index in range(config.tenants)
    }
    free_workers = config.workers
    events: list = []
    seq = 0
    processed = 0
    makespan = 0.0

    def push(when: float, kind: str, data: dict) -> None:
        nonlocal seq
        heapq.heappush(events, (when, seq, kind, data))
        seq += 1

    def start_if_possible(now: float) -> None:
        nonlocal free_workers
        while free_workers > 0:
            job = scheduler.pick()
            if job is None:
                return
            free_workers -= 1
            wait = now - job.enqueued_at
            stats = per_class[job.priority]
            stats.waits.append(wait)
            if wait > config.starvation_wait_s:
                stats.starvation_events += 1
            push(
                now + job.payload["service_s"],
                "complete",
                {"job": job, "started_at": now},
            )

    with trace_span(
        "serve.loadgen",
        clients=config.clients,
        tenants=config.tenants,
        workers=config.workers,
        seed=config.seed,
    ) as span:
        for client in range(config.clients):
            push(
                rng.uniform(0.0, config.arrival_window_s),
                "submit",
                {
                    "client": client,
                    "tenant": f"tenant-{client % config.tenants}",
                    "remaining": config.jobs_per_client,
                    "job": None,
                },
            )
        while events:
            now, _, kind, data = heapq.heappop(events)
            processed += 1
            makespan = now
            if kind == "submit":
                job = data["job"]
                if job is None:
                    # A fresh job: draw its class, kind, and service time
                    # now so retries replay the identical job.
                    priority = _draw(rng, config.priority_mix)
                    job_kind = _draw(rng, config.kind_mix)
                    service = KIND_SERVICE_S[job_kind] * _jitter(
                        rng, config.service_jitter
                    )
                    job = QueuedJob(
                        job_id=f"lg-{data['client']}-{data['remaining']}",
                        tenant=data["tenant"],
                        priority=priority,
                        payload={
                            "kind": job_kind,
                            "service_s": service,
                            "client": data["client"],
                            "remaining": data["remaining"],
                        },
                    )
                    per_class[priority].submitted += 1
                job = replace(job, enqueued_at=now)
                try:
                    scheduler.admit(job)
                except AdmissionError as exc:
                    stats = per_class[job.priority]
                    stats.rejected += 1
                    rejected_by_code[exc.code] = (
                        rejected_by_code.get(exc.code, 0) + 1
                    )
                    # Back off and retry the same job: closed-loop
                    # clients apply back-pressure, they don't drop work.
                    push(
                        now
                        + config.think_time_s * 2.0 * rng.uniform(0.5, 1.5),
                        "submit",
                        {**data, "job": job},
                    )
                else:
                    per_class[job.priority].admitted += 1
                    start_if_possible(now)
            else:  # complete
                job = data["job"]
                stats = per_class[job.priority]
                stats.completed += 1
                stats.latencies.append(now - job.enqueued_at)
                tenant_completions[job.tenant] += 1
                free_workers += 1
                start_if_possible(now)
                remaining = job.payload["remaining"] - 1
                if remaining > 0:
                    push(
                        now + config.think_time_s * rng.uniform(0.5, 1.5),
                        "submit",
                        {
                            "client": job.payload["client"],
                            "tenant": job.tenant,
                            "remaining": remaining,
                            "job": None,
                        },
                    )
        report = LoadGenReport(
            config=config,
            makespan_s=makespan,
            events_processed=processed,
            per_class=per_class,
            rejected_by_code=rejected_by_code,
            tenant_completions=tenant_completions,
            fairness_index=jain_index(tenant_completions.values()),
            starvation_events=sum(
                stats.starvation_events for stats in per_class.values()
            ),
            scheduler=scheduler.snapshot(),
        )
        span.set_attributes(
            completed=report.completed, makespan_s=round(makespan, 3)
        )
        metrics = get_metrics()
        metrics.counter("serve.loadgen.jobs_submitted").inc(report.submitted)
        metrics.counter("serve.loadgen.jobs_completed").inc(report.completed)
        metrics.counter("serve.loadgen.starvation_events").inc(
            report.starvation_events
        )
    return report


#: Default SLO thresholds the CI smoke job and bench suite gate on:
#: per-class p99 latency ceilings (simulated seconds), a floor on the
#: Jain fairness index, and zero tolerated starvation events.  The
#: ceilings sit ~20% above the worst tail observed across seeds at 2000
#: clients — because the admission queue is bounded, tail latency
#: *plateaus* with offered load (extra demand converts to typed
#: rejections), so these limits hold at any client count and a breach
#: means the scheduler or the queue bound regressed, not "more traffic".
DEFAULT_SLO = {
    "latency_p99_s": {
        "interactive": 150.0,
        "standard": 450.0,
        "batch": 1000.0,
    },
    "fairness_floor": 0.9,
    "max_starvation_events": 0,
}


def evaluate_slo(report: LoadGenReport, slo: dict | None = None) -> list:
    """SLO breaches for one report — empty means the SLO holds."""
    slo = slo or DEFAULT_SLO
    doc = report.to_doc()
    breaches = []
    for name, limit in sorted(slo.get("latency_p99_s", {}).items()):
        observed = doc["classes"][name]["latency_p99_s"]
        if observed > limit:
            breaches.append(
                f"{name}: latency p99 {observed:.2f}s exceeds SLO "
                f"{limit:.2f}s"
            )
    floor = slo.get("fairness_floor")
    if floor is not None and doc["fairness_index"] < floor:
        breaches.append(
            f"fairness index {doc['fairness_index']:.4f} below floor "
            f"{floor:.4f}"
        )
    limit = slo.get("max_starvation_events")
    if limit is not None and doc["starvation_events"] > limit:
        breaches.append(
            f"{doc['starvation_events']} starvation event(s) exceed "
            f"allowance {limit}"
        )
    return breaches


__all__ = [
    "DEFAULT_KIND_MIX",
    "DEFAULT_PRIORITY_MIX",
    "DEFAULT_SLO",
    "KIND_SERVICE_S",
    "LoadGenConfig",
    "LoadGenReport",
    "evaluate_slo",
    "jain_index",
    "percentile",
    "run_loadgen",
]
