"""Sweep-as-a-service: the multi-tenant async benchmark server.

Layers, bottom-up:

- :mod:`repro.serve.jobs` — content-addressed job requests, priority
  classes, and the deterministic event-stream wire format.
- :mod:`repro.serve.admission` — typed admission control (bounded queue,
  per-tenant quotas) and the smooth-weighted-round-robin fair scheduler.
- :mod:`repro.serve.shardcache` — a locked, LRU-evicting, byte-budgeted
  shard facade over the engine's content-addressed result cache.
- :mod:`repro.serve.service` — the asyncio server: worker pool,
  streaming partial results, duplicate-submission coalescing.
- :mod:`repro.serve.loadgen` — a seeded discrete-event load generator
  that drives the real scheduler with thousands of simulated clients
  and reports the p50/p99 latency SLO per priority class.
"""

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionError,
    FairScheduler,
    QueueFullError,
    QueuedJob,
    ServerClosedError,
    TenantQuotaError,
    UnknownPriorityError,
)
from repro.serve.jobs import (
    DEFAULT_PRIORITY,
    JOB_KINDS,
    PRIORITIES,
    PRIORITY_WEIGHTS,
    JobEvent,
    JobRequest,
)
from repro.serve.loadgen import (
    DEFAULT_SLO,
    LoadGenConfig,
    LoadGenReport,
    evaluate_slo,
    run_loadgen,
)
from repro.serve.service import BenchmarkServer, JobHandle
from repro.serve.shardcache import ShardedResultCache

__all__ = [
    "AdmissionConfig",
    "AdmissionError",
    "BenchmarkServer",
    "DEFAULT_PRIORITY",
    "DEFAULT_SLO",
    "FairScheduler",
    "JOB_KINDS",
    "JobEvent",
    "JobHandle",
    "JobRequest",
    "LoadGenConfig",
    "LoadGenReport",
    "PRIORITIES",
    "PRIORITY_WEIGHTS",
    "QueueFullError",
    "QueuedJob",
    "ServerClosedError",
    "ShardedResultCache",
    "TenantQuotaError",
    "UnknownPriorityError",
    "evaluate_slo",
    "run_loadgen",
]
