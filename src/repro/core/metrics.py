"""The paper's metrics (Section 3.4.3), as standalone formulas and as a
record derived from a simulated iteration.

- **Throughput**: data samples processed per second; audio-seconds/s for
  speech (variable utterance lengths), tokens/s for the Transformer.
- **GPU compute utilization** (Eq. 1): GPU active time / elapsed time.
- **FP32 utilization** (Eq. 2): executed FLOPs / (peak FLOP/s x active time).
- **CPU utilization** (Eq. 3): sum of core active times / (cores x elapsed).
"""

from __future__ import annotations

from dataclasses import dataclass


def throughput(samples: float, elapsed_s: float) -> float:
    """Samples processed per second."""
    if elapsed_s <= 0:
        raise ValueError("elapsed time must be positive")
    if samples < 0:
        raise ValueError("sample count cannot be negative")
    return samples / elapsed_s


def gpu_utilization(gpu_active_s: float, elapsed_s: float) -> float:
    """Paper Eq. 1."""
    if elapsed_s <= 0:
        raise ValueError("elapsed time must be positive")
    if gpu_active_s < 0:
        raise ValueError("active time cannot be negative")
    return min(1.0, gpu_active_s / elapsed_s)


def fp32_utilization(flop_count: float, peak_flops: float, active_s: float) -> float:
    """Paper Eq. 2: achieved fraction of peak FP32 throughput while active."""
    if peak_flops <= 0:
        raise ValueError("peak FLOP/s must be positive")
    if flop_count < 0:
        raise ValueError("FLOP count cannot be negative")
    if active_s <= 0:
        return 0.0
    return flop_count / (peak_flops * active_s)


def cpu_utilization(core_active_s: float, core_count: int, elapsed_s: float) -> float:
    """Paper Eq. 3: mean utilization across all host cores."""
    if core_count <= 0:
        raise ValueError("core count must be positive")
    if elapsed_s <= 0:
        raise ValueError("elapsed time must be positive")
    if core_active_s < 0:
        raise ValueError("active time cannot be negative")
    return min(1.0, core_active_s / (core_count * elapsed_s))


@dataclass(frozen=True)
class IterationMetrics:
    """The paper's headline metrics for one benchmark configuration."""

    model: str
    framework: str
    device: str
    batch_size: int
    throughput: float
    throughput_unit: str
    gpu_utilization: float
    fp32_utilization: float
    cpu_utilization: float
    iteration_time_s: float

    @classmethod
    def from_profile(cls, profile, throughput_unit: str = "samples/s"):
        """Derive metrics from a
        :class:`~repro.training.session.IterationProfile`."""
        return cls(
            model=profile.model,
            framework=profile.framework,
            device=profile.device,
            batch_size=profile.batch_size,
            throughput=profile.throughput,
            throughput_unit=throughput_unit,
            gpu_utilization=profile.gpu_utilization,
            fp32_utilization=profile.fp32_utilization,
            cpu_utilization=profile.cpu_utilization,
            iteration_time_s=profile.iteration_time_s,
        )

    def format_row(self) -> str:
        """One printable summary row."""
        return (
            f"{self.model:14s} {self.framework:11s} b={self.batch_size:<5d} "
            f"{self.throughput:9.1f} {self.throughput_unit:15s} "
            f"gpu={self.gpu_utilization * 100:5.1f}%  "
            f"fp32={self.fp32_utilization * 100:5.1f}%  "
            f"cpu={self.cpu_utilization * 100:5.2f}%"
        )
