"""The end-to-end analysis pipeline of the paper's Fig. 3.

    DNN model implementation
      -> setup: make implementations comparable
      -> warm-up & auto-tuning (excluded from data collection)
      -> short training period, sampled
      -> {throughput, compute utilization, FP32 utilization, CPU
          utilization, memory consumption}

:class:`AnalysisPipeline` wires those stages together over the simulated
runtime: it validates comparability, synthesizes the warm-up/auto-tune
iteration timeline, picks the stable sampling window, attaches the kernel
trace ("nvprof"), the CPU sampler ("vTune") and the memory profiler, and
merges everything into one :class:`AnalysisReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import IterationMetrics
from repro.observability.tracer import trace_span
from repro.profiling.cpu_sampler import CPUSample, CPUSampler
from repro.profiling.kernel_trace import KernelTrace, trace_from_profile
from repro.profiling.memory_profiler import MemoryProfile
from repro.profiling.sampling import IterationTimeline, StablePhaseSampler
from repro.training.hyperparams import assert_comparable, defaults_for
from repro.training.session import TrainingSession


@dataclass(frozen=True)
class AnalysisReport:
    """Merged output of one full pipeline run."""

    metrics: IterationMetrics
    kernel_trace: KernelTrace
    cpu_sample: CPUSample
    memory: MemoryProfile
    stable_start_iteration: int
    sampled_iterations: int
    stable_throughput: float

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"=== {self.metrics.model} on {self.metrics.framework} "
            f"({self.metrics.device}, batch {self.metrics.batch_size}) ===",
            f"warm-up/auto-tune excluded: first {self.stable_start_iteration} "
            f"iterations; sampled {self.sampled_iterations} stable iterations",
            f"throughput:        {self.stable_throughput:9.1f} "
            f"{self.metrics.throughput_unit}",
            f"GPU utilization:   {self.metrics.gpu_utilization * 100:8.1f}%",
            f"FP32 utilization:  {self.metrics.fp32_utilization * 100:8.1f}%",
            f"CPU utilization:   {self.metrics.cpu_utilization * 100:8.2f}%",
            f"memory total:      {self.memory.total_gib:8.2f} GiB "
            f"(feature maps {self.memory.feature_map_fraction * 100:.0f}%)",
            "top low-FP32 kernels:",
        ]
        for row in self.kernel_trace.longest_low_utilization_kernels(5):
            lines.append(f"  {row}")
        return "\n".join(lines)


class AnalysisPipeline:
    """Runs the Fig. 3 pipeline for one benchmark configuration."""

    def __init__(
        self,
        model: str,
        framework: str,
        gpu=None,
        sample_iterations: int = 200,
        run_iterations: int = 600,
    ):
        kwargs = {} if gpu is None else {"gpu": gpu}
        self.session = TrainingSession(model, framework, **kwargs)
        self.sample_iterations = sample_iterations
        self.run_iterations = run_iterations

    def run(self, batch_size: int | None = None) -> AnalysisReport:
        """Execute every pipeline stage and merge the results.

        Each stage runs under a ``pipeline.stage.*`` telemetry span
        (setup -> warm-up -> sample -> profile -> merge), so an
        instrumented run yields the Fig. 3 flow as one coherent span tree
        with the simulated kernel timeline attached beneath it.
        """
        spec = self.session.spec
        batch = batch_size if batch_size is not None else spec.reference_batch
        with trace_span(
            "pipeline.run",
            model=spec.key,
            framework=self.session.framework.key,
            batch_size=batch,
        ):
            # Stage 1 — setup: make implementations comparable (§3.4.1).
            with trace_span("pipeline.stage.setup", stage="setup"):
                reference = defaults_for(spec.key)
                assert_comparable(spec.key, reference, reference)

            # Stage 2 — warm-up & auto-tuning (excluded from data
            # collection): execute the workload to learn the stable
            # iteration time, then synthesize the warm-up/auto-tune
            # timeline.  Faster R-CNN needs thousands of iterations to
            # stabilize (§3.4.2); everything else a few hundred.
            with trace_span("pipeline.stage.warmup", stage="warm-up") as warmup:
                profile = self.session.run_iteration(batch)
                autotune = 2000 if spec.key == "faster-rcnn" else 200
                timeline = IterationTimeline(
                    stable_iteration_s=profile.iteration_time_s,
                    autotune_iterations=autotune,
                )
                run_length = max(
                    self.run_iterations, autotune + 4 * self.sample_iterations
                )
                durations = timeline.durations(run_length)
                warmup.set_attributes(
                    autotune_iterations=autotune, run_length=run_length
                )

            # Stage 3 — sample: pick the stable-phase window.
            with trace_span("pipeline.stage.sample", stage="sample") as sampling:
                sampler = StablePhaseSampler()
                window = sampler.choose_window(durations, self.sample_iterations)
                stable_throughput = sampler.stable_throughput(
                    durations, profile.effective_samples, self.sample_iterations
                )
                sampling.set_attributes(
                    stable_start=window.start_iteration, window=window.length
                )

            # Stage 4 — profile: the piecewise tools over the measured
            # iteration (nvprof-, vTune- and memory-profiler counterparts).
            with trace_span("pipeline.stage.profile", stage="profile"):
                trace = trace_from_profile(profile)
                cpu_sample = CPUSampler(self.session).sample(batch)
                memory = MemoryProfile(
                    model=spec.display_name,
                    framework=self.session.framework.name,
                    batch_size=batch,
                    snapshot=profile.memory,
                )

            # Stage 5 — merge: one report from all views.
            with trace_span("pipeline.stage.merge", stage="merge"):
                metrics = IterationMetrics.from_profile(
                    profile, throughput_unit=spec.throughput_unit
                )
                return AnalysisReport(
                    metrics=metrics,
                    kernel_trace=trace,
                    cpu_sample=cpu_sample,
                    memory=memory,
                    stable_start_iteration=window.start_iteration,
                    sampled_iterations=window.length,
                    stable_throughput=stable_throughput,
                )
