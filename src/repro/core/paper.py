"""Machine-readable paper metadata: provenance for every reproduced claim.

Each exhibit, observation and headline claim in this repository traces
back to a specific place in the paper; this module records those anchors
so reports, tests and documentation can cite them programmatically
(``observation(5).quote``, ``exhibit("fig9").section``).
"""

from __future__ import annotations

from dataclasses import dataclass

TITLE = "TBD: Benchmarking and Analyzing Deep Neural Network Training"
AUTHORS = (
    "Hongyu Zhu",
    "Mohamed Akrout",
    "Bojian Zheng",
    "Andrew Pelegris",
    "Amar Phanishayee",
    "Bianca Schroeder",
    "Gennady Pekhimenko",
)
VENUE = "IISWC 2018"
ARXIV = "1803.06905v2"


@dataclass(frozen=True)
class ObservationText:
    """One numbered observation as the paper states it."""

    number: int
    section: str
    quote: str


#: The paper's 13 observations, quoted (abridged to the operative clause).
OBSERVATIONS = {
    1: ObservationText(
        1, "4.2.1", "Performance increases with the mini-batch size for all models."
    ),
    2: ObservationText(
        2,
        "4.2.1",
        "The performance of RNN-based models is not saturated within the "
        "GPU's memory constraints.",
    ),
    3: ObservationText(
        3,
        "4.2.1",
        "Application diversity is important when comparing performance of "
        "different frameworks.",
    ),
    4: ObservationText(
        4,
        "4.2.2",
        "The mini-batch size should be large enough to keep the GPU busy.",
    ),
    5: ObservationText(
        5, "4.2.2", "The GPU compute utilization is low for LSTM-based models."
    ),
    6: ObservationText(
        6,
        "4.2.3",
        "The mini-batch size should be large enough to exploit the FP32 "
        "computational power of GPU cores.",
    ),
    7: ObservationText(
        7, "4.2.3", "RNN-based models have low GPU FP32 utilization."
    ),
    8: ObservationText(
        8,
        "4.2.3",
        "There exist kernels with long duration, but low FP32 utilization, "
        "even for highly optimized models.",
    ),
    9: ObservationText(9, "4.2.4", "CPU utilization is low in DNN training."),
    10: ObservationText(
        10,
        "4.3",
        "More advanced GPUs should be accompanied by better systems designs "
        "and more efficient low-level libraries.",
    ),
    11: ObservationText(
        11, "4.4", "Feature maps are the dominant consumers of memory."
    ),
    12: ObservationText(
        12,
        "4.4",
        "Simply exhausting GPU memory with large mini-batch size might be "
        "inefficient.",
    ),
    13: ObservationText(
        13, "4.5", "Network bandwidth must be large enough for good scalability."
    ),
}


@dataclass(frozen=True)
class ExhibitAnchor:
    """Where one table/figure lives in the paper."""

    key: str
    caption: str
    section: str


EXHIBITS = {
    "table1": ExhibitAnchor("table1", "Categorization of major computer architecture and systems conference papers since 2014", "1"),
    "fig1_fig3": ExhibitAnchor("fig1_fig3", "Feed-forward and back-propagation; analysis pipeline", "2.1 / 3.4"),
    "table2_3": ExhibitAnchor("table2_3", "Overview of benchmarks; training datasets", "3.1"),
    "fig2": ExhibitAnchor("fig2", "The model accuracy during the training for different models", "3.3"),
    "table4": ExhibitAnchor("table4", "Hardware specifications", "4.1"),
    "fig4": ExhibitAnchor("fig4", "DNN training throughput for different models on multiple mini-batch sizes", "4.2.1"),
    "fig5": ExhibitAnchor("fig5", "GPU compute utilization for different models on multiple mini-batch sizes", "4.2.2"),
    "fig6": ExhibitAnchor("fig6", "GPU FP32 utilization for different models on multiple mini-batch sizes", "4.2.3"),
    "table5_6": ExhibitAnchor("table5_6", "Longest 5 kernels with utilization level below the average (ResNet-50, mini-batch 32)", "4.2.3"),
    "fig7": ExhibitAnchor("fig7", "Average CPU utilization for different models", "4.2.4"),
    "fig8": ExhibitAnchor("fig8", "Throughput, compute utilization, FP32 utilization comparison between P4000 and Titan Xp", "4.3"),
    "fig9": ExhibitAnchor("fig9", "GPU memory usage breakdown for different models on multiple mini-batch sizes", "4.4"),
    "fig10": ExhibitAnchor("fig10", "ResNet-50 on MXNet with multiple GPUs/machines", "4.5"),
}


def observation(number: int) -> ObservationText:
    """The paper's wording for one observation.

    Raises:
        KeyError: outside 1-13.
    """
    if number not in OBSERVATIONS:
        raise KeyError(f"observations run 1-13, got {number}")
    return OBSERVATIONS[number]


def exhibit(key: str) -> ExhibitAnchor:
    """Paper anchor for one exhibit key (as used by repro.experiments)."""
    if key not in EXHIBITS:
        known = ", ".join(sorted(EXHIBITS))
        raise KeyError(f"unknown exhibit {key!r}; known: {known}")
    return EXHIBITS[key]


def citation() -> str:
    """A plain-text citation for the reproduced paper."""
    authors = ", ".join(AUTHORS)
    return f"{authors}. {TITLE}. {VENUE}. arXiv:{ARXIV}."
