"""Golden-baseline regression protection for the calibration.

The simulator's value lies in its calibrated agreement with the paper; an
innocent-looking change to an efficiency constant can silently break a
dozen exhibits.  This module snapshots the headline quantities of every
suite configuration into a JSON *baseline file* (checked into the
repository as ``baselines.json``) and compares live runs against it within
tolerances — the test suite fails if calibration drifts.

Regenerate intentionally after a deliberate recalibration:

    python -m repro.core.regression   # rewrites baselines.json
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.core.suite import standard_suite

#: Default baseline location: the repository root.
DEFAULT_PATH = os.path.join(os.path.dirname(__file__), "baselines.json")

#: Relative tolerance per metric when comparing against baselines.
TOLERANCES = {
    "throughput": 0.02,
    "gpu_utilization": 0.02,
    "fp32_utilization": 0.02,
    "cpu_utilization": 0.05,
}


def capture_baselines(suite=None) -> dict:
    """Measure every suite configuration's headline metrics."""
    suite = suite if suite is not None else standard_suite()
    baselines = {}
    for spec, framework in suite.configurations():
        metrics = suite.run(spec.key, framework.key)
        baselines[f"{spec.key}/{framework.key}"] = {
            "batch_size": metrics.batch_size,
            "throughput": metrics.throughput,
            "gpu_utilization": metrics.gpu_utilization,
            "fp32_utilization": metrics.fp32_utilization,
            "cpu_utilization": metrics.cpu_utilization,
        }
    return baselines


def save_baselines(path: str = DEFAULT_PATH, suite=None) -> dict:
    """Capture and write the baseline file; returns the data."""
    baselines = capture_baselines(suite)
    with open(path, "w") as handle:
        json.dump(baselines, handle, indent=2, sort_keys=True)
    return baselines


def load_baselines(path: str = DEFAULT_PATH) -> dict:
    """Load the checked-in baselines.

    Raises:
        FileNotFoundError: if no baseline file exists yet.
    """
    with open(path) as handle:
        return json.load(handle)


@dataclass(frozen=True)
class Drift:
    """One metric that moved outside its tolerance."""

    configuration: str
    metric: str
    baseline: float
    measured: float

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.measured else 0.0
        return (self.measured - self.baseline) / self.baseline

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.configuration}.{self.metric}: {self.baseline:.4f} -> "
            f"{self.measured:.4f} ({self.relative_change:+.1%})"
        )


def detect_drift(path: str = DEFAULT_PATH, suite=None) -> list:
    """Compare live metrics against the baseline file.

    Returns:
        A list of :class:`Drift` records (empty = calibration intact).
    """
    baselines = load_baselines(path)
    current = capture_baselines(suite)
    drifts = []
    for configuration, baseline in baselines.items():
        measured = current.get(configuration)
        if measured is None:
            drifts.append(Drift(configuration, "<missing>", 1.0, 0.0))
            continue
        for metric, tolerance in TOLERANCES.items():
            reference = baseline[metric]
            value = measured[metric]
            if reference == 0:
                if value != 0:
                    drifts.append(Drift(configuration, metric, reference, value))
                continue
            if abs(value - reference) / abs(reference) > tolerance:
                drifts.append(Drift(configuration, metric, reference, value))
    for configuration in current:
        if configuration not in baselines:
            drifts.append(Drift(configuration, "<new>", 0.0, 1.0))
    return drifts


if __name__ == "__main__":
    data = save_baselines()
    print(f"wrote {len(data)} configuration baselines to {DEFAULT_PATH}")
