"""The TBD suite object: the runnable catalog of Table 2.

    suite = standard_suite()
    result = suite.run("resnet-50", framework="mxnet", batch_size=32)
    sweep  = suite.sweep("nmt", framework="tensorflow")
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import IterationMetrics
from repro.data.registry import dataset_catalog, get_dataset
from repro.frameworks.registry import framework_catalog, get_framework
from repro.hardware.devices import GPUSpec, QUADRO_P4000
from repro.hardware.memory import OutOfMemoryError
from repro.models.registry import ModelSpec, get_model, model_catalog
from repro.training.hyperparams import assert_comparable, defaults_for
from repro.training.session import TrainingSession


@dataclass
class SweepPoint:
    """One (batch size, metrics) point of a mini-batch sweep.

    Exactly one of the two outcomes holds: either the configuration ran
    and ``metrics`` is populated, or it exceeded GPU memory and ``oom`` is
    set with ``metrics`` left ``None``.  Mixed states are construction
    errors, so an OOM point can never masquerade as a measured one.
    """

    batch_size: int
    metrics: IterationMetrics | None = None
    oom: bool = False

    def __post_init__(self) -> None:
        if self.oom and self.metrics is not None:
            raise ValueError(
                f"OOM sweep point (batch {self.batch_size}) cannot carry metrics"
            )
        if not self.oom and self.metrics is None:
            raise ValueError(
                f"sweep point (batch {self.batch_size}) ran but has no metrics; "
                "mark it oom=True if it exceeded GPU memory"
            )


class TBDSuite:
    """The Training Benchmark for DNNs.

    Holds the model/framework/dataset catalogs and runs configurations on a
    chosen GPU.  The suite enforces the paper's comparability rule
    (Section 3.4.1) whenever one model is compared across frameworks: all
    implementations must share hyper-parameters.
    """

    def __init__(self, gpu: GPUSpec = QUADRO_P4000):
        self.gpu = gpu
        self.models = model_catalog()
        self.frameworks = framework_catalog()
        self.datasets = dataset_catalog()

    # ------------------------------------------------------------------
    # catalogs
    # ------------------------------------------------------------------

    def model(self, key: str) -> ModelSpec:
        """Look up one model spec."""
        return get_model(key)

    def configurations(self):
        """Yield every (model, framework) pair the paper evaluates."""
        for spec in self.models.values():
            for framework_key in spec.frameworks:
                yield spec, get_framework(framework_key)

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------

    def session(self, model: str, framework: str) -> TrainingSession:
        """Create a training session on this suite's GPU."""
        return TrainingSession(model, framework, gpu=self.gpu)

    def engine(self, jobs: int = 1, cache=None, check_memory: bool = True):
        """A :class:`~repro.engine.executor.SweepEngine` bound to this
        suite's GPU — the parallel/memoized execution path for
        :meth:`run`, :meth:`sweep`, and the figure experiments."""
        from repro.engine.executor import SweepEngine

        return SweepEngine(
            jobs=jobs, cache=cache, gpu=self.gpu, check_memory=check_memory
        )

    def run(
        self, model: str, framework: str, batch_size: int | None = None, engine=None
    ) -> IterationMetrics:
        """Run one configuration and return its headline metrics.

        ``engine`` (a :meth:`engine` product) routes execution through the
        sweep engine: results are served from its content-addressed cache
        when possible and memoized when not.

        Raises:
            OutOfMemoryError: if the configuration exceeds GPU memory.
            ValueError: if the paper has no such implementation.
        """
        if engine is not None:
            return engine.run(model, framework, batch_size)
        session = self.session(model, framework)
        profile = session.run_iteration(batch_size)
        return IterationMetrics.from_profile(
            profile, throughput_unit=session.spec.throughput_unit
        )

    def sweep(
        self, model: str, framework: str, batch_sizes=None, engine=None
    ) -> list:
        """Run the model's mini-batch sweep (Figs. 4-6 x-axes); OOM points
        are recorded, not raised.  ``engine`` fans the sweep out across
        worker processes and memoizes each point (see :meth:`engine`)."""
        if engine is not None:
            return engine.sweep(model, framework, batch_sizes)
        session = self.session(model, framework)
        sizes = batch_sizes if batch_sizes is not None else session.spec.batch_sizes
        points = []
        for batch in sizes:
            try:
                profile = session.run_iteration(batch)
            except OutOfMemoryError:
                points.append(SweepPoint(batch_size=batch, oom=True))
                continue
            points.append(
                SweepPoint(
                    batch_size=batch,
                    metrics=IterationMetrics.from_profile(
                        profile, throughput_unit=session.spec.throughput_unit
                    ),
                )
            )
        return points

    def compare_frameworks(self, model: str, batch_size: int | None = None) -> dict:
        """Run one model on every framework that implements it, after
        checking implementations are comparable (same hyper-parameters)."""
        spec = get_model(model)
        reference = defaults_for(spec.key)
        assert_comparable(spec.key, *([reference] * len(spec.frameworks)))
        results = {}
        for framework_key in spec.frameworks:
            results[framework_key] = self.run(model, framework_key, batch_size)
        return results

    def run_all(self) -> list:
        """Run every configuration at its reference batch size."""
        results = []
        for spec, framework in self.configurations():
            results.append(self.run(spec.key, framework.key))
        return results

    def validate_dataset_bindings(self) -> None:
        """Ensure every model's dataset exists (catalog integrity check)."""
        for spec in self.models.values():
            get_dataset(spec.dataset)


def standard_suite(gpu: GPUSpec = QUADRO_P4000) -> TBDSuite:
    """The paper's suite on its primary evaluation GPU (Quadro P4000)."""
    return TBDSuite(gpu=gpu)
