"""Single-file HTML report: the full reproduced evaluation in a browser.

``build_report()`` regenerates every exhibit, wraps each rendering in a
section with its paper anchor (from :mod:`repro.core.paper`) and the
observation checklist, and emits one self-contained HTML file — no
external assets, ready to attach to a review or open locally.
"""

from __future__ import annotations

import html
import time

from repro.core import paper
from repro.core.observations import verify_all
from repro.experiments import ALL_EXPERIMENTS, table5_6

_STYLE = """
body { font-family: Georgia, serif; max-width: 62rem; margin: 2rem auto;
       color: #1a1a1a; line-height: 1.45; padding: 0 1rem; }
h1 { font-size: 1.6rem; border-bottom: 2px solid #333; padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2.2rem; }
pre { background: #f6f5f2; border: 1px solid #ddd; padding: .8rem;
      overflow-x: auto; font-size: .78rem; line-height: 1.35; }
.anchor { color: #666; font-size: .85rem; }
.pass { color: #1f6f3f; font-weight: bold; }
.fail { color: #9f1f1f; font-weight: bold; }
table.obs { border-collapse: collapse; font-size: .85rem; }
table.obs td { border: 1px solid #ccc; padding: .3rem .6rem; vertical-align: top; }
footer { margin-top: 3rem; color: #777; font-size: .8rem; }
"""

_ORDER = (
    "table1",
    "fig1_fig3",
    "table2_3",
    "fig2",
    "table4",
    "fig4",
    "fig5",
    "fig6",
    "table5_6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
)


def _render_exhibit(key: str) -> str:
    module = ALL_EXPERIMENTS[key]
    if module is table5_6:
        return module.render_both()
    return module.render()


def build_report(observations: bool = True, exhibits=None) -> str:
    """Regenerate the evaluation and return it as an HTML document string.

    Args:
        observations: include the 13-observation checklist.
        exhibits: exhibit keys to include (default: all, paper order).
    """
    wanted = list(exhibits) if exhibits is not None else list(_ORDER)
    unknown = [key for key in wanted if key not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown exhibits: {unknown}")

    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(paper.TITLE)} — reproduction report</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(paper.TITLE)}</h1>",
        f"<p class='anchor'>reproduction report &middot; "
        f"{html.escape(paper.citation())}</p>",
    ]

    if observations:
        parts.append("<h2>The 13 observations</h2><table class='obs'>")
        for result in verify_all():
            quote = paper.observation(result.number).quote
            status = (
                "<span class='pass'>PASS</span>"
                if result.holds
                else "<span class='fail'>FAIL</span>"
            )
            parts.append(
                f"<tr><td>{status}</td><td><b>Obs. {result.number}</b> "
                f"(&sect;{paper.observation(result.number).section})<br>"
                f"<i>{html.escape(quote)}</i><br>"
                f"{html.escape(result.evidence)}</td></tr>"
            )
        parts.append("</table>")

    for key in wanted:
        anchor = paper.exhibit(key)
        parts.append(
            f"<h2>{html.escape(key)} <span class='anchor'>&sect;{anchor.section} "
            f"— {html.escape(anchor.caption)}</span></h2>"
        )
        parts.append(f"<pre>{html.escape(_render_exhibit(key))}</pre>")

    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    parts.append(
        f"<footer>generated {stamp} by the repro simulator; see "
        "EXPERIMENTS.md for paper-vs-measured notes.</footer></body></html>"
    )
    return "".join(parts)


def write_report(path: str, **kwargs) -> None:
    """Build and write the HTML report to ``path``."""
    with open(path, "w") as handle:
        handle.write(build_report(**kwargs))
