"""An optimization advisor built on the paper's findings.

The paper closes with "several important observations and recommendations
on where the future research and optimization of DNN training should be
focused".  This module turns those recommendations into an automated
diagnosis: given an :class:`~repro.core.analysis.AnalysisReport` (and
optionally a :class:`~repro.distributed.DistributedProfile`), it applies
the paper's decision rules and emits ranked, evidence-backed advice.

Rules encoded (the observation each derives from in parentheses):

1. GPU idle + many host syncs          -> fuse RNN cells (Obs. 5)
2. low FP32 despite busy GPU           -> small-kernel shapes; raise batch
                                          or fuse (Obs. 6/7)
3. long memory-bound kernels           -> optimize BN-class kernels (Obs. 8)
4. feature maps dominate memory        -> offload / recompute / FP16 maps
                                          (Obs. 11)
5. throughput saturated before the
   memory limit                        -> shrink batch, reinvest memory in
                                          depth or workspace (Obs. 12)
6. exposed communication dominates     -> faster fabric or gradient
                                          compression (Obs. 13)
7. input pipeline exposed              -> more reader threads / pre-packed
                                          data (the CNTK lesson, Fig. 7)

On top of the heuristics, the advisor consults the autotuner's cache
(:mod:`repro.tune.store`): when ``tbd tune`` has already *measured* a
winning transform pipeline for the exact workload under analysis, the
first recommendation cites that config and its confirmed speedup instead
of guessing — the heuristics remain as the fallback for workloads nobody
has tuned yet.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Recommendation:
    """One piece of advice with its measured evidence."""

    priority: int  # 1 = act first
    rule: str
    advice: str
    evidence: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[P{self.priority}] {self.rule}: {self.advice} ({self.evidence})"


def _gpu_idle_rules(report) -> list:
    recommendations = []
    metrics = report.metrics
    sample = report.cpu_sample
    idle = 1.0 - metrics.gpu_utilization
    if idle > 0.2 and sample.sync_s > 0.1 * metrics.iteration_time_s:
        recommendations.append(
            Recommendation(
                priority=1,
                rule="launch-bound recurrence",
                advice="fuse RNN cells (cuDNN fused path) to eliminate "
                "per-timestep host synchronization; see "
                "repro.optimizations.fusion",
                evidence=f"GPU idle {idle * 100:.0f}% with "
                f"{sample.sync_s * 1e3:.0f} ms/iteration of host syncs",
            )
        )
    elif idle > 0.2 and sample.environment_s > 0:
        recommendations.append(
            Recommendation(
                priority=1,
                rule="environment-bound training",
                advice="parallelize environment simulation further or batch "
                "inference across actors",
                evidence=f"GPU idle {idle * 100:.0f}% while environment "
                f"workers burn {sample.environment_s:.2f} core-s/iteration",
            )
        )
    return recommendations


def _fp32_rules(report) -> list:
    metrics = report.metrics
    if metrics.gpu_utilization > 0.85 and metrics.fp32_utilization < 0.25:
        return [
            Recommendation(
                priority=2,
                rule="shape-starved kernels",
                advice="kernels are busy but tiny (narrow GEMMs); increase "
                "the mini-batch or fuse steps into batched GEMMs",
                evidence=f"GPU busy {metrics.gpu_utilization * 100:.0f}% but "
                f"FP32 only {metrics.fp32_utilization * 100:.0f}%",
            )
        ]
    return []


def _kernel_rules(report) -> list:
    rows = report.kernel_trace.longest_low_utilization_kernels(3)
    heavy = [row for row in rows if row.duration_share > 0.05]
    if heavy:
        names = ", ".join(row.kernel_name.split("<")[0] for row in heavy)
        return [
            Recommendation(
                priority=3,
                rule="low-utilization hot kernels",
                advice="these kernels are the top acceleration candidates "
                "(Tables 5/6); batch-normalization variants respond to "
                "kernel fusion with adjacent elementwise ops",
                evidence=f"{names} hold "
                f"{sum(r.duration_share for r in heavy) * 100:.0f}% of GPU time "
                "below average FP32 utilization",
            )
        ]
    return []


def _memory_rules(report) -> list:
    recommendations = []
    fraction = report.memory.feature_map_fraction
    if fraction > 0.6:
        recommendations.append(
            Recommendation(
                priority=4,
                rule="feature-map-dominated footprint",
                advice="reduce training memory via feature-map offloading "
                "(repro.optimizations.offload), recomputation, or FP16 "
                "storage (repro.optimizations.precision) — weights-focused "
                "compression will not help training",
                evidence=f"feature maps hold {fraction * 100:.0f}% of the "
                f"{report.memory.total_gib:.1f} GiB footprint",
            )
        )
    return recommendations


def _pipeline_rules(report) -> list:
    sample = report.cpu_sample
    if sample.pipeline_s > 0.5 * sample.iteration_time_s:
        return [
            Recommendation(
                priority=5,
                rule="input-pipeline pressure",
                advice="add reader threads or pre-decode the dataset "
                "(CNTK-style packed readers run at ~0.1% CPU)",
                evidence=f"decode/augment costs {sample.pipeline_s:.2f} "
                f"core-s per {sample.iteration_time_s:.2f} s iteration",
            )
        ]
    return []


def _workload_identity(metrics):
    """Map the report's display strings back to registry identities:
    ``(model key, framework key, GPUSpec)`` — or ``None`` when any leg
    does not resolve (an ad-hoc graph, an unregistered device)."""
    from repro.frameworks.registry import framework_catalog
    from repro.hardware.devices import gpu_catalog
    from repro.models.registry import model_catalog

    model_key = next(
        (
            spec.key
            for spec in model_catalog().values()
            if spec.display_name == metrics.model
        ),
        None,
    )
    framework_key = next(
        (
            framework.key
            for framework in framework_catalog().values()
            if framework.name == metrics.framework
        ),
        None,
    )
    gpu = next(
        (gpu for gpu in gpu_catalog().values() if gpu.name == metrics.device),
        None,
    )
    if model_key is None or framework_key is None or gpu is None:
        return None
    return model_key, framework_key, gpu


def _tuned_config_rules(report, cache=None) -> list:
    """Cite the autotuner's measured best config when one is cached for
    this exact workload; silent otherwise (the heuristics stand in)."""
    identity = _workload_identity(report.metrics)
    if identity is None:
        return []
    model_key, framework_key, gpu = identity
    from repro.engine.cache import ResultCache
    from repro.tune.store import load_tuned

    try:
        store = cache if cache is not None else ResultCache(None)
        doc = load_tuned(
            store, model_key, framework_key, report.metrics.batch_size, gpu=gpu
        )
    except OSError:
        return []
    if not doc or not doc.get("winner"):
        return []
    winner = doc["winner"]
    makespan = winner.get("makespan_s") or 0.0
    speedup = doc["baseline_makespan_s"] / makespan if makespan > 0.0 else 1.0
    evidence = f"tbd tune measured a x{speedup:.2f} modeled makespan speedup"
    confirmation = doc.get("confirmation")
    if confirmation:
        evidence += (
            f", A/B-confirmed x{confirmation['speedup']:.2f} "
            f"(p={confirmation['p_improvement']:.4f}, "
            f"{confirmation['verdict']})"
        )
    return [
        Recommendation(
            priority=1,
            rule="measured tuned config",
            advice=f"apply the tuned transform pipeline "
            f"'{winner['spec']}' (tbd sweep --transforms "
            f"'{winner['spec']}'); retuning is a cache hit",
            evidence=evidence,
        )
    ]


def advise(report, distributed_profile=None, cache=None) -> list:
    """Produce ranked recommendations for one analysis report.

    Args:
        report: an :class:`~repro.core.analysis.AnalysisReport`.
        distributed_profile: optional
            :class:`~repro.distributed.DistributedProfile` for the same
            model, to diagnose communication exposure.
        cache: optional :class:`~repro.engine.cache.ResultCache` holding
            tuned configs (default: the default cache location), so a
            workload ``tbd tune`` has measured gets its tuned pipeline
            cited ahead of the heuristics.
    """
    recommendations = []
    recommendations.extend(_tuned_config_rules(report, cache=cache))
    recommendations.extend(_gpu_idle_rules(report))
    recommendations.extend(_fp32_rules(report))
    recommendations.extend(_kernel_rules(report))
    recommendations.extend(_memory_rules(report))
    recommendations.extend(_pipeline_rules(report))
    if distributed_profile is not None and (
        distributed_profile.communication_fraction > 0.3
    ):
        recommendations.append(
            Recommendation(
                priority=1,
                rule="communication-bound scaling",
                advice="increase fabric bandwidth (InfiniBand/NVLink) or "
                "reduce exchanged bytes (FP16 gradients, all-reduce); see "
                "examples/distributed_whatif.py",
                evidence=f"{distributed_profile.communication_fraction * 100:.0f}% "
                f"of each iteration is exposed gradient exchange on "
                f"{distributed_profile.configuration}",
            )
        )
    return sorted(recommendations, key=lambda r: r.priority)
