"""Text renderers: turn experiment data into paper-style tables and
ASCII figure series.

Every experiment module in :mod:`repro.experiments` returns plain data
structures; these helpers render them the way the paper prints them, so a
benchmark run's console output can be compared to the paper side by side.
"""

from __future__ import annotations


def render_table(headers, rows, title: str = "") -> str:
    """Monospace table with auto-sized columns."""
    if not headers:
        raise ValueError("need at least one column")
    cells = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")

    def fmt(row):
        return "  ".join(value.ljust(width) for value, width in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


def render_series(name: str, xs, ys, x_label: str = "x", y_fmt: str = "{:.1f}") -> str:
    """One figure series as an aligned x->y listing."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    pairs = "  ".join(
        f"{x}:{y_fmt.format(y) if y is not None else 'OOM'}" for x, y in zip(xs, ys)
    )
    return f"{name:28s} {x_label}-> {pairs}"


def render_bar_chart(title: str, labels, values, width: int = 40, unit: str = "") -> str:
    """ASCII horizontal bar chart (used for Figs. 7 and 10)."""
    if len(labels) != len(values):
        raise ValueError("labels and values differ in length")
    peak = max(values) if values else 1.0
    lines = [title]
    label_width = max((len(str(label)) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if peak > 0 else ""
        lines.append(f"{str(label).ljust(label_width)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_stacked_memory(title: str, profiles) -> str:
    """Fig. 9-style memory breakdown listing for a batch sweep."""
    lines = [title]
    for profile in profiles:
        lines.append("  " + profile.format_row())
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """Render a 0-1 fraction as the paper prints percentages."""
    return f"{value * 100:.2f}%"
