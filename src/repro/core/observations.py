"""The paper's 13 numbered observations as executable checks.

Each check runs the relevant simulated experiment and returns an
:class:`ObservationResult` stating whether the phenomenon reproduces.  The
integration test suite asserts all of them hold; ``verify_all()`` powers
the `examples/observations_report.py` example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.suite import TBDSuite, standard_suite
from repro.distributed import DataParallelTrainer, standard_configurations
from repro.hardware.devices import TITAN_XP
from repro.hardware.memory import AllocationTag, OutOfMemoryError
from repro.profiling.kernel_trace import trace_from_profile
from repro.profiling.memory_profiler import MemoryProfiler


@dataclass(frozen=True)
class ObservationResult:
    """Outcome of one observation check."""

    number: int
    title: str
    holds: bool
    evidence: str


def _sweep_throughputs(suite, model, framework):
    points = [p for p in suite.sweep(model, framework) if not p.oom]
    return [(p.batch_size, p.metrics) for p in points]


def observation_1(suite: TBDSuite) -> ObservationResult:
    """Performance increases with the mini-batch size for all models."""
    failures = []
    for spec, framework in suite.configurations():
        if len(spec.batch_sizes) < 2:
            continue
        series = _sweep_throughputs(suite, spec.key, framework.key)
        values = [metrics.throughput for _, metrics in series]
        if values != sorted(values):
            failures.append(f"{spec.key}/{framework.key}")
    return ObservationResult(
        1,
        "throughput increases with mini-batch size",
        holds=not failures,
        evidence="monotone for all sweeps" if not failures else f"violations: {failures}",
    )


def observation_2(suite: TBDSuite) -> ObservationResult:
    """RNN-based models do not saturate within GPU memory limits; CNNs do."""
    nmt = _sweep_throughputs(suite, "nmt", "tensorflow")
    rnn_gain = nmt[-1][1].throughput / nmt[-2][1].throughput
    resnet = _sweep_throughputs(suite, "resnet-50", "mxnet")
    cnn_gain = resnet[-1][1].throughput / resnet[-2][1].throughput
    holds = rnn_gain > 1.25 and cnn_gain < 1.10
    return ObservationResult(
        2,
        "RNN throughput keeps scaling with batch; CNNs saturate",
        holds=holds,
        evidence=f"NMT last-doubling gain {rnn_gain:.2f}x vs "
        f"ResNet-50 {cnn_gain:.2f}x",
    )


def observation_3(suite: TBDSuite) -> ObservationResult:
    """Framework rankings flip across applications."""
    resnet_mx = suite.run("resnet-50", "mxnet").throughput
    resnet_tf = suite.run("resnet-50", "tensorflow").throughput
    nmt_tf = suite.run("nmt", "tensorflow", 128).throughput
    sockeye_mx = suite.run("sockeye", "mxnet", 64).throughput
    holds = resnet_mx > resnet_tf and nmt_tf > sockeye_mx
    return ObservationResult(
        3,
        "no framework dominates across applications",
        holds=holds,
        evidence=f"image: MXNet {resnet_mx:.0f} vs TF {resnet_tf:.0f}; "
        f"translation: TF {nmt_tf:.0f} vs MXNet {sockeye_mx:.0f}",
    )


def observation_4(suite: TBDSuite) -> ObservationResult:
    """Larger mini-batches raise GPU compute utilization."""
    series = _sweep_throughputs(suite, "resnet-50", "tensorflow")
    first = series[0][1].gpu_utilization
    last = series[-1][1].gpu_utilization
    return ObservationResult(
        4,
        "mini-batch size large enough keeps the GPU busy",
        holds=last >= first,
        evidence=f"GPU util {first * 100:.0f}% @ b={series[0][0]} -> "
        f"{last * 100:.0f}% @ b={series[-1][0]}",
    )


def observation_5(suite: TBDSuite) -> ObservationResult:
    """LSTM models cannot drive up GPU utilization; non-RNN models and
    Deep Speech 2 (vanilla RNN) reach ~95%+."""
    lstm = suite.run("nmt", "tensorflow", 128).gpu_utilization
    cnn = suite.run("resnet-50", "mxnet", 32).gpu_utilization
    ds2 = suite.run("deep-speech-2", "mxnet", 4).gpu_utilization
    transformer = suite.run("transformer", "tensorflow", 2048).gpu_utilization
    holds = lstm < 0.75 and cnn > 0.9 and ds2 > 0.9 and transformer > 0.85
    return ObservationResult(
        5,
        "low GPU utilization is specific to LSTM layers",
        holds=holds,
        evidence=f"NMT {lstm * 100:.0f}% vs ResNet {cnn * 100:.0f}%, "
        f"DS2 {ds2 * 100:.0f}%, Transformer {transformer * 100:.0f}%",
    )


def observation_6(suite: TBDSuite) -> ObservationResult:
    """Larger mini-batches raise FP32 utilization."""
    series = _sweep_throughputs(suite, "inception-v3", "mxnet")
    values = [metrics.fp32_utilization for _, metrics in series]
    return ObservationResult(
        6,
        "FP32 utilization grows with mini-batch size",
        holds=values == sorted(values),
        evidence=f"{[round(v * 100) for v in values]}% across "
        f"{[b for b, _ in series]}",
    )


def observation_7(suite: TBDSuite) -> ObservationResult:
    """RNN-based models show much lower FP32 utilization than others."""
    seq2seq = suite.run("sockeye", "mxnet", 64).fp32_utilization
    ds2 = suite.run("deep-speech-2", "mxnet", 4).fp32_utilization
    cnn = suite.run("resnet-50", "mxnet", 32).fp32_utilization
    holds = seq2seq < 0.65 * cnn and ds2 < 0.25 * cnn
    return ObservationResult(
        7,
        "RNN-based models have low FP32 utilization",
        holds=holds,
        evidence=f"Sockeye {seq2seq * 100:.0f}%, DS2 {ds2 * 100:.0f}% vs "
        f"ResNet-50 {cnn * 100:.0f}%",
    )


def observation_8(suite: TBDSuite) -> ObservationResult:
    """Long-duration, low-FP32 kernels exist even in optimized models, and
    batch normalization kernels top the list (Tables 5/6)."""
    session = suite.session("resnet-50", "mxnet")
    profile = session.run_iteration(32)
    rows = trace_from_profile(profile).longest_low_utilization_kernels(5)
    average = trace_from_profile(profile).average_fp32_utilization
    has_bn = any("bn_" in row.kernel_name for row in rows[:2])
    below = all(row.fp32_utilization < average for row in rows)
    return ObservationResult(
        8,
        "long kernels with below-average FP32 utilization (BN leads)",
        holds=has_bn and below and len(rows) == 5,
        evidence="; ".join(
            f"{row.kernel_name.split('<')[0]} {row.duration_share * 100:.1f}% "
            f"@ {row.fp32_utilization * 100:.0f}%"
            for row in rows[:3]
        ),
    )


def observation_9(suite: TBDSuite) -> ObservationResult:
    """CPU utilization is low across the suite (<15% for all but one model,
    which is A3C)."""
    values = {}
    for spec, framework in suite.configurations():
        metrics = suite.run(spec.key, framework.key)
        values[f"{spec.key}/{framework.key}"] = metrics.cpu_utilization
    over_15 = [k for k, v in values.items() if v > 0.15]
    holds = len(over_15) <= 1 and all("a3c" in k for k in over_15)
    peak = max(values.items(), key=lambda item: item[1])
    return ObservationResult(
        9,
        "CPU utilization is low in DNN training",
        holds=holds,
        evidence=f"max {peak[0]} at {peak[1] * 100:.1f}%; "
        f"{len(over_15)} config(s) above 15%",
    )


def observation_10(suite: TBDSuite) -> ObservationResult:
    """Titan Xp raises throughput but lowers both utilizations."""
    xp_suite = TBDSuite(gpu=TITAN_XP)
    p4 = suite.run("resnet-50", "mxnet", 32)
    xp = xp_suite.run("resnet-50", "mxnet", 32)
    holds = (
        xp.throughput > p4.throughput
        and xp.gpu_utilization < p4.gpu_utilization
        and xp.fp32_utilization < p4.fp32_utilization
    )
    return ObservationResult(
        10,
        "more advanced GPUs are less well utilized by the same kernels",
        holds=holds,
        evidence=f"throughput x{xp.throughput / p4.throughput:.2f}, "
        f"fp32 {p4.fp32_utilization * 100:.0f}%->{xp.fp32_utilization * 100:.0f}%",
    )


def observation_11(suite: TBDSuite) -> ObservationResult:
    """Feature maps consume 62-89%+ of training memory."""
    profiler = MemoryProfiler(gpu=suite.gpu)
    fractions = {}
    for spec, framework in suite.configurations():
        profile = profiler.profile(spec.key, framework.key, spec.reference_batch)
        fractions[f"{spec.key}/{framework.key}"] = profile.feature_map_fraction
    low = min(fractions.values())
    high = max(fractions.values())
    return ObservationResult(
        11,
        "feature maps dominate the memory footprint",
        holds=low > 0.5 and high < 0.95,
        evidence=f"feature-map share spans {low * 100:.0f}%-{high * 100:.0f}%",
    )


def observation_12(suite: TBDSuite) -> ObservationResult:
    """Memory scales ~linearly with batch via feature maps, so trading
    batch size for workspace/depth is viable."""
    profiler = MemoryProfiler(gpu=suite.gpu)
    small = profiler.profile("resnet-50", "mxnet", 8)
    large = profiler.profile("resnet-50", "mxnet", 32)
    fm_ratio = large.gib(AllocationTag.FEATURE_MAPS) / small.gib(
        AllocationTag.FEATURE_MAPS
    )
    weight_ratio = large.gib(AllocationTag.WEIGHTS) / small.gib(AllocationTag.WEIGHTS)
    holds = 3.5 <= fm_ratio <= 4.5 and abs(weight_ratio - 1.0) < 0.01
    return ObservationResult(
        12,
        "feature-map memory scales linearly with batch; weights constant",
        holds=holds,
        evidence=f"4x batch -> feature maps x{fm_ratio:.2f}, weights x{weight_ratio:.2f}",
    )


def observation_13(suite: TBDSuite) -> ObservationResult:
    """Scaling needs bandwidth: PCIe and InfiniBand scale, Ethernet hurts."""
    configs = standard_configurations()
    throughputs = {}
    for label in ("1M1G", "2M1G (ethernet)", "2M1G (infiniband)", "1M2G", "1M4G"):
        trainer = DataParallelTrainer("resnet-50", "mxnet", configs[label])
        throughputs[label] = trainer.run_iteration(32).throughput
    holds = (
        throughputs["2M1G (ethernet)"] < throughputs["1M1G"]
        and throughputs["2M1G (infiniband)"] > 1.5 * throughputs["1M1G"]
        and throughputs["1M4G"] > 3.0 * throughputs["1M1G"]
    )
    return ObservationResult(
        13,
        "network bandwidth is critical for distributed scaling",
        holds=holds,
        evidence=", ".join(f"{k}: {v:.0f}" for k, v in throughputs.items()),
    )


ALL_OBSERVATIONS = (
    observation_1,
    observation_2,
    observation_3,
    observation_4,
    observation_5,
    observation_6,
    observation_7,
    observation_8,
    observation_9,
    observation_10,
    observation_11,
    observation_12,
    observation_13,
)


#: verify_all() results memoized per GPU.  The checks are pure functions
#: of the (stateless) suite and rerunning all 13 costs seconds of
#: simulation, while at least four surfaces (CLI, HTML report, examples,
#: tests) want the same answer in one process.
_VERIFY_CACHE: dict = {}


def verify_all(suite: TBDSuite | None = None, use_cache: bool = True) -> list:
    """Run every observation check; returns the 13 results in order.

    Results are memoized per GPU; pass ``use_cache=False`` to force a
    fresh evaluation (e.g. after monkeypatching simulator internals).
    """
    suite = suite if suite is not None else standard_suite()
    key = suite.gpu.name
    if not use_cache:
        return [check(suite) for check in ALL_OBSERVATIONS]
    if key not in _VERIFY_CACHE:
        _VERIFY_CACHE[key] = [check(suite) for check in ALL_OBSERVATIONS]
    return list(_VERIFY_CACHE[key])
