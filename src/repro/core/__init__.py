"""The TBD benchmark suite and analysis pipeline — the paper's primary
contribution, as a library.

- :mod:`repro.core.suite` — the suite object: Table 2's models x frameworks
  x datasets, runnable end to end.
- :mod:`repro.core.metrics` — the paper's metric definitions (Eqs. 1-3 and
  throughput, Section 3.4.3).
- :mod:`repro.core.analysis` — the end-to-end analysis pipeline of Fig. 3:
  comparability checks, warm-up exclusion, sampled profiling, merged report.
- :mod:`repro.core.observations` — the paper's 13 numbered observations as
  executable checks against simulator output.
- :mod:`repro.core.report` — text renderers for every table and figure.
"""

from repro.core.metrics import (
    IterationMetrics,
    cpu_utilization,
    fp32_utilization,
    gpu_utilization,
    throughput,
)
from repro.core.suite import TBDSuite, standard_suite
from repro.core.analysis import AnalysisPipeline, AnalysisReport

__all__ = [
    "TBDSuite",
    "standard_suite",
    "AnalysisPipeline",
    "AnalysisReport",
    "IterationMetrics",
    "throughput",
    "gpu_utilization",
    "fp32_utilization",
    "cpu_utilization",
]
