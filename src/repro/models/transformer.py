"""Transformer (Vaswani et al., 2017) base configuration for IWSLT'15.

12 layers total (6 encoder + 6 decoder, matching Table 2), model dimension
512, 8 heads, feed-forward inner dimension 2048, shared 17,188-token
vocabulary.  Following the paper's Fig. 4d/6d x-axes (64 .. 4096), the
mini-batch is counted in **tokens**: a "sample" for Transformer throughput
is one token.

Unlike the LSTM Seq2Seq, every attention/FFN layer lowers to a handful of
*large* GEMMs per iteration, so GPU compute utilization is high even though
the application domain (machine translation) is the same — the paper's
evidence that low utilization is a property of the recurrent layer type,
not of the task (Observation 5).
"""

from __future__ import annotations

from repro.graph.layer import LayerGraph
from repro.graph.lowering import (
    attention_layer,
    dropout_layer,
    embedding_layer,
    feedforward_layer,
    layernorm_layer,
    residual_add_layer,
    softmax_cross_entropy_kernels,
)
from repro.kernels.gemm import gemm
from repro.graph.layer import Layer

VOCAB_SIZE = 17188
MODEL_DIM = 512
HEADS = 8
FFN_DIM = 2048
ENCODER_LAYERS = 6
DECODER_LAYERS = 6
SEQ_LEN = 25  # average IWSLT sentence length after subword splitting
#: The tensor2tensor-style trainer pads every sentence in a token batch to
#: the bucket boundary, so activation buffers are sized well beyond the
#: average-length tokens actually computed.
PAD_STASH_FACTOR = 3


def _encoder_block(graph: LayerGraph, name: str, batch: int, seq: int) -> None:
    tokens = batch * seq
    graph.add(attention_layer(f"{name}_self_attn", batch, HEADS, seq, seq, MODEL_DIM))
    graph.add(residual_add_layer(f"{name}_attn_residual", tokens * MODEL_DIM))
    graph.add(layernorm_layer(f"{name}_attn_ln", tokens * MODEL_DIM, MODEL_DIM))
    graph.add(feedforward_layer(f"{name}_ffn", tokens, MODEL_DIM, FFN_DIM))
    graph.add(residual_add_layer(f"{name}_ffn_residual", tokens * MODEL_DIM))
    graph.add(layernorm_layer(f"{name}_ffn_ln", tokens * MODEL_DIM, MODEL_DIM))
    graph.add(dropout_layer(f"{name}_dropout", tokens * MODEL_DIM))


def _decoder_block(graph: LayerGraph, name: str, batch: int, seq: int) -> None:
    tokens = batch * seq
    graph.add(
        attention_layer(f"{name}_masked_attn", batch, HEADS, seq, seq, MODEL_DIM)
    )
    graph.add(residual_add_layer(f"{name}_masked_residual", tokens * MODEL_DIM))
    graph.add(layernorm_layer(f"{name}_masked_ln", tokens * MODEL_DIM, MODEL_DIM))
    graph.add(
        attention_layer(f"{name}_cross_attn", batch, HEADS, seq, seq, MODEL_DIM)
    )
    graph.add(residual_add_layer(f"{name}_cross_residual", tokens * MODEL_DIM))
    graph.add(layernorm_layer(f"{name}_cross_ln", tokens * MODEL_DIM, MODEL_DIM))
    graph.add(feedforward_layer(f"{name}_ffn", tokens, MODEL_DIM, FFN_DIM))
    graph.add(residual_add_layer(f"{name}_ffn_residual", tokens * MODEL_DIM))
    graph.add(layernorm_layer(f"{name}_ffn_ln", tokens * MODEL_DIM, MODEL_DIM))
    graph.add(dropout_layer(f"{name}_dropout", tokens * MODEL_DIM))


def build_transformer(batch_tokens: int, seq_len: int = SEQ_LEN) -> LayerGraph:
    """Build the Transformer for a token-counted mini-batch.

    ``batch_tokens`` is the total number of tokens per iteration (the
    quantity the paper sweeps from 64 to 4096+); the sentence count is
    derived from the average sequence length.
    """
    if batch_tokens < seq_len:
        # Tiny token budgets still process one (short) sentence.
        seq_len = max(batch_tokens, 4)
    # A token budget covers source + target sides of each sentence pair.
    sentences = max(1, batch_tokens // (2 * seq_len))
    graph = LayerGraph(
        model_name="Transformer",
        batch_size=batch_tokens,
        input_bytes=batch_tokens * 2 * 4,  # source + target token ids
        samples_per_iteration=sentences * seq_len * 1.0,
    )
    graph.add(
        embedding_layer("src_embedding", sentences * seq_len, VOCAB_SIZE, MODEL_DIM)
    )
    for index in range(ENCODER_LAYERS):
        _encoder_block(graph, f"encoder{index}", sentences, seq_len)
    graph.add(
        embedding_layer("tgt_embedding", sentences * seq_len, VOCAB_SIZE, MODEL_DIM)
    )
    for index in range(DECODER_LAYERS):
        _decoder_block(graph, f"decoder{index}", sentences, seq_len)

    tokens = sentences * seq_len
    graph.add(
        Layer(
            name="output_projection",
            kind="dense",
            weight_elements=MODEL_DIM * VOCAB_SIZE,
            output_elements=2 * tokens * VOCAB_SIZE,
            forward_kernels=[gemm(tokens, VOCAB_SIZE, MODEL_DIM, name="logits_sgemm")],
            backward_kernels=[
                gemm(tokens, MODEL_DIM, VOCAB_SIZE, name="logits_sgemm_dgrad"),
                gemm(MODEL_DIM, VOCAB_SIZE, tokens, name="logits_sgemm_wgrad"),
            ],
        )
    )
    graph.extra_kernels = softmax_cross_entropy_kernels(tokens, VOCAB_SIZE)
    for layer in graph.layers:
        if layer.name != "output_projection":
            layer.output_elements *= PAD_STASH_FACTOR
    return graph
