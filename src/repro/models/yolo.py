"""YOLOv2 / YOLO9000 (Redmon & Farhadi, 2016) — the extension the paper
explicitly plans:

    "In the future, we plan to add YOLO9000, a network recently proposed
    for the real-time detection of objects, to our benchmark suite."
    (Section 3.1.2)

The network is Darknet-19 (19 conv layers alternating 3x3/1x1 with
channel-halving bottlenecks, batch-norm throughout, five maxpool stages)
plus the detection head: a passthrough (reorg) connection and a final
1x1 conv predicting 5 boxes x (5 + classes) per cell.  Unlike Faster
R-CNN's two-network iteration, YOLO trains as a single-shot network with
ordinary mini-batches — the property that makes it fast.
"""

from __future__ import annotations

from repro.graph.layer import Layer, LayerGraph
from repro.graph.lowering import (
    activation_layer,
    batchnorm_layer,
    conv_layer,
    pool_layer,
)
import repro.kernels.elementwise as ew
import repro.kernels.misc as misc

IMAGE_SIZE = 416
ANCHORS = 5
CLASSES = 20  # Pascal VOC detection head
_INPUT_ELEMENTS_PER_SAMPLE = 3 * IMAGE_SIZE * IMAGE_SIZE

#: Darknet-19 trunk: (out_channels, kernel) per conv, 'M' = maxpool.
_DARKNET19 = (
    (32, 3), "M",
    (64, 3), "M",
    (128, 3), (64, 1), (128, 3), "M",
    (256, 3), (128, 1), (256, 3), "M",
    (512, 3), (256, 1), (512, 3), (256, 1), (512, 3), "M",
    (1024, 3), (512, 1), (1024, 3), (512, 1), (1024, 3),
)


def _conv_bn_leaky(graph, name, batch, in_channels, out_channels, h, w, kernel,
                   first_layer=False):
    from repro.kernels.conv import ConvShape

    shape = ConvShape(
        batch, in_channels, out_channels, h, w, kernel, kernel, 1, kernel // 2
    )
    graph.add(conv_layer(f"{name}_conv", shape, first_layer=first_layer))
    elements = batch * out_channels * shape.out_h * shape.out_w
    graph.add(batchnorm_layer(f"{name}_bn", elements, out_channels))
    graph.add(activation_layer(f"{name}_leaky", elements, kind="relu"))
    return shape.out_h, shape.out_w


def build_yolo_v2(batch_size: int) -> LayerGraph:
    """YOLOv2 with the Darknet-19 backbone on 416x416 inputs."""
    graph = LayerGraph(
        model_name="YOLOv2",
        batch_size=batch_size,
        input_bytes=batch_size * _INPUT_ELEMENTS_PER_SAMPLE * 4,
    )
    channels, h, w = 3, IMAGE_SIZE, IMAGE_SIZE
    index = 0
    passthrough_elements = 0
    for entry in _DARKNET19:
        if entry == "M":
            pooled_h, pooled_w = h // 2, w // 2
            graph.add(
                pool_layer(
                    f"pool{index}",
                    batch_size * channels * h * w,
                    batch_size * channels * pooled_h * pooled_w,
                    window=4,
                )
            )
            h, w = pooled_h, pooled_w
            continue
        out_channels, kernel = entry
        h, w = _conv_bn_leaky(
            graph,
            f"darknet{index}",
            batch_size,
            channels,
            out_channels,
            h,
            w,
            kernel,
            first_layer=(index == 0),
        )
        channels = out_channels
        index += 1
        if channels == 512 and h == IMAGE_SIZE // 16:
            # The 26x26x512 map feeds the passthrough connection.
            passthrough_elements = batch_size * channels * h * w

    # Detection head: two 3x3 convs, the reorg'd passthrough concat, and the
    # final 1x1 predictor.
    for head_index in (0, 1):
        h, w = _conv_bn_leaky(
            graph, f"head{head_index}", batch_size, channels, 1024, h, w, 3
        )
        channels = 1024
    graph.add(
        Layer(
            name="reorg_passthrough",
            kind="elementwise",
            output_elements=passthrough_elements,
            forward_kernels=[
                ew.elementwise(passthrough_elements, name="reorg_kernel")
            ],
            backward_kernels=[
                ew.elementwise(passthrough_elements, name="reorg_bw_kernel")
            ],
        )
    )
    channels += 2048  # 26x26x512 reorganized to 13x13x2048
    h2, w2 = _conv_bn_leaky(graph, "head2", batch_size, channels, 1024, h, w, 3)
    predictions = ANCHORS * (5 + CLASSES)
    from repro.kernels.conv import ConvShape

    final = ConvShape(batch_size, 1024, predictions, h2, w2, 1, 1, 1, 0)
    graph.add(conv_layer("detector", final))
    detection_cells = batch_size * h2 * w2
    graph.extra_kernels = [
        misc.cross_entropy_loss(detection_cells * ANCHORS, 5 + CLASSES),
        misc.cross_entropy_loss(detection_cells * ANCHORS, 5 + CLASSES, backward=True),
        ew.elementwise(
            detection_cells * predictions,
            flops_per_element=6.0,
            name="yolo_box_loss_kernel",
        ),
    ]
    return graph
