"""Faster R-CNN (Ren et al., 2015) with a ResNet-101 backbone on Pascal VOC.

One training iteration processes a single ~600x1000 image (the mini-batch
is fixed at one image per GPU, which is why the paper reports no batch
sweep for this model): the shared ResNet-101 convolution stack runs up to
conv4, the Region Proposal Network scores ~17k anchors, 128 sampled ROIs
are pooled and pushed through the conv5 stage and the detection heads, and
everything backpropagates through the shared stack.

The proposal machinery (NMS, anchor bookkeeping, ROI sampling) runs on the
CPU in both the paper's TensorFlow and MXNet implementations — markedly
slower in TensorFlow (Fig. 7 shows 13.25% CPU utilization for TF vs. 3.64%
for MXNet); that asymmetry is encoded in the model registry's
per-framework extra CPU costs.
"""

from __future__ import annotations

from repro.graph.layer import Layer, LayerGraph
from repro.graph.lowering import (
    activation_layer,
    conv_layer,
    dense_layer,
    softmax_cross_entropy_kernels,
)
from repro.kernels.conv import ConvShape
import repro.kernels.elementwise as ew
from repro.models.resnet import RESNET_101_STAGES, resnet_conv_stack

IMAGE_H = 600
IMAGE_W = 1000
RPN_CHANNELS = 512
ANCHORS_PER_CELL = 9
SAMPLED_ROIS = 128
ROI_POOL = 7
VOC_CLASSES = 21  # 20 classes + background
_INPUT_ELEMENTS_PER_SAMPLE = 3 * IMAGE_H * IMAGE_W


def _rpn(graph: LayerGraph, batch: int, channels: int, h: int, w: int) -> None:
    """Region Proposal Network: 3x3 conv + two 1x1 sibling heads."""
    conv = ConvShape(batch, channels, RPN_CHANNELS, h, w, 3, 3, 1, 1)
    graph.add(conv_layer("rpn_conv", conv))
    elements = batch * RPN_CHANNELS * h * w
    graph.add(activation_layer("rpn_relu", elements))
    cls = ConvShape(batch, RPN_CHANNELS, 2 * ANCHORS_PER_CELL, h, w, 1, 1, 1, 0)
    graph.add(conv_layer("rpn_cls_score", cls))
    reg = ConvShape(batch, RPN_CHANNELS, 4 * ANCHORS_PER_CELL, h, w, 1, 1, 1, 0)
    graph.add(conv_layer("rpn_bbox_pred", reg))


def _roi_head(graph: LayerGraph, rois: int, in_channels: int) -> None:
    """Per-ROI conv5 stage + classification and box-regression heads."""
    # ROI pooling: gather the pooled 7x7 windows for every sampled ROI.
    pooled_elements = rois * in_channels * ROI_POOL * ROI_POOL
    graph.add(
        Layer(
            name="roi_pooling",
            kind="pooling",
            output_elements=pooled_elements,
            forward_kernels=[
                ew.elementwise(pooled_elements, reads=2, name="roi_pool_kernel")
            ],
            backward_kernels=[
                ew.elementwise(
                    pooled_elements, reads=1, writes=2, name="roi_pool_bw_kernel"
                )
            ],
        )
    )
    # conv5 stage applied per ROI (3 bottleneck blocks at 7x7).
    channels = in_channels
    for block in range(3):
        for index, (out_c, k) in enumerate(((512, 1), (512, 3), (2048, 1))):
            shape = ConvShape(
                rois, channels, out_c, ROI_POOL, ROI_POOL, k, k, 1, k // 2
            )
            graph.add(conv_layer(f"roi_conv5_{block}_{index}", shape))
            elements = rois * out_c * ROI_POOL * ROI_POOL
            graph.add(activation_layer(f"roi_relu5_{block}_{index}", elements))
            channels = out_c
    graph.add(
        Layer(
            name="roi_avgpool",
            kind="pooling",
            output_elements=rois * channels,
            forward_kernels=[
                ew.pooling_forward(
                    rois * channels * ROI_POOL * ROI_POOL,
                    rois * channels,
                    window=ROI_POOL * ROI_POOL,
                )
            ],
            backward_kernels=[
                ew.pooling_backward(
                    rois * channels * ROI_POOL * ROI_POOL,
                    rois * channels,
                    window=ROI_POOL * ROI_POOL,
                )
            ],
        )
    )
    graph.add(dense_layer("cls_score", rois, channels, VOC_CLASSES))
    graph.add(dense_layer("bbox_pred", rois, channels, 4 * VOC_CLASSES))


def build_faster_rcnn(batch_size: int = 1) -> LayerGraph:
    """Faster R-CNN; ``batch_size`` must be 1 (one image per iteration)."""
    if batch_size != 1:
        raise ValueError(
            "Faster R-CNN trains one image per GPU per iteration "
            f"(got batch_size={batch_size}); see paper Section 4.2.1"
        )
    graph = LayerGraph(
        model_name="Faster R-CNN",
        batch_size=1,
        input_bytes=_INPUT_ELEMENTS_PER_SAMPLE * 4,
    )
    channels, h, w = resnet_conv_stack(
        graph,
        1,
        IMAGE_H,
        IMAGE_W,
        RESNET_101_STAGES,
        prefix="backbone",
        stop_after_stage=3,
    )
    _rpn(graph, 1, channels, h, w)
    _roi_head(graph, SAMPLED_ROIS, channels)
    graph.extra_kernels = softmax_cross_entropy_kernels(SAMPLED_ROIS, VOC_CLASSES)
    return graph
