"""Inception-v3 (Szegedy et al., 2016) on 299x299 ImageNet inputs.

The architecture follows the published v3 topology: a convolutional stem,
three 35x35 Inception-A modules, a grid reduction, four 17x17 Inception-B
modules with factorized 7x7 convolutions, another reduction, two 8x8
Inception-C modules, global pooling and the 1000-way classifier — 42
weighted layers, matching Table 2.
"""

from __future__ import annotations

from repro.graph.layer import LayerGraph
from repro.graph.lowering import (
    activation_layer,
    batchnorm_layer,
    conv_layer,
    dense_layer,
    pool_layer,
    softmax_cross_entropy_kernels,
)
from repro.kernels.conv import ConvShape

_IMAGENET_CLASSES = 1000
_INPUT_ELEMENTS_PER_SAMPLE = 3 * 299 * 299


def _conv_bn_relu(
    graph: LayerGraph,
    name: str,
    batch: int,
    in_channels: int,
    out_channels: int,
    h: int,
    w: int,
    kernel,
    stride: int = 1,
    padding: int | None = None,
    first_layer: bool = False,
) -> tuple:
    """Conv + BN + ReLU unit; returns (out_h, out_w)."""
    kernel_h, kernel_w = kernel if isinstance(kernel, tuple) else (kernel, kernel)
    if padding is None:
        # 'same' padding (possibly asymmetric for 1x7 / 7x1 kernels).
        shape = ConvShape(
            batch,
            in_channels,
            out_channels,
            h,
            w,
            kernel_h,
            kernel_w,
            stride,
            padding_h=kernel_h // 2,
            padding_w=kernel_w // 2,
        )
    else:
        shape = ConvShape(
            batch, in_channels, out_channels, h, w, kernel_h, kernel_w, stride, padding
        )
    graph.add(conv_layer(f"{name}_conv", shape, first_layer=first_layer))
    out_h, out_w = shape.out_h, shape.out_w
    elements = batch * out_channels * out_h * out_w
    graph.add(batchnorm_layer(f"{name}_bn", elements, out_channels))
    graph.add(activation_layer(f"{name}_relu", elements))
    return out_h, out_w


def _inception_a(graph: LayerGraph, name: str, batch: int, in_channels: int, h: int, w: int, pool_features: int) -> int:
    """35x35 Inception-A module; returns output channel count."""
    _conv_bn_relu(graph, f"{name}_b1x1", batch, in_channels, 64, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b5_1", batch, in_channels, 48, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b5_2", batch, 48, 64, h, w, 5)
    _conv_bn_relu(graph, f"{name}_b3_1", batch, in_channels, 64, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b3_2", batch, 64, 96, h, w, 3)
    _conv_bn_relu(graph, f"{name}_b3_3", batch, 96, 96, h, w, 3)
    graph.add(
        pool_layer(
            f"{name}_pool",
            batch * in_channels * h * w,
            batch * in_channels * h * w,
        )
    )
    _conv_bn_relu(graph, f"{name}_bpool", batch, in_channels, pool_features, h, w, 1)
    return 64 + 64 + 96 + pool_features


def _reduction_a(graph: LayerGraph, name: str, batch: int, in_channels: int, h: int, w: int) -> tuple:
    """35x35 -> 17x17 grid reduction; returns (channels, h, w)."""
    out_h, out_w = (h - 3) // 2 + 1, (w - 3) // 2 + 1
    _conv_bn_relu(graph, f"{name}_b3", batch, in_channels, 384, h, w, 3, stride=2, padding=0)
    _conv_bn_relu(graph, f"{name}_b3d_1", batch, in_channels, 64, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b3d_2", batch, 64, 96, h, w, 3)
    _conv_bn_relu(graph, f"{name}_b3d_3", batch, 96, 96, h, w, 3, stride=2, padding=0)
    graph.add(
        pool_layer(
            f"{name}_pool",
            batch * in_channels * h * w,
            batch * in_channels * out_h * out_w,
        )
    )
    return 384 + 96 + in_channels, out_h, out_w


def _inception_b(graph: LayerGraph, name: str, batch: int, in_channels: int, h: int, w: int, channels_7x7: int) -> int:
    """17x17 Inception-B module with factorized 7x7 convolutions."""
    c7 = channels_7x7
    _conv_bn_relu(graph, f"{name}_b1x1", batch, in_channels, 192, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b7_1", batch, in_channels, c7, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b7_2", batch, c7, c7, h, w, (1, 7))
    _conv_bn_relu(graph, f"{name}_b7_3", batch, c7, 192, h, w, (7, 1))
    _conv_bn_relu(graph, f"{name}_b7d_1", batch, in_channels, c7, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b7d_2", batch, c7, c7, h, w, (7, 1))
    _conv_bn_relu(graph, f"{name}_b7d_3", batch, c7, c7, h, w, (1, 7))
    _conv_bn_relu(graph, f"{name}_b7d_4", batch, c7, c7, h, w, (7, 1))
    _conv_bn_relu(graph, f"{name}_b7d_5", batch, c7, 192, h, w, (1, 7))
    graph.add(
        pool_layer(
            f"{name}_pool",
            batch * in_channels * h * w,
            batch * in_channels * h * w,
        )
    )
    _conv_bn_relu(graph, f"{name}_bpool", batch, in_channels, 192, h, w, 1)
    return 192 * 4


def _reduction_b(graph: LayerGraph, name: str, batch: int, in_channels: int, h: int, w: int) -> tuple:
    """17x17 -> 8x8 grid reduction."""
    out_h, out_w = (h - 3) // 2 + 1, (w - 3) // 2 + 1
    _conv_bn_relu(graph, f"{name}_b3_1", batch, in_channels, 192, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b3_2", batch, 192, 320, h, w, 3, stride=2, padding=0)
    _conv_bn_relu(graph, f"{name}_b7_1", batch, in_channels, 192, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b7_2", batch, 192, 192, h, w, (1, 7))
    _conv_bn_relu(graph, f"{name}_b7_3", batch, 192, 192, h, w, (7, 1))
    _conv_bn_relu(graph, f"{name}_b7_4", batch, 192, 192, h, w, 3, stride=2, padding=0)
    graph.add(
        pool_layer(
            f"{name}_pool",
            batch * in_channels * h * w,
            batch * in_channels * out_h * out_w,
        )
    )
    return 320 + 192 + in_channels, out_h, out_w


def _inception_c(graph: LayerGraph, name: str, batch: int, in_channels: int, h: int, w: int) -> int:
    """8x8 Inception-C module with expanded filter banks."""
    _conv_bn_relu(graph, f"{name}_b1x1", batch, in_channels, 320, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b3_1", batch, in_channels, 384, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b3_2a", batch, 384, 384, h, w, (1, 3))
    _conv_bn_relu(graph, f"{name}_b3_2b", batch, 384, 384, h, w, (3, 1))
    _conv_bn_relu(graph, f"{name}_b3d_1", batch, in_channels, 448, h, w, 1)
    _conv_bn_relu(graph, f"{name}_b3d_2", batch, 448, 384, h, w, 3)
    _conv_bn_relu(graph, f"{name}_b3d_3a", batch, 384, 384, h, w, (1, 3))
    _conv_bn_relu(graph, f"{name}_b3d_3b", batch, 384, 384, h, w, (3, 1))
    graph.add(
        pool_layer(
            f"{name}_pool",
            batch * in_channels * h * w,
            batch * in_channels * h * w,
        )
    )
    _conv_bn_relu(graph, f"{name}_bpool", batch, in_channels, 192, h, w, 1)
    return 320 + 768 + 768 + 192


def build_inception_v3(batch_size: int) -> LayerGraph:
    """Inception-v3 on ImageNet-1K (299x299 inputs)."""
    graph = LayerGraph(
        model_name="Inception-v3",
        batch_size=batch_size,
        input_bytes=batch_size * _INPUT_ELEMENTS_PER_SAMPLE * 4,
    )
    batch = batch_size
    h, w = _conv_bn_relu(graph, "stem1", batch, 3, 32, 299, 299, 3, stride=2, padding=0, first_layer=True)
    h, w = _conv_bn_relu(graph, "stem2", batch, 32, 32, h, w, 3, padding=0)
    h, w = _conv_bn_relu(graph, "stem3", batch, 32, 64, h, w, 3, padding=1)
    pooled_h, pooled_w = (h - 3) // 2 + 1, (w - 3) // 2 + 1
    graph.add(
        pool_layer("stem_pool1", batch * 64 * h * w, batch * 64 * pooled_h * pooled_w)
    )
    h, w = pooled_h, pooled_w
    h, w = _conv_bn_relu(graph, "stem4", batch, 64, 80, h, w, 1, padding=0)
    h, w = _conv_bn_relu(graph, "stem5", batch, 80, 192, h, w, 3, padding=0)
    pooled_h, pooled_w = (h - 3) // 2 + 1, (w - 3) // 2 + 1
    graph.add(
        pool_layer("stem_pool2", batch * 192 * h * w, batch * 192 * pooled_h * pooled_w)
    )
    channels, h, w = 192, pooled_h, pooled_w

    for index, pool_features in enumerate((32, 64, 64)):
        channels = _inception_a(graph, f"mixed_a{index}", batch, channels, h, w, pool_features)
    channels, h, w = _reduction_a(graph, "reduction_a", batch, channels, h, w)
    for index, c7 in enumerate((128, 160, 160, 192)):
        channels = _inception_b(graph, f"mixed_b{index}", batch, channels, h, w, c7)
    channels, h, w = _reduction_b(graph, "reduction_b", batch, channels, h, w)
    for index in range(2):
        channels = _inception_c(graph, f"mixed_c{index}", batch, channels, h, w)

    graph.add(
        pool_layer(
            "global_avgpool",
            batch * channels * h * w,
            batch * channels,
            window=h * w,
        )
    )
    graph.add(dense_layer("fc1000", batch, channels, _IMAGENET_CLASSES))
    graph.extra_kernels = softmax_cross_entropy_kernels(batch, _IMAGENET_CLASSES)
    return graph
