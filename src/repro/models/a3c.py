"""A3C (Mnih et al., 2016) — asynchronous advantage actor-critic on Atari.

The network is tiny (4 layers, Table 2): two convolutions over stacked
4x84x84 frames, a 256-unit fully-connected layer, and linear policy/value
heads.  The performance story is therefore *not* GPU arithmetic: every
sample requires stepping the Atari 2600 emulator on the CPU, and the GPU
sees only very small kernels.  This is why the paper measures A3C with by
far the highest CPU utilization (28.75%, Fig. 7) and low GPU compute and
FP32 utilization (Figs. 5g, 6g).

The emulator cost is surfaced through the model registry's
``cpu_cost_per_sample_s`` so the training session can charge it.
"""

from __future__ import annotations

from repro.graph.layer import LayerGraph
from repro.graph.lowering import (
    activation_layer,
    conv_layer,
    dense_layer,
)
from repro.kernels.conv import ConvShape
import repro.kernels.elementwise as ew
import repro.kernels.misc as misc

FRAME_STACK = 4
FRAME_SIZE = 84
ACTIONS = 6  # Atari Pong action set
#: CPU time to advance the ALE emulator by one frame (including frame
#: preprocessing); ~0.9 ms/frame is representative of 2017-era ALE.
EMULATOR_STEP_SECONDS = 0.9e-3
_INPUT_ELEMENTS_PER_SAMPLE = FRAME_STACK * FRAME_SIZE * FRAME_SIZE


def build_a3c(batch_size: int) -> LayerGraph:
    """A3C policy/value network over one batch of emulator transitions."""
    graph = LayerGraph(
        model_name="A3C",
        batch_size=batch_size,
        input_bytes=batch_size * _INPUT_ELEMENTS_PER_SAMPLE * 4,
    )
    conv1 = ConvShape(batch_size, FRAME_STACK, 16, FRAME_SIZE, FRAME_SIZE, 8, 8, 4, 0)
    graph.add(conv_layer("conv1", conv1, first_layer=True))
    elements1 = batch_size * 16 * conv1.out_h * conv1.out_w
    graph.add(activation_layer("conv1_relu", elements1))

    conv2 = ConvShape(batch_size, 16, 32, conv1.out_h, conv1.out_w, 4, 4, 2, 0)
    graph.add(conv_layer("conv2", conv2))
    elements2 = batch_size * 32 * conv2.out_h * conv2.out_w
    graph.add(activation_layer("conv2_relu", elements2))

    flat = 32 * conv2.out_h * conv2.out_w
    graph.add(dense_layer("fc", batch_size, flat, 256))
    graph.add(activation_layer("fc_relu", batch_size * 256))
    graph.add(dense_layer("policy_head", batch_size, 256, ACTIONS))
    graph.add(dense_layer("value_head", batch_size, 256, 1))
    graph.extra_kernels = [
        ew.softmax(batch_size, ACTIONS),
        misc.cross_entropy_loss(batch_size, ACTIONS),  # policy-gradient loss
        misc.cross_entropy_loss(batch_size, ACTIONS, backward=True),
        ew.elementwise(batch_size, flops_per_element=4.0, name="advantage_kernel"),
    ]
    return graph
