"""The TBD model zoo: eight state-of-the-art models across six application
domains (paper Table 2), each expressed as a lowered layer graph.

============================  =====================  ==========================
Application                   Model                  Frameworks (paper)
============================  =====================  ==========================
Image classification          ResNet-50              TensorFlow, MXNet, CNTK
Image classification          Inception-v3           TensorFlow, MXNet, CNTK
Machine translation           Seq2Seq (NMT/Sockeye)  TensorFlow, MXNet
Machine translation           Transformer            TensorFlow
Object detection              Faster R-CNN           TensorFlow, MXNet
Speech recognition            Deep Speech 2          MXNet
Adversarial learning          WGAN                   TensorFlow
Deep reinforcement learning   A3C                    MXNet
============================  =====================  ==========================
"""

from repro.models.registry import (
    ModelSpec,
    get_model,
    model_catalog,
    model_keys,
)

__all__ = ["ModelSpec", "get_model", "model_catalog", "model_keys"]
