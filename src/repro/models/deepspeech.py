"""Deep Speech 2 (Amodei et al., 2016) — end-to-end speech recognition.

The MXNet implementation the paper benchmarks: two 2-D convolutions over the
log-spectrogram followed by five bidirectional *vanilla* recurrent layers
(not LSTMs — the official model's 7 RNN layers are reduced to the MXNet
default of 5 due to memory, per Table 2 footnote b), a fully-connected
layer, and CTC loss over a character vocabulary.

Properties the paper reports that this graph reproduces mechanically:

- throughput is measured in *seconds of audio processed per second* because
  utterance lengths vary widely (Section 3.4.3);
- memory capacity limits the mini-batch to single digits on an 8 GB card
  (the long time axis means enormous per-utterance activation stashes), and
  throughput scales almost linearly in batch size with no saturation
  (Observation 2);
- hundreds of small per-timestep kernels keep FP32 utilization very low
  (Observation 7), though plain RNN cells do better than LSTMs on GPU
  occupancy (Observation 5).
"""

from __future__ import annotations

from repro.graph.layer import LayerGraph
from repro.graph.lowering import (
    activation_layer,
    batchnorm_layer,
    conv_layer,
    ctc_loss_kernels,
    dense_layer,
    gru_layer,
    vanilla_rnn_layer,
)
from repro.kernels.conv import ConvShape

#: Spectrogram geometry: 161 frequency bins, 10 ms hop.
FREQ_BINS = 161
#: Average utterance length in the LibriSpeech 100-hour training subset.
AVG_AUDIO_SECONDS = 12.8
#: Spectrogram frames per utterance (100 frames/second).
TIME_STEPS = int(AVG_AUDIO_SECONDS * 100)
HIDDEN = 1760
RNN_LAYERS = 5
#: Character vocabulary (a-z, space, apostrophe, blank).
VOCAB = 29
#: Average label length in characters.
LABEL_LEN = 180


def build_deep_speech2(batch_size: int, cell: str = "rnn") -> LayerGraph:
    """Deep Speech 2 on LibriSpeech (100-hour subset).

    ``cell`` selects the recurrent unit: ``"rnn"`` (the MXNet default the
    paper benchmarks) or ``"gru"`` (the official model's alternative —
    "seven regular recurrent layers or Gated Recurrent Units", §3.1.4).
    """
    if cell not in ("rnn", "gru"):
        raise ValueError(f"cell must be 'rnn' or 'gru', got {cell!r}")
    graph = LayerGraph(
        model_name="Deep Speech 2",
        batch_size=batch_size,
        input_bytes=batch_size * FREQ_BINS * TIME_STEPS * 4,
        samples_per_iteration=batch_size * AVG_AUDIO_SECONDS,
        # Batches are padded to the longest utterance in the bucket; buffer
        # pools are sized accordingly.
        feature_map_overallocation=2.2,
    )
    # Conv 1: 41x11 kernel, stride (2, 2) over (freq, time).
    conv1 = ConvShape(
        batch_size, 1, 32, FREQ_BINS, TIME_STEPS, 41, 11, 2, padding_h=20, padding_w=5
    )
    graph.add(conv_layer("conv1", conv1, first_layer=True))
    h1, w1 = conv1.out_h, conv1.out_w
    elements1 = batch_size * 32 * h1 * w1
    graph.add(batchnorm_layer("conv1_bn", elements1, 32))
    graph.add(activation_layer("conv1_relu", elements1))

    # Conv 2: 21x11 kernel, stride (2, 1) — time axis is not downsampled.
    conv2 = ConvShape(
        batch_size,
        32,
        32,
        h1,
        w1,
        21,
        11,
        padding_h=10,
        padding_w=5,
        stride_h=2,
        stride_w=1,
    )
    graph.add(conv_layer("conv2", conv2))
    h2, w2 = conv2.out_h, conv2.out_w
    elements2 = batch_size * 32 * h2 * w2
    graph.add(batchnorm_layer("conv2_bn", elements2, 32))
    graph.add(activation_layer("conv2_relu", elements2))

    # Recurrent stack over the time axis; features = channels x freq.
    rnn_steps = w2
    size_in = 32 * h2
    recurrent_factory = vanilla_rnn_layer if cell == "rnn" else gru_layer
    for index in range(RNN_LAYERS):
        graph.add(
            recurrent_factory(
                f"birnn{index}",
                batch_size,
                rnn_steps,
                size_in,
                HIDDEN,
                bidirectional=True,
            )
        )
        graph.add(
            batchnorm_layer(
                f"birnn{index}_bn", batch_size * rnn_steps * HIDDEN, HIDDEN
            )
        )
        size_in = 2 * HIDDEN  # bidirectional outputs are summed per direction pair

    graph.add(dense_layer("fc_vocab", batch_size * rnn_steps, size_in, VOCAB))
    graph.extra_kernels = ctc_loss_kernels(batch_size, rnn_steps, LABEL_LEN, VOCAB)
    return graph
