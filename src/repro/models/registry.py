"""The TBD model registry — paper Table 2 as an executable catalog."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.a3c import EMULATOR_STEP_SECONDS, build_a3c
from repro.models.deepspeech import build_deep_speech2
from repro.models.faster_rcnn import build_faster_rcnn
from repro.models.inception import build_inception_v3
from repro.models.resnet import build_resnet50
from repro.models.seq2seq import build_nmt, build_sockeye
from repro.models.transformer import build_transformer
from repro.models.wgan import build_wgan


@dataclass(frozen=True)
class ModelSpec:
    """One benchmark entry of the TBD suite.

    Attributes:
        key: registry key (``resnet-50``…).
        display_name: Table 2 model name.
        application: application domain (Table 2, first column).
        paper_layer_count: Table 2's layer count.
        dominant_layer: Table 2's dominant layer type.
        frameworks: framework keys with implementations (Table 2).
        dataset: dataset registry key (Table 3).
        batch_sizes: mini-batch sweep matching the paper's figures.
        reference_batch: batch used in single-point comparisons
            (Figs. 7/8, Tables 5/6).
        build: ``(batch_size) -> LayerGraph`` factory.
        throughput_unit: unit the paper reports (Section 3.4.3).
        host_cpu_core_seconds: per-framework CPU core-seconds of
            framework-side per-iteration work beyond dispatch + pipeline
            (e.g. Faster R-CNN's CPU proposal stage, per-step RNN frontends).
        host_cpu_overlap: fraction of that host work hidden behind GPU
            compute.
        env_cpu_core_seconds_per_sample: CPU core-seconds per *sample* for
            environment simulation (A3C's Atari emulator workers).
        env_cpu_threads: worker threads the environment load spreads over;
            its wall-clock contribution is serial with GPU work.
    """

    key: str
    display_name: str
    application: str
    paper_layer_count: int
    dominant_layer: str
    frameworks: tuple
    dataset: str
    batch_sizes: tuple
    reference_batch: int
    build: object
    throughput_unit: str = "samples/s"
    host_cpu_core_seconds: dict = field(default_factory=dict)
    host_cpu_overlap: float = 0.9
    env_cpu_core_seconds_per_sample: float = 0.0
    env_cpu_threads: int = 8
    #: Scales the dataset's per-sample decode cost when the batch unit is
    #: not one dataset sample (Transformer batches are counted in tokens).
    pipeline_cost_scale: float = 1.0
    notes: str = ""

    def __post_init__(self) -> None:
        if self.reference_batch not in self.batch_sizes:
            raise ValueError(
                f"{self.key}: reference batch {self.reference_batch} not in "
                f"sweep {self.batch_sizes}"
            )
        if not 0.0 <= self.host_cpu_overlap <= 1.0:
            raise ValueError(f"{self.key}: host_cpu_overlap must be in [0, 1]")

    def supports(self, framework_key: str) -> bool:
        """True if the paper has an implementation on that framework."""
        return framework_key.lower() in self.frameworks

    def host_cpu_cost(self, framework_key: str) -> float:
        """Framework-side host CPU core-seconds per iteration."""
        return self.host_cpu_core_seconds.get(framework_key.lower(), 0.0)


RESNET_50 = ModelSpec(
    key="resnet-50",
    display_name="ResNet-50",
    application="Image classification",
    paper_layer_count=50,
    dominant_layer="CONV",
    frameworks=("tensorflow", "mxnet", "cntk"),
    dataset="imagenet1k",
    batch_sizes=(4, 8, 16, 32, 64),
    reference_batch=32,
    build=build_resnet50,
)

INCEPTION_V3 = ModelSpec(
    key="inception-v3",
    display_name="Inception-v3",
    application="Image classification",
    paper_layer_count=42,
    dominant_layer="CONV",
    frameworks=("tensorflow", "mxnet", "cntk"),
    dataset="imagenet1k",
    batch_sizes=(4, 8, 16, 32, 64),
    reference_batch=32,
    build=build_inception_v3,
)

NMT = ModelSpec(
    key="nmt",
    display_name="NMT",
    application="Machine translation",
    paper_layer_count=5,
    dominant_layer="LSTM",
    frameworks=("tensorflow",),
    dataset="iwslt15",
    batch_sizes=(4, 8, 16, 32, 64, 128),
    reference_batch=128,
    build=build_nmt,
    host_cpu_core_seconds={"tensorflow": 0.45},
    notes="TensorFlow implementation of Seq2Seq",
)

SOCKEYE = ModelSpec(
    key="sockeye",
    display_name="Sockeye",
    application="Machine translation",
    paper_layer_count=5,
    dominant_layer="LSTM",
    frameworks=("mxnet",),
    dataset="iwslt15",
    batch_sizes=(4, 8, 16, 32, 64),
    reference_batch=64,
    build=build_sockeye,
    host_cpu_core_seconds={"mxnet": 0.40},
    notes="MXNet implementation of Seq2Seq",
)

TRANSFORMER = ModelSpec(
    key="transformer",
    display_name="Transformer",
    application="Machine translation",
    paper_layer_count=12,
    dominant_layer="Attention",
    frameworks=("tensorflow",),
    dataset="iwslt15",
    batch_sizes=(64, 256, 1024, 2048, 4096),
    reference_batch=2048,
    build=build_transformer,
    throughput_unit="tokens/s",
    host_cpu_core_seconds={"tensorflow": 0.05},
    # The batch unit is tokens; host decode cost is per sentence pair
    # (~50 tokens), not per token.
    pipeline_cost_scale=1.0 / 50.0,
)

FASTER_RCNN = ModelSpec(
    key="faster-rcnn",
    display_name="Faster R-CNN",
    application="Object detection",
    paper_layer_count=101,
    dominant_layer="CONV",
    frameworks=("tensorflow", "mxnet"),
    dataset="voc2007",
    batch_sizes=(1,),
    reference_batch=1,
    build=build_faster_rcnn,
    host_cpu_core_seconds={"tensorflow": 1.45, "mxnet": 0.35},
    host_cpu_overlap=0.93,
    notes="ResNet-101 conv stack shared between RPN and detection network",
)

DEEP_SPEECH_2 = ModelSpec(
    key="deep-speech-2",
    display_name="Deep Speech 2",
    application="Speech recognition",
    paper_layer_count=9,
    dominant_layer="RNN",
    frameworks=("mxnet",),
    dataset="librispeech",
    batch_sizes=(1, 2, 3, 4),
    reference_batch=4,
    build=build_deep_speech2,
    throughput_unit="audio seconds/s",
    # The bucketing iterator, spectrogram pipeline and the MXNet engine
    # thread keep ~1 core busy across the very long iteration.
    host_cpu_core_seconds={"mxnet": 14.0},
    host_cpu_overlap=0.98,
    notes="5 RNN layers (MXNet default) instead of the official 7, "
    "due to GPU memory limits",
)

WGAN = ModelSpec(
    key="wgan",
    display_name="WGAN",
    application="Adversarial learning",
    paper_layer_count=28,
    dominant_layer="CONV",
    frameworks=("tensorflow",),
    dataset="downsampled-imagenet",
    batch_sizes=(4, 8, 16, 32, 64),
    reference_batch=64,
    build=build_wgan,
    host_cpu_core_seconds={"tensorflow": 0.05},
    notes="generator and critic are 4-residual-block CNNs (14+14 layers)",
)

A3C = ModelSpec(
    key="a3c",
    display_name="A3C",
    application="Deep reinforcement learning",
    paper_layer_count=4,
    dominant_layer="CONV",
    frameworks=("mxnet",),
    dataset="atari2600",
    batch_sizes=(8, 16, 32, 64, 128),
    reference_batch=128,
    build=build_a3c,
    env_cpu_core_seconds_per_sample=48e-3,
    env_cpu_threads=8,
    notes=f"Atari emulator step ~{EMULATOR_STEP_SECONDS * 1e3:.1f} ms/frame "
    "plus Python actor overhead dominates; GPU kernels are tiny",
)

_CATALOG = {
    spec.key: spec
    for spec in (
        RESNET_50,
        INCEPTION_V3,
        NMT,
        SOCKEYE,
        TRANSFORMER,
        FASTER_RCNN,
        DEEP_SPEECH_2,
        WGAN,
        A3C,
    )
}

# ----------------------------------------------------------------------
# Extensions beyond the Table 2 suite: the YOLO9000 addition the paper
# plans (Section 3.1.2) and the AlexNet historical anchor (Section 2.2).
# They resolve through get_model() but stay out of model_catalog(), so the
# paper's tables/figures are unchanged.
# ----------------------------------------------------------------------

from repro.models.alexnet import build_alexnet  # noqa: E402
from repro.models.yolo import build_yolo_v2  # noqa: E402

YOLO_V2 = ModelSpec(
    key="yolo-v2",
    display_name="YOLOv2",
    application="Object detection",
    paper_layer_count=19,
    dominant_layer="CONV",
    frameworks=("tensorflow", "mxnet"),
    dataset="voc2007",
    batch_sizes=(4, 8, 16, 32),
    reference_batch=16,
    build=build_yolo_v2,
    notes="planned suite addition (paper Section 3.1.2); single-shot "
    "detector, trains with ordinary mini-batches unlike Faster R-CNN",
)

ALEXNET = ModelSpec(
    key="alexnet",
    display_name="AlexNet",
    application="Image classification",
    paper_layer_count=8,
    dominant_layer="CONV",
    frameworks=("tensorflow", "mxnet", "cntk"),
    dataset="imagenet1k",
    batch_sizes=(32, 64, 128),
    reference_batch=128,
    build=build_alexnet,
    notes="historical anchor (Section 2.2): trained on two GTX 580s over "
    "six days in 2012",
)

_EXTENSIONS = {spec.key: spec for spec in (YOLO_V2, ALEXNET)}

_ALIASES = {
    "yolo": "yolo-v2",
    "yolo9000": "yolo-v2",
    "resnet50": "resnet-50",
    "resnet": "resnet-50",
    "inception": "inception-v3",
    "inceptionv3": "inception-v3",
    "seq2seq": "nmt",
    "deepspeech2": "deep-speech-2",
    "deep speech 2": "deep-speech-2",
    "ds2": "deep-speech-2",
    "fasterrcnn": "faster-rcnn",
    "faster r-cnn": "faster-rcnn",
}


def model_catalog() -> dict:
    """The Table 2 suite models keyed by registry key, in paper order."""
    return dict(_CATALOG)


def extension_catalog() -> dict:
    """Models beyond the paper's suite (YOLOv2, AlexNet)."""
    return dict(_EXTENSIONS)


def model_keys() -> list:
    """Registry keys in Table 2 order."""
    return list(_CATALOG)


def get_model(key: str) -> ModelSpec:
    """Look up a model by key or alias (case-insensitive)."""
    normalized = key.strip().lower()
    normalized = _ALIASES.get(normalized, normalized)
    if normalized in _CATALOG:
        return _CATALOG[normalized]
    if normalized in _EXTENSIONS:
        return _EXTENSIONS[normalized]
    known = ", ".join(list(_CATALOG) + list(_EXTENSIONS))
    raise KeyError(f"unknown model {key!r}; known: {known}")
