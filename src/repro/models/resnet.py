"""ResNet (He et al., 2016) — bottleneck residual networks.

``build_resnet50`` is the TBD image-classification benchmark;
``resnet_conv_stack`` exposes the convolution trunk so Faster R-CNN can
reuse ResNet-101's stack as its shared feature extractor (paper Table 2,
footnote a).
"""

from __future__ import annotations

from repro.graph.layer import LayerGraph
from repro.graph.lowering import (
    activation_layer,
    batchnorm_layer,
    conv_layer,
    dense_layer,
    pool_layer,
    residual_add_layer,
    softmax_cross_entropy_kernels,
)
from repro.kernels.conv import ConvShape

#: Bottleneck block counts per stage.
RESNET_50_STAGES = (3, 4, 6, 3)
RESNET_101_STAGES = (3, 4, 23, 3)
_IMAGENET_CLASSES = 1000
#: Raw input bytes per ImageNet sample on the host (3x224x224 FP32 after
#: decode/augmentation).
_INPUT_ELEMENTS_PER_SAMPLE = 3 * 224 * 224


def _bottleneck(
    graph: LayerGraph,
    prefix: str,
    batch: int,
    in_channels: int,
    bottleneck_channels: int,
    out_channels: int,
    height: int,
    width: int,
    stride: int,
) -> tuple:
    """Append one bottleneck residual block; returns (channels, h, w)."""
    shape1 = ConvShape(batch, in_channels, bottleneck_channels, height, width, 1, 1, 1, 0)
    graph.add(conv_layer(f"{prefix}_conv1", shape1))
    elements1 = batch * bottleneck_channels * height * width
    graph.add(batchnorm_layer(f"{prefix}_bn1", elements1, bottleneck_channels))
    graph.add(activation_layer(f"{prefix}_relu1", elements1))

    shape2 = ConvShape(
        batch, bottleneck_channels, bottleneck_channels, height, width, 3, 3, stride, 1
    )
    graph.add(conv_layer(f"{prefix}_conv2", shape2))
    out_h, out_w = shape2.out_h, shape2.out_w
    elements2 = batch * bottleneck_channels * out_h * out_w
    graph.add(batchnorm_layer(f"{prefix}_bn2", elements2, bottleneck_channels))
    graph.add(activation_layer(f"{prefix}_relu2", elements2))

    shape3 = ConvShape(batch, bottleneck_channels, out_channels, out_h, out_w, 1, 1, 1, 0)
    graph.add(conv_layer(f"{prefix}_conv3", shape3))
    elements3 = batch * out_channels * out_h * out_w
    graph.add(batchnorm_layer(f"{prefix}_bn3", elements3, out_channels))

    if stride != 1 or in_channels != out_channels:
        shortcut = ConvShape(
            batch, in_channels, out_channels, height, width, 1, 1, stride, 0
        )
        graph.add(conv_layer(f"{prefix}_shortcut_conv", shortcut))
        graph.add(
            batchnorm_layer(f"{prefix}_shortcut_bn", elements3, out_channels)
        )
    graph.add(residual_add_layer(f"{prefix}_add", elements3))
    graph.add(activation_layer(f"{prefix}_relu3", elements3))
    return out_channels, out_h, out_w


def resnet_conv_stack(
    graph: LayerGraph,
    batch: int,
    height: int,
    width: int,
    stages,
    prefix: str = "res",
    stop_after_stage: int | None = None,
) -> tuple:
    """Append the ResNet convolution trunk (conv1 .. conv5) to ``graph``.

    Returns ``(channels, h, w)`` of the final feature map.  Faster R-CNN
    passes ``stop_after_stage=3`` to split the stack around ROI pooling.
    """
    stem = ConvShape(batch, 3, 64, height, width, 7, 7, 2, 3)
    graph.add(conv_layer(f"{prefix}_conv1", stem, first_layer=True))
    h, w = stem.out_h, stem.out_w
    stem_elements = batch * 64 * h * w
    graph.add(batchnorm_layer(f"{prefix}_conv1_bn", stem_elements, 64))
    graph.add(activation_layer(f"{prefix}_conv1_relu", stem_elements))
    pooled_h, pooled_w = (h + 1) // 2, (w + 1) // 2
    graph.add(
        pool_layer(
            f"{prefix}_pool1",
            stem_elements,
            batch * 64 * pooled_h * pooled_w,
        )
    )
    channels, h, w = 64, pooled_h, pooled_w

    bottleneck_channels = (64, 128, 256, 512)
    out_channels = (256, 512, 1024, 2048)
    for stage_index, block_count in enumerate(stages):
        if stop_after_stage is not None and stage_index >= stop_after_stage:
            break
        stride = 1 if stage_index == 0 else 2
        for block_index in range(block_count):
            block_stride = stride if block_index == 0 else 1
            channels, h, w = _bottleneck(
                graph,
                f"{prefix}{stage_index + 2}{chr(ord('a') + block_index)}",
                batch,
                channels,
                bottleneck_channels[stage_index],
                out_channels[stage_index],
                h,
                w,
                block_stride,
            )
    return channels, h, w


def build_resnet50(batch_size: int) -> LayerGraph:
    """ResNet-50 on ImageNet-1K (224x224 inputs, 1000-way softmax)."""
    graph = LayerGraph(
        model_name="ResNet-50",
        batch_size=batch_size,
        input_bytes=batch_size * _INPUT_ELEMENTS_PER_SAMPLE * 4,
    )
    channels, h, w = resnet_conv_stack(graph, batch_size, 224, 224, RESNET_50_STAGES)
    graph.add(
        pool_layer(
            "global_avgpool",
            batch_size * channels * h * w,
            batch_size * channels,
            window=h * w,
        )
    )
    graph.add(dense_layer("fc1000", batch_size, channels, _IMAGENET_CLASSES))
    graph.extra_kernels = softmax_cross_entropy_kernels(batch_size, _IMAGENET_CLASSES)
    return graph


def build_resnet101(batch_size: int) -> LayerGraph:
    """ResNet-101 classifier (used standalone in the what-if examples)."""
    graph = LayerGraph(
        model_name="ResNet-101",
        batch_size=batch_size,
        input_bytes=batch_size * _INPUT_ELEMENTS_PER_SAMPLE * 4,
    )
    channels, h, w = resnet_conv_stack(graph, batch_size, 224, 224, RESNET_101_STAGES)
    graph.add(
        pool_layer(
            "global_avgpool",
            batch_size * channels * h * w,
            batch_size * channels,
            window=h * w,
        )
    )
    graph.add(dense_layer("fc1000", batch_size, channels, _IMAGENET_CLASSES))
    graph.extra_kernels = softmax_cross_entropy_kernels(batch_size, _IMAGENET_CLASSES)
    return graph
