"""Seq2Seq neural machine translation (NMT on TensorFlow, Sockeye on MXNet).

An encoder-decoder LSTM with Luong attention on IWSLT'15 English-Vietnamese:
2 encoder layers + 3 decoder layers (5 LSTM layers total, matching Table 2),
hidden size 512, vocabulary 17,188 (Table 3).  Sentences average 20-30
tokens; bucketed batches pad to ``SEQ_LEN``.

Performance-defining properties (paper Observations 2, 5, 7):

- per-timestep small GEMMs keep the GPU launch-bound at every batch size;
- the decoder's attention materializes a ``batch x T_dec x T_enc x hidden``
  tensor of weighted encoder states and stashes per-step vocabulary logits,
  which dominates the memory footprint (89% feature maps for Sockeye).
"""

from __future__ import annotations

from repro.graph.layer import Layer, LayerGraph
from repro.graph.lowering import (
    dropout_layer,
    embedding_layer,
    lstm_layer,
    softmax_cross_entropy_kernels,
)
import repro.kernels.elementwise as ew
from repro.kernels.gemm import gemm

VOCAB_SIZE = 17188
HIDDEN = 512
EMBED = 512
ENCODER_LAYERS = 2
DECODER_LAYERS = 3
#: Padded bucket length (IWSLT sentences run 20-30 words; subword units and
#: bucket padding push the executed length higher).
SEQ_LEN = 30
#: Average source tokens per host-side sample (drives the H2D copy size).
_TOKENS_PER_SAMPLE = 2 * SEQ_LEN  # source + target


def _attention_decoder_step_layer(name: str, batch: int, seq_enc: int, seq_dec: int, hidden: int) -> Layer:
    """Luong attention applied at every decoder step.

    Per step: score GEMM against all encoder states, softmax, context
    reduction, and the attentional combination GEMM.  The implementation
    stashes the weighted encoder states for backward — the
    ``batch x T_dec x T_enc x hidden`` materialization responsible for the
    Seq2Seq memory blow-up.
    """
    forward: list = []
    backward: list = []
    for _step in range(seq_dec):
        forward.append(gemm(batch, seq_enc, hidden, name="attn_score_sgemm"))
        forward.append(ew.softmax(batch, seq_enc))
        forward.append(gemm(batch, hidden, seq_enc, name="attn_context_sgemm"))
        forward.append(gemm(batch, hidden, 2 * hidden, name="attn_combine_sgemm"))
        backward.append(gemm(batch, 2 * hidden, hidden, name="attn_combine_sgemm_bw"))
        backward.append(gemm(batch, seq_enc, hidden, name="attn_context_sgemm_bw"))
        backward.append(ew.softmax(batch, seq_enc))
        backward.append(gemm(batch, hidden, seq_enc, name="attn_score_sgemm_bw"))
    # Stash: per-step weighted encoder states (T_enc x hidden), kept for
    # both the forward product and its backward counterpart, plus context,
    # combined output and alignment weights.
    stash = seq_dec * batch * (2 * seq_enc * hidden + 2 * hidden + seq_enc)
    return Layer(
        name=name,
        kind="attention",
        weight_elements=2 * hidden * hidden + hidden,
        output_elements=stash,
        forward_kernels=forward,
        backward_kernels=backward,
    )


def _output_projection_layer(name: str, batch: int, seq_dec: int, hidden: int, vocab: int) -> Layer:
    """Per-step projection to the vocabulary; logits are stashed for the
    sequence loss (another large feature-map consumer)."""
    forward = [gemm(batch * seq_dec, vocab, hidden, name="logits_sgemm")]
    backward = [
        gemm(batch * seq_dec, hidden, vocab, name="logits_sgemm_dgrad"),
        gemm(hidden, vocab, batch * seq_dec, name="logits_sgemm_wgrad"),
    ]
    return Layer(
        name=name,
        kind="dense",
        weight_elements=hidden * vocab,
        # Four vocab-sized tensors stay live: logits, the log-softmax
        # intermediate, the probability tensor, and the loss gradient.
        output_elements=4 * batch * seq_dec * vocab,
        forward_kernels=forward,
        backward_kernels=backward,
    )


def build_seq2seq(
    batch_size: int,
    hidden: int = HIDDEN,
    seq_len: int = SEQ_LEN,
    encoder_layers: int = ENCODER_LAYERS,
    decoder_layers: int = DECODER_LAYERS,
    model_name: str = "Seq2Seq",
    feature_map_overallocation: float = 1.0,
) -> LayerGraph:
    """Build the NMT/Sockeye-style attentional encoder-decoder."""
    graph = LayerGraph(
        model_name=model_name,
        batch_size=batch_size,
        input_bytes=batch_size * _TOKENS_PER_SAMPLE * 4,
        feature_map_overallocation=feature_map_overallocation,
    )
    graph.add(
        embedding_layer("src_embedding", batch_size * seq_len, VOCAB_SIZE, EMBED)
    )
    size_in = EMBED
    for index in range(encoder_layers):
        bidirectional = index == 0  # first encoder layer is bidirectional
        graph.add(
            lstm_layer(
                f"encoder_lstm{index}",
                batch_size,
                seq_len,
                size_in,
                hidden,
                bidirectional=bidirectional,
            )
        )
        graph.add(
            dropout_layer(f"encoder_dropout{index}", batch_size * seq_len * hidden)
        )
        size_in = hidden * (2 if bidirectional else 1)

    graph.add(
        embedding_layer("tgt_embedding", batch_size * seq_len, VOCAB_SIZE, EMBED)
    )
    size_in = EMBED
    for index in range(decoder_layers):
        graph.add(
            lstm_layer(
                f"decoder_lstm{index}", batch_size, seq_len, size_in, hidden
            )
        )
        graph.add(
            dropout_layer(f"decoder_dropout{index}", batch_size * seq_len * hidden)
        )
        size_in = hidden

    graph.add(
        _attention_decoder_step_layer(
            "luong_attention", batch_size, seq_len, seq_len, hidden
        )
    )
    graph.add(
        _output_projection_layer(
            "output_projection", batch_size, seq_len, hidden, VOCAB_SIZE
        )
    )
    graph.extra_kernels = softmax_cross_entropy_kernels(
        batch_size * seq_len, VOCAB_SIZE
    )
    return graph


def build_nmt(batch_size: int) -> LayerGraph:
    """The TensorFlow NMT implementation of Seq2Seq.

    NMT's single ``dynamic_rnn`` graph over-allocates moderately (TensorArray
    slack for the longest sentence in a bucket).
    """
    return build_seq2seq(
        batch_size, model_name="NMT", feature_map_overallocation=1.55
    )


def build_sockeye(batch_size: int) -> LayerGraph:
    """The MXNet Sockeye implementation of Seq2Seq.

    Sockeye's bucketing module instantiates an executor per bucket length and
    sizes the shared activation pool for the largest — the reason it tops out
    at mini-batch 64 on an 8 GB card where NMT reaches 128 (paper Obs. 3).
    """
    return build_seq2seq(
        batch_size, model_name="Sockeye", feature_map_overallocation=2.6
    )
