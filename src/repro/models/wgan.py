"""WGAN with gradient penalty (Gulrajani et al., 2017) on 64x64
Downsampled ImageNet.

Both generator and critic are small residual CNNs with four residual blocks
each (Table 2 footnote c: "14+14" layers).  One benchmark "iteration"
follows the WGAN-GP recipe:

- ``CRITIC_ITERS`` critic updates per generator update, each of which runs
  the generator forward (to synthesize fakes), the critic forward/backward
  on real and fake batches, plus the gradient-penalty term — an extra
  forward/backward through the critic on interpolated samples followed by a
  second-order backward;
- one generator update (generator forward + critic forward + backward
  through both).

A "sample" for throughput purposes is one generated image per generator
update, matching the implementation's logging.
"""

from __future__ import annotations

from repro.graph.layer import Layer, LayerGraph
from repro.graph.lowering import (
    activation_layer,
    batchnorm_layer,
    conv_layer,
    dense_layer,
    residual_add_layer,
)
from repro.kernels.conv import ConvShape
import repro.kernels.elementwise as ew

IMAGE_SIZE = 64
CHANNELS = 64
RESIDUAL_BLOCKS = 4
LATENT_DIM = 128
CRITIC_ITERS = 5
_INPUT_ELEMENTS_PER_SAMPLE = 3 * IMAGE_SIZE * IMAGE_SIZE


def _residual_block(
    graph: LayerGraph,
    prefix: str,
    batch: int,
    channels: int,
    h: int,
    w: int,
    norm: bool = True,
) -> None:
    """Two 3x3 convolutions with (optional) normalization and a shortcut."""
    elements = batch * channels * h * w
    for index in (1, 2):
        shape = ConvShape(batch, channels, channels, h, w, 3, 3, 1, 1)
        graph.add(conv_layer(f"{prefix}_conv{index}", shape))
        if norm:
            graph.add(batchnorm_layer(f"{prefix}_bn{index}", elements, channels))
        graph.add(activation_layer(f"{prefix}_relu{index}", elements))
    graph.add(residual_add_layer(f"{prefix}_add", elements))


def _generator(graph: LayerGraph, batch: int) -> None:
    """Latent vector -> 64x64 RGB image through 4 residual blocks."""
    h = w = IMAGE_SIZE // 8
    graph.add(dense_layer("gen_fc", batch, LATENT_DIM, CHANNELS * h * w))
    size = h
    for index in range(RESIDUAL_BLOCKS):
        _residual_block(graph, f"gen_res{index}", batch, CHANNELS, size, size)
        if size < IMAGE_SIZE:
            # Nearest-neighbour upsample (an elementwise broadcast copy).
            upsampled = batch * CHANNELS * (size * 2) * (size * 2)
            graph.add(
                Layer(
                    name=f"gen_upsample{index}",
                    kind="elementwise",
                    output_elements=upsampled,
                    forward_kernels=[
                        ew.elementwise(upsampled, name="upsample_nearest_kernel")
                    ],
                    backward_kernels=[
                        ew.elementwise(upsampled, name="upsample_nearest_bw_kernel")
                    ],
                )
            )
            size *= 2
    final = ConvShape(batch, CHANNELS, 3, size, size, 3, 3, 1, 1)
    graph.add(conv_layer("gen_output_conv", final))


def _critic(graph: LayerGraph, batch: int, passes: float) -> None:
    """64x64 image -> scalar score through 4 residual blocks.

    ``passes`` scales the kernel work for the multiple critic evaluations
    per benchmark iteration (real, fake, interpolated, generator step).
    """
    size = IMAGE_SIZE
    stem = ConvShape(batch, 3, CHANNELS, size, size, 3, 3, 1, 1)
    graph.add(conv_layer("critic_stem", stem, first_layer=True))
    for index in range(RESIDUAL_BLOCKS):
        _residual_block(
            graph, f"critic_res{index}", batch, CHANNELS, size, size, norm=False
        )
        if size > IMAGE_SIZE // 8:
            in_elements = batch * CHANNELS * size * size
            pooled = batch * CHANNELS * (size // 2) * (size // 2)
            graph.add(
                Layer(
                    name=f"critic_down{index}",
                    kind="pooling",
                    output_elements=pooled,
                    forward_kernels=[ew.pooling_forward(in_elements, pooled, window=4)],
                    backward_kernels=[ew.pooling_backward(in_elements, pooled, window=4)],
                )
            )
            size //= 2
    graph.add(dense_layer("critic_score", batch, CHANNELS * size * size, 1))
    # Scale all critic kernels for the repeated evaluations, and the stash
    # for the activation sets that stay live together (real batch, fake
    # batch, and the gradient-penalty interpolates).
    for layer in graph.layers:
        if layer.name.startswith("critic"):
            layer.forward_kernels = [k.scaled(passes) for k in layer.forward_kernels]
            layer.backward_kernels = [k.scaled(passes) for k in layer.backward_kernels]
            layer.output_elements *= 3


def build_wgan(batch_size: int) -> LayerGraph:
    """WGAN-GP benchmark iteration (5 critic steps + 1 generator step)."""
    graph = LayerGraph(
        model_name="WGAN",
        batch_size=batch_size,
        input_bytes=batch_size * _INPUT_ELEMENTS_PER_SAMPLE * 4 * CRITIC_ITERS,
    )
    _generator(graph, batch_size)
    # Fake batches from multiple critic iterations stay live together.
    for layer in graph.layers:
        if layer.name.startswith("gen"):
            layer.output_elements *= 2
    # Critic work per benchmark iteration: CRITIC_ITERS updates x (real +
    # fake + gradient-penalty double-backward ~ 2x) + the generator update's
    # critic pass.
    critic_passes = CRITIC_ITERS * (2.0 + 2.0) / 2.0 + 1.0
    _critic(graph, batch_size, critic_passes)
    # Generator also runs forward once per critic iteration to produce fakes.
    for layer in graph.layers:
        if layer.name.startswith("gen"):
            layer.forward_kernels = [
                k.scaled(1.0 + CRITIC_ITERS * 0.5) for k in layer.forward_kernels
            ]
    return graph
