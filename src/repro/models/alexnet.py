"""AlexNet (Krizhevsky et al., 2012) — the historical anchor of Section 2.2:

    "The first successful deep neural network that beat all competitors in
    image classification task in 2012, was trained using two GTX 580 GPUs
    in six days instead of months of training on CPUs."

Included (outside the Table 2 suite) for the hardware-history example:
simulating AlexNet on the catalog's GTX 580 vs. the paper's P4000 puts the
2012-2018 hardware gap into the toolchain's own units.
"""

from __future__ import annotations

from repro.graph.layer import LayerGraph
from repro.graph.lowering import (
    activation_layer,
    conv_layer,
    dense_layer,
    dropout_layer,
    pool_layer,
    softmax_cross_entropy_kernels,
)
from repro.kernels.conv import ConvShape

_IMAGENET_CLASSES = 1000
_INPUT_ELEMENTS_PER_SAMPLE = 3 * 227 * 227


def build_alexnet(batch_size: int) -> LayerGraph:
    """The 8-layer AlexNet (5 conv + 3 FC) on 227x227 ImageNet crops."""
    graph = LayerGraph(
        model_name="AlexNet",
        batch_size=batch_size,
        input_bytes=batch_size * _INPUT_ELEMENTS_PER_SAMPLE * 4,
    )
    batch = batch_size

    conv1 = ConvShape(batch, 3, 96, 227, 227, 11, 11, 4, 0)
    graph.add(conv_layer("conv1", conv1, bias=True, first_layer=True))
    h, w = conv1.out_h, conv1.out_w
    graph.add(activation_layer("relu1", batch * 96 * h * w))
    h2, w2 = (h - 3) // 2 + 1, (w - 3) // 2 + 1
    graph.add(pool_layer("pool1", batch * 96 * h * w, batch * 96 * h2 * w2))
    h, w = h2, w2

    conv2 = ConvShape(batch, 96, 256, h, w, 5, 5, 1, 2)
    graph.add(conv_layer("conv2", conv2, bias=True))
    h, w = conv2.out_h, conv2.out_w
    graph.add(activation_layer("relu2", batch * 256 * h * w))
    h2, w2 = (h - 3) // 2 + 1, (w - 3) // 2 + 1
    graph.add(pool_layer("pool2", batch * 256 * h * w, batch * 256 * h2 * w2))
    h, w = h2, w2

    for index, (in_c, out_c) in enumerate(((256, 384), (384, 384), (384, 256))):
        shape = ConvShape(batch, in_c, out_c, h, w, 3, 3, 1, 1)
        graph.add(conv_layer(f"conv{index + 3}", shape, bias=True))
        graph.add(activation_layer(f"relu{index + 3}", batch * out_c * h * w))
    h2, w2 = (h - 3) // 2 + 1, (w - 3) // 2 + 1
    graph.add(pool_layer("pool5", batch * 256 * h * w, batch * 256 * h2 * w2))
    h, w = h2, w2

    flat = 256 * h * w
    graph.add(dense_layer("fc6", batch, flat, 4096))
    graph.add(activation_layer("relu6", batch * 4096))
    graph.add(dropout_layer("dropout6", batch * 4096))
    graph.add(dense_layer("fc7", batch, 4096, 4096))
    graph.add(activation_layer("relu7", batch * 4096))
    graph.add(dropout_layer("dropout7", batch * 4096))
    graph.add(dense_layer("fc8", batch, 4096, _IMAGENET_CLASSES))
    graph.extra_kernels = softmax_cross_entropy_kernels(batch, _IMAGENET_CLASSES)
    return graph
