"""Model inspection: per-layer summaries of lowered graphs.

The Keras-style ``model.summary()`` for this repository: given any model
key (or a raw graph), produce a per-layer table of parameters, stashed
feature-map megabytes, training FLOPs, and kernel counts, plus aggregation
by layer kind — the quickest way to see *why* a model profiles the way it
does (e.g. where Deep Speech 2's 32k kernel launches come from).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import render_table
from repro.graph.layer import LayerGraph
from repro.models.registry import get_model

_MIB = 1024.0**2
_GFLOP = 1e9


@dataclass(frozen=True)
class LayerSummary:
    """One layer's headline numbers."""

    name: str
    kind: str
    parameters: int
    feature_map_mib: float
    gflops: float
    kernels: int
    inplace: bool


@dataclass(frozen=True)
class KindSummary:
    """Aggregate over all layers of one kind."""

    kind: str
    layer_count: int
    parameters: int
    feature_map_mib: float
    gflops: float
    kernels: int


def summarize_graph(graph: LayerGraph) -> list:
    """Per-layer summaries, in execution order."""
    return [
        LayerSummary(
            name=layer.name,
            kind=layer.kind,
            parameters=layer.weight_elements,
            feature_map_mib=layer.stash_bytes / _MIB,
            gflops=layer.flops / _GFLOP,
            kernels=layer.kernel_count,
            inplace=layer.inplace,
        )
        for layer in graph.layers
    ]


def summarize_by_kind(graph: LayerGraph) -> list:
    """Aggregates per layer kind, ordered by FLOPs (descending)."""
    buckets: dict = {}
    for layer in graph.layers:
        bucket = buckets.setdefault(
            layer.kind, {"layers": 0, "params": 0, "fm": 0.0, "flops": 0.0, "kernels": 0}
        )
        bucket["layers"] += 1
        bucket["params"] += layer.weight_elements
        bucket["fm"] += layer.stash_bytes / _MIB
        bucket["flops"] += layer.flops / _GFLOP
        bucket["kernels"] += layer.kernel_count
    summaries = [
        KindSummary(
            kind=kind,
            layer_count=bucket["layers"],
            parameters=bucket["params"],
            feature_map_mib=bucket["fm"],
            gflops=bucket["flops"],
            kernels=bucket["kernels"],
        )
        for kind, bucket in buckets.items()
    ]
    return sorted(summaries, key=lambda s: s.gflops, reverse=True)


def render_summary(
    model, batch_size: int | None = None, max_layers: int = 25
) -> str:
    """Printable summary for a model key or a pre-built graph.

    Long graphs list their ``max_layers`` heaviest layers by FLOPs, then
    the by-kind aggregation and the totals.
    """
    if isinstance(model, LayerGraph):
        graph = model
    else:
        spec = get_model(model)
        graph = spec.build(
            batch_size if batch_size is not None else spec.reference_batch
        )
    layers = summarize_graph(graph)
    heaviest = sorted(layers, key=lambda s: s.gflops, reverse=True)[:max_layers]
    layer_table = render_table(
        headers=("layer", "kind", "params", "maps MiB", "GFLOPs", "kernels"),
        rows=[
            (
                entry.name,
                entry.kind + (" (in-place)" if entry.inplace else ""),
                f"{entry.parameters:,}",
                f"{entry.feature_map_mib:.1f}",
                f"{entry.gflops:.2f}",
                entry.kernels,
            )
            for entry in heaviest
        ],
        title=(
            f"{graph.model_name} @ batch {graph.batch_size} — "
            f"{len(layers)} layers (heaviest {len(heaviest)} shown)"
        ),
    )
    kind_table = render_table(
        headers=("kind", "layers", "params", "maps MiB", "GFLOPs", "kernels"),
        rows=[
            (
                entry.kind,
                entry.layer_count,
                f"{entry.parameters:,}",
                f"{entry.feature_map_mib:.1f}",
                f"{entry.gflops:.2f}",
                entry.kernels,
            )
            for entry in summarize_by_kind(graph)
        ],
        title="by layer kind",
    )
    totals = (
        f"totals: {graph.total_weight_elements:,} parameters, "
        f"{graph.total_feature_map_bytes / _MIB:.0f} MiB stashed maps, "
        f"{graph.iteration_flops() / _GFLOP:.1f} GFLOPs/iteration, "
        f"{len(graph.iteration_kernels()):,} kernels/iteration"
    )
    return f"{layer_table}\n\n{kind_table}\n\n{totals}"
