"""Convergence-curve models for Fig. 2 (accuracy over training time).

The paper validates the suite by training every model to the accuracy the
literature reports (Section 3.3).  We reproduce the *curves* with
calibrated learning-curve models whose time axis is driven by the simulated
throughput: given a model's samples/second on the chosen hardware, the
curve maps "samples seen" to the model's evaluation metric using the
standard saturating power-law shape of SGD training,

    metric(n) = final - (final - initial) * (1 + n / n_half)**(-gamma)

with per-model (final, n_half, gamma) fitted to the end points and
time-to-accuracy the paper reports.  Game-score curves (A3C) use a logistic
ramp instead, matching the plateau-then-jump shape of Pong learning curves.

This is a documented substitution (DESIGN.md): the *real* gradient-descent
machinery lives in :mod:`repro.tensor` and is exercised on miniature
versions of each model family by the test suite; these calibrated curves
exist to regenerate Fig. 2's full-scale axes without 20 GPU-days.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConvergenceModel:
    """A calibrated accuracy-vs-samples curve.

    Attributes:
        metric_name: "top-1 accuracy", "BLEU", "game score"…
        initial: metric value at step 0.
        final: asymptotic metric value (matches the literature).
        samples_to_half: samples seen when half the gap is closed.
        gamma: power-law sharpness.
        logistic: use a logistic ramp (RL game scores) instead of the
            power law.
    """

    metric_name: str
    initial: float
    final: float
    samples_to_half: float
    gamma: float = 1.0
    logistic: bool = False

    def __post_init__(self) -> None:
        if self.samples_to_half <= 0:
            raise ValueError("samples_to_half must be positive")
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")

    def value_at(self, samples_seen: float) -> float:
        """Metric after ``samples_seen`` training samples."""
        if samples_seen < 0:
            raise ValueError("samples_seen cannot be negative")
        if self.logistic:
            # Logistic in log-samples, centred at samples_to_half.
            if samples_seen == 0:
                return self.initial
            x = math.log(samples_seen / self.samples_to_half)
            fraction = 1.0 / (1.0 + math.exp(-2.8 * x))
        else:
            fraction = 1.0 - (1.0 + samples_seen / self.samples_to_half) ** (
                -self.gamma
            )
        return self.initial + (self.final - self.initial) * fraction

    def fraction_at(self, samples_seen: float) -> float:
        """Closed fraction of the initial->final metric gap at
        ``samples_seen``, in ``[0, 1)`` — affine-invariant in the metric
        axis, which is what schedule triggers key off."""
        return (self.value_at(samples_seen) - self.initial) / (
            self.final - self.initial
        )

    def samples_to_fraction(self, fraction: float) -> float:
        """Closed-form inverse of :meth:`fraction_at` — no bisection, so
        arbitrarily deep targets (huge sample counts) resolve exactly.

        Raises:
            ValueError: if ``fraction`` is outside ``[0, 1)`` (the gap
                closes fully only in the limit).
        """
        if fraction < 0.0:
            raise ValueError(f"gap fraction cannot be negative, got {fraction}")
        if fraction >= 1.0:
            raise ValueError(
                f"gap fraction {fraction} unreachable: the curve closes the "
                f"full gap only asymptotically"
            )
        if fraction == 0.0:
            return 0.0
        if self.logistic:
            # fraction = 1 / (1 + (n / n_half)^-2.8)
            return self.samples_to_half * (fraction / (1.0 - fraction)) ** (
                1.0 / 2.8
            )
        # fraction = 1 - (1 + n / n_half)^-gamma
        return self.samples_to_half * (
            (1.0 - fraction) ** (-1.0 / self.gamma) - 1.0
        )

    def samples_to(self, target: float) -> float:
        """Samples needed to reach metric value ``target``, closed form.

        Raises:
            ValueError: if ``target`` lies outside the achievable range or
                equals the asymptote (reachable only in the limit).
        """
        lo, hi = self.initial, self.final
        if not (min(lo, hi) <= target <= max(lo, hi)):
            raise ValueError(
                f"target {target} outside achievable range [{lo}, {hi}]"
            )
        fraction = (target - self.initial) / (self.final - self.initial)
        if fraction >= 1.0:
            raise ValueError(
                f"target {target} unreachable: it is the curve's asymptote"
            )
        return self.samples_to_fraction(fraction)


#: Calibrated curves for the five models Fig. 2 plots.  Final metrics match
#: Section 3.3: ~75-80% top-1 for the image models, BLEU ~20 for Seq2Seq,
#: BLEU ~24 for Transformer (its panel reaches the mid-20s), Pong 19-20.
FIG2_MODELS = {
    "inception-v3": ConvergenceModel(
        metric_name="top-1 accuracy (%)",
        initial=0.1,
        final=78.0,
        samples_to_half=6.0e6,
        gamma=1.15,
    ),
    "resnet-50": ConvergenceModel(
        metric_name="top-1 accuracy (%)",
        initial=0.1,
        final=76.0,
        samples_to_half=5.0e6,
        gamma=1.15,
    ),
    "transformer": ConvergenceModel(
        metric_name="BLEU",
        initial=0.0,
        final=24.0,
        samples_to_half=9.0e6,  # tokens
        gamma=1.1,
    ),
    "nmt": ConvergenceModel(
        metric_name="BLEU",
        initial=0.0,
        final=20.0,
        samples_to_half=3.0e5,
        gamma=1.2,
    ),
    "sockeye": ConvergenceModel(
        metric_name="BLEU",
        initial=0.0,
        final=20.5,
        samples_to_half=3.0e5,
        gamma=1.2,
    ),
    "a3c": ConvergenceModel(
        metric_name="game score (Pong)",
        initial=-21.0,
        final=19.5,
        samples_to_half=1.5e6,
        logistic=True,
    ),
}


def training_curve(
    model_key: str,
    throughput_samples_per_s: float,
    duration_s: float,
    points: int = 64,
) -> tuple:
    """Generate Fig. 2-style ``(time_s, metric)`` arrays.

    Args:
        model_key: one of :data:`FIG2_MODELS`.
        throughput_samples_per_s: simulated stable-phase throughput.
        duration_s: wall-clock training time to cover.
        points: curve resolution.

    Returns:
        ``(times, values)`` numpy arrays of length ``points``.
    """
    if model_key not in FIG2_MODELS:
        known = ", ".join(sorted(FIG2_MODELS))
        raise KeyError(f"no convergence model for {model_key!r}; known: {known}")
    if throughput_samples_per_s <= 0 or duration_s <= 0:
        raise ValueError("throughput and duration must be positive")
    model = FIG2_MODELS[model_key]
    times = np.linspace(0.0, duration_s, points)
    values = np.array(
        [model.value_at(t * throughput_samples_per_s) for t in times]
    )
    return times, values


def time_to_metric(
    model_key: str,
    throughput_samples_per_s: float,
    target: float,
    schedule=None,
    base_batch: int = 32,
    throughput_for_batch=None,
) -> float:
    """Wall-clock seconds until the curve reaches ``target``.

    With no ``schedule`` (or a fixed one) this is the legacy bisection —
    bit-identical to every pre-schedule caller.  With an adaptive
    schedule (a :class:`~repro.schedule.spec.BatchSchedule` or its spec
    text) the time is integrated segment-by-segment in closed form:
    ``base_batch`` seeds the schedule and ``throughput_for_batch``
    (batch -> samples/s, defaulting to the constant
    ``throughput_samples_per_s``) prices each segment, so larger batches
    can be credited with their real hardware speedup.

    Raises:
        ValueError: if the target exceeds the curve's asymptote.
    """
    if schedule is not None:
        from repro.schedule.integrator import integrate_schedule
        from repro.schedule.spec import parse_schedule_spec

        if isinstance(schedule, str):
            schedule = parse_schedule_spec(schedule)
        if schedule is not None and not schedule.is_fixed:
            integration = integrate_schedule(
                model_key, schedule, base_batch, target=target
            )
            if throughput_for_batch is None:
                if throughput_samples_per_s <= 0:
                    raise ValueError("throughput must be positive")
                throughput_for_batch = lambda _batch: throughput_samples_per_s
            return integration.time_with(throughput_for_batch)
    model = FIG2_MODELS[model_key]
    lo, hi = model.initial, model.final
    if not (min(lo, hi) <= target <= max(lo, hi)):
        raise ValueError(
            f"target {target} outside achievable range [{lo}, {hi}] "
            f"for {model_key}"
        )
    low, high = 0.0, 1.0
    while model.value_at(high * throughput_samples_per_s) < target:
        high *= 2.0
        if high > 1e12:
            raise ValueError(f"target {target} unreachable for {model_key}")
    for _ in range(200):
        mid = 0.5 * (low + high)
        if model.value_at(mid * throughput_samples_per_s) < target:
            low = mid
        else:
            high = mid
    return high
