"""Simulated training execution: sessions, iterations, convergence curves."""

from repro.training.session import IterationProfile, TrainingSession
from repro.training.hyperparams import Hyperparameters
from repro.training.convergence import ConvergenceModel, training_curve

__all__ = [
    "TrainingSession",
    "IterationProfile",
    "Hyperparameters",
    "ConvergenceModel",
    "training_curve",
]
