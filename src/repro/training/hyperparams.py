"""Training hyper-parameters.

Section 3.4.1 of the paper stresses that implementations of the same model
on different frameworks must be made comparable: same hyper-parameters, same
network, same training-algorithm properties.  :class:`Hyperparameters` is
the single record both the simulator and the real-training substrate use,
and :func:`assert_comparable` is the guard the suite applies before any
cross-framework comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Hyperparameters:
    """Model-training hyper-parameters shared across implementations."""

    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 1e-4
    dropout_rate: float = 0.0
    optimizer: str = "sgd"  # "sgd" | "adam"
    lr_schedule: str = "step"  # "step" | "constant" | "inverse_sqrt"

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.weight_decay < 0:
            raise ValueError("weight decay cannot be negative")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")

    def with_learning_rate(self, learning_rate: float) -> "Hyperparameters":
        """Copy with a different learning rate (linear-scaling rule for
        data-parallel training, Goyal et al. 2017)."""
        return replace(self, learning_rate=learning_rate)


#: Per-model reference hyper-parameters (used by the convergence models and
#: by assert_comparable).
MODEL_DEFAULTS = {
    "resnet-50": Hyperparameters(learning_rate=0.1, momentum=0.9, weight_decay=1e-4),
    "inception-v3": Hyperparameters(learning_rate=0.045, momentum=0.9, weight_decay=4e-5),
    "nmt": Hyperparameters(
        learning_rate=1.0, momentum=0.0, weight_decay=0.0, dropout_rate=0.2
    ),
    "sockeye": Hyperparameters(
        learning_rate=1.0, momentum=0.0, weight_decay=0.0, dropout_rate=0.2
    ),
    "transformer": Hyperparameters(
        learning_rate=0.2,
        momentum=0.0,
        weight_decay=0.0,
        dropout_rate=0.1,
        optimizer="adam",
        lr_schedule="inverse_sqrt",
    ),
    "faster-rcnn": Hyperparameters(learning_rate=0.001, momentum=0.9, weight_decay=5e-4),
    "deep-speech-2": Hyperparameters(learning_rate=0.01, momentum=0.9, weight_decay=0.0),
    "wgan": Hyperparameters(
        learning_rate=1e-4, momentum=0.0, weight_decay=0.0, optimizer="adam"
    ),
    "a3c": Hyperparameters(learning_rate=7e-4, momentum=0.0, weight_decay=0.0),
}


class IncomparableImplementationsError(ValueError):
    """Raised when two implementations of the same model diverge in the
    hyper-parameters that must match for a fair comparison."""


def assert_comparable(model_key: str, *hyperparameter_sets) -> None:
    """Check that all given hyper-parameter records agree with each other
    (and exist); the Section 3.4.1 'make implementations comparable' rule.

    Raises:
        IncomparableImplementationsError: on any mismatch.
    """
    if not hyperparameter_sets:
        raise ValueError("need at least one hyper-parameter set")
    reference = hyperparameter_sets[0]
    for candidate in hyperparameter_sets[1:]:
        if candidate != reference:
            raise IncomparableImplementationsError(
                f"{model_key}: implementations are not comparable: "
                f"{candidate} != {reference}"
            )


def defaults_for(model_key: str) -> Hyperparameters:
    """Reference hyper-parameters for a registry model."""
    if model_key not in MODEL_DEFAULTS:
        raise KeyError(f"no default hyper-parameters for {model_key!r}")
    return MODEL_DEFAULTS[model_key]
