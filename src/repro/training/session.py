"""The simulated training session: executes one model iteration on one GPU
under one framework and produces every metric the paper's toolchain reports.

Execution model
===============

The CPU issues kernels one after another, each issue costing the
framework's ``dispatch_cost_s``; the GPU executes them in stream order.  A
kernel starts when both (a) the GPU is free and (b) the CPU has issued it:

    cpu_ready += dispatch_cost
    start      = max(gpu_free, cpu_ready)
    gpu_free   = start + kernel_duration

When kernels are long (big convolutions) the GPU never waits and compute
utilization approaches 100%; when they are tiny and numerous (per-timestep
RNN kernels, small batches) the dispatch+launch path dominates and the GPU
idles between kernels — the paper's Observations 4 and 5 fall out of this
loop directly.

On top of the kernel timeline the session accounts the host-side input
pipeline (decode/augment, partially overlapped), framework frontend work,
model-specific host stages (Faster R-CNN proposals), and environment
simulation (A3C's emulator), then derives the paper's Eq. 1-3 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.pipeline import DataPipelineModel
from repro.data.registry import get_dataset
from repro.frameworks.base import Framework, MomentumAllocation
from repro.frameworks.registry import get_framework
from repro.graph.layer import LayerGraph
from repro.hardware.devices import CPUSpec, GPUSpec, QUADRO_P4000, XEON_E5_2680
from repro.hardware.memory import AllocationTag, GPUMemoryAllocator
from repro.hardware.roofline import RooflineModel
import repro.kernels.misc as misc
from repro.models.registry import ModelSpec, get_model
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span

#: Live activation-gradient working set, as a fraction of the stashed
#: forward feature maps (gradient maps are produced and consumed during the
#: backward pass; frameworks keep a rolling subset alive).
GRADIENT_MAP_FACTOR = 0.10
#: Host-side staging buffers (double-buffered input batches).
_INPUT_STAGING_BUFFERS = 2

_RECURRENT_KINDS = ("lstm", "gru", "rnn")


@dataclass
class IterationProfile:
    """Everything measured about one (stable-phase) training iteration."""

    model: str
    framework: str
    device: str
    batch_size: int
    iteration_time_s: float
    gpu_busy_time_s: float
    gpu_flops: float
    effective_samples: float
    cpu_core_seconds: float
    cpu_core_count: int
    peak_fp32_flops: float
    kernel_timings: list = field(default_factory=list)
    memory: object = None

    @property
    def throughput(self) -> float:
        """Samples processed per second (paper Section 3.4.3)."""
        return self.effective_samples / self.iteration_time_s

    @property
    def gpu_utilization(self) -> float:
        """Fraction of wall time the GPU is busy (paper Eq. 1)."""
        return min(1.0, self.gpu_busy_time_s / self.iteration_time_s)

    @property
    def fp32_utilization(self) -> float:
        """Achieved FLOP/s over peak while the GPU is active (paper Eq. 2)."""
        if self.gpu_busy_time_s <= 0:
            return 0.0
        return self.gpu_flops / (self.peak_fp32_flops * self.gpu_busy_time_s)

    @property
    def cpu_utilization(self) -> float:
        """Mean utilization across all host cores (paper Eq. 3)."""
        return min(
            1.0,
            self.cpu_core_seconds / (self.cpu_core_count * self.iteration_time_s),
        )


class TrainingSession:
    """Binds a model, a framework personality and a device, and simulates
    stable-phase training iterations."""

    def __init__(
        self,
        model,
        framework="tensorflow",
        gpu: GPUSpec = QUADRO_P4000,
        cpu: CPUSpec = XEON_E5_2680,
        check_memory: bool = True,
    ):
        self.spec: ModelSpec = get_model(model) if isinstance(model, str) else model
        self.framework: Framework = get_framework(framework)
        if not self.spec.supports(self.framework.key):
            raise ValueError(
                f"the paper has no {self.framework.name} implementation of "
                f"{self.spec.display_name} (available: {self.spec.frameworks})"
            )
        self.gpu = gpu
        self.cpu = cpu
        self.check_memory = check_memory
        self._roofline = RooflineModel(gpu)
        self._dataset = get_dataset(self.spec.dataset)
        self._pipeline = DataPipelineModel(self._dataset)

    # ------------------------------------------------------------------
    # kernel stream
    # ------------------------------------------------------------------

    def _iteration_kernels(self, graph: LayerGraph) -> list:
        """The full kernel stream of one iteration: input copy, forward,
        loss, backward, and one optimizer-update kernel per weighted layer
        (frameworks launch per-tensor updates)."""
        kernels = [misc.memcpy_h2d(graph.input_bytes)]
        kernels.extend(graph.iteration_kernels())
        for layer in graph.layers:
            if layer.weight_elements > 0:
                kernels.append(misc.sgd_update(layer.weight_elements, momentum=True))
        return self.framework.specialize_kernels(kernels)

    def _execute_timeline(self, timings) -> tuple:
        """Run the CPU-dispatch / GPU-execute timeline.

        Returns ``(makespan_s, gpu_busy_s, dispatch_cpu_s)``.
        """
        dispatch = self.framework.dispatch_cost_s
        sync = self.framework.sync_latency_s
        cpu_ready = self.framework.frontend_cost_s
        gpu_free = 0.0
        busy = 0.0
        sync_cpu = 0.0
        for timing in timings:
            cpu_ready += dispatch
            start = max(gpu_free, cpu_ready)
            gpu_free = start + timing.duration_s
            busy += timing.duration_s
            if timing.kernel.host_sync:
                # The framework waits for this result, then spends the sync
                # latency in control-flow code before issuing anything else.
                cpu_ready = gpu_free + sync
                sync_cpu += sync
        dispatch_cpu = (
            self.framework.frontend_cost_s + dispatch * len(timings) + sync_cpu
        )
        return max(gpu_free, cpu_ready), busy, dispatch_cpu

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def profile_memory(self, batch_size: int) -> object:
        """Build the graph and replay its allocations through the tagged
        allocator; returns a :class:`~repro.hardware.memory.MemorySnapshot`.

        Raises:
            OutOfMemoryError: if the footprint exceeds GPU capacity.
        """
        with trace_span(
            "session.profile_memory", model=self.spec.key, batch_size=batch_size
        ):
            graph = self.spec.build(batch_size)
            allocator = GPUMemoryAllocator(
                self.gpu.memory_bytes, pool_overhead=self.framework.pool_overhead
            )
            self._allocate(graph, allocator)
            snapshot = allocator.snapshot()
        self._record_memory_telemetry(snapshot)
        return snapshot

    def _allocate(self, graph: LayerGraph, allocator: GPUMemoryAllocator) -> None:
        """Replay one training setup + iteration's allocations."""
        fm_factor = (1.0 + GRADIENT_MAP_FACTOR) * graph.feature_map_overallocation
        # Static allocations, in framework order: weights, gradients, maps.
        for layer in graph.layers:
            if layer.weight_bytes:
                allocator.allocate(layer.weight_bytes, AllocationTag.WEIGHTS, layer.name)
                allocator.allocate(
                    layer.weight_bytes, AllocationTag.WEIGHT_GRADIENTS, layer.name
                )
            if layer.stash_bytes:
                allocator.allocate(
                    layer.stash_bytes * fm_factor,
                    AllocationTag.FEATURE_MAPS,
                    layer.name,
                )
            if layer.workspace_bytes:
                allocator.allocate(
                    layer.workspace_bytes * self.framework.workspace_factor,
                    AllocationTag.WORKSPACE,
                    layer.name,
                )
        if graph.input_bytes:
            allocator.allocate(
                graph.input_bytes * _INPUT_STAGING_BUFFERS,
                AllocationTag.FEATURE_MAPS,
                "input staging",
            )
        # Optimizer state: statically with the weights (TF/CNTK) or lazily
        # during the first iterations (MXNet -> the paper's "dynamic" class).
        momentum_bytes = graph.total_weight_bytes
        if self.framework.momentum_allocation is MomentumAllocation.DYNAMIC:
            allocator.allocate(momentum_bytes, AllocationTag.DYNAMIC, "momentum")
        else:
            allocator.allocate(momentum_bytes, AllocationTag.WEIGHTS, "momentum")

    # ------------------------------------------------------------------
    # telemetry (no-op unless repro.observability is enabled)
    # ------------------------------------------------------------------

    def _record_memory_telemetry(self, snapshot) -> None:
        """Publish the allocator's per-tag peaks as gauges."""
        metrics = get_metrics()
        if not metrics.enabled:
            return
        for tag in sorted(snapshot.peak_by_tag, key=lambda tag: tag.value):
            metrics.gauge("memory_peak_bytes", {"tag": tag.value}).set(
                snapshot.peak_by_tag[tag]
            )
        metrics.gauge("memory_peak_total_bytes").set(snapshot.peak_total)

    def _record_kernel_telemetry(self, span, timings) -> None:
        """Attach the kernel timeline to the open span and update the
        kernel-stream metrics.  Only called when telemetry is enabled, so
        the extra timeline replay never taxes the plain simulation path."""
        from repro.profiling.timeline import build_timeline

        timeline = build_timeline(timings, self.framework)
        if span.enabled:
            span.attach_timeline(timeline)
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter("kernels_issued_total").inc(len(timeline.events))
        metrics.counter("gpu_busy_seconds_total").inc(timeline.busy_s)
        queue_delay = metrics.histogram("kernel_queue_delay_seconds")
        for event in timeline.events:
            queue_delay.observe(event.queue_delay_s)
        for cause, seconds in sorted(timeline.idle_by_cause().items()):
            metrics.counter("gpu_idle_seconds_total", {"cause": cause}).inc(seconds)
        stalls = sum(1 for gap in timeline.gaps if gap.cause == "dispatch")
        if stalls:
            metrics.counter("dispatch_stalls_total").inc(stalls)

    # ------------------------------------------------------------------
    # the headline entry point
    # ------------------------------------------------------------------

    def run_iteration(self, batch_size: int | None = None) -> IterationProfile:
        """Simulate one stable-phase training iteration.

        Raises:
            OutOfMemoryError: if ``check_memory`` and the model does not fit.
        """
        batch = batch_size if batch_size is not None else self.spec.reference_batch
        with trace_span(
            "session.run_iteration",
            model=self.spec.key,
            framework=self.framework.key,
            device=self.gpu.name,
            batch_size=batch,
        ):
            graph = self.spec.build(batch)
            memory = None
            if self.check_memory:
                allocator = GPUMemoryAllocator(
                    self.gpu.memory_bytes, pool_overhead=self.framework.pool_overhead
                )
                self._allocate(graph, allocator)
                memory = allocator.snapshot()
                self._record_memory_telemetry(memory)
            return self.simulate_graph(
                graph, memory=memory, display_name=self.spec.display_name
            )

    def simulate_graph(
        self,
        graph: LayerGraph,
        memory=None,
        display_name: str | None = None,
    ) -> IterationProfile:
        """Run an arbitrary (possibly transformed) layer graph through this
        session's framework/device timeline — the hook the optimization
        what-ifs (:mod:`repro.optimizations`) use to evaluate graph
        rewrites.  Host-side costs are accounted as for the session's model.
        """
        batch = graph.batch_size
        span = trace_span(
            "session.simulate_graph", model=graph.model_name, batch_size=batch
        )
        with span:
            kernels = self._iteration_kernels(graph)
            timings = self._roofline.time_kernels(kernels)
            makespan, busy, dispatch_cpu = self._execute_timeline(timings)
            if span.enabled or get_metrics().enabled:
                self._record_kernel_telemetry(span, timings)

            pipeline = self._pipeline.cost(
                max(1, int(batch * self.spec.pipeline_cost_scale)), self.framework
            )
            host_core_seconds = self.spec.host_cpu_cost(self.framework.key)
            host_exposed = host_core_seconds * (1.0 - self.spec.host_cpu_overlap)
            env_core_seconds = self.spec.env_cpu_core_seconds_per_sample * batch
            env_wall = env_core_seconds / self.spec.env_cpu_threads

            iteration_time = (
                makespan + pipeline.exposed_seconds + host_exposed + env_wall
            )
            cpu_core_seconds = (
                dispatch_cpu
                + pipeline.cpu_core_seconds
                + host_core_seconds
                + env_core_seconds
            )
            span.set_attributes(
                kernels_issued=len(timings),
                gpu_busy_s=busy,
                iteration_time_s=iteration_time,
            )
        return IterationProfile(
            model=display_name if display_name is not None else graph.model_name,
            framework=self.framework.name,
            device=self.gpu.name,
            batch_size=batch,
            iteration_time_s=iteration_time,
            gpu_busy_time_s=busy,
            gpu_flops=sum(t.kernel.flops for t in timings),
            effective_samples=graph.effective_samples,
            cpu_core_seconds=cpu_core_seconds,
            cpu_core_count=self.cpu.core_count,
            peak_fp32_flops=self.gpu.peak_fp32_flops,
            kernel_timings=timings,
            memory=memory,
        )

    def max_batch_size(self, candidates=None) -> int:
        """Largest sweep batch size that fits in GPU memory."""
        from repro.hardware.memory import OutOfMemoryError

        sizes = candidates if candidates is not None else self.spec.batch_sizes
        best = 0
        for batch in sorted(sizes):
            try:
                self.profile_memory(batch)
            except OutOfMemoryError:
                break
            best = batch
        return best
