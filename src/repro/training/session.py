"""The simulated training session: executes one model iteration on one GPU
under one framework and produces every metric the paper's toolchain reports.

Execution model
===============

Sessions follow a compile-then-execute split.  ``compile`` lowers the
model's layer graph once into a :class:`~repro.plan.compiled.CompiledPlan`
— kernel stream, roofline timings, the resolved CPU-dispatch/GPU-execute
timeline, and the allocation trace — memoized per batch size in the
session's :class:`~repro.plan.cache.PlanCache`.  ``execute_plan`` then
derives the iteration profile from a plan: it layers the host-side input
pipeline (decode/augment, partially overlapped), framework frontend work,
model-specific host stages (Faster R-CNN proposals), and environment
simulation (A3C's emulator) on top of the plan's kernel makespan, and
reports the paper's Eq. 1-3 metrics.

The dispatch/execute loop itself lives in :mod:`repro.plan.executor`: the
CPU issues kernels one after another, each issue costing the framework's
``dispatch_cost_s``, and the GPU executes them in stream order.  When
kernels are long (big convolutions) the GPU never waits and compute
utilization approaches 100%; when they are tiny and numerous (per-timestep
RNN kernels, small batches) the dispatch+launch path dominates and the GPU
idles between kernels — the paper's Observations 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.pipeline import DataPipelineModel
from repro.data.registry import get_dataset
from repro.frameworks.base import Framework
from repro.frameworks.registry import get_framework
from repro.graph.layer import LayerGraph
from repro.hardware.devices import CPUSpec, GPUSpec, QUADRO_P4000, XEON_E5_2680
from repro.hardware.roofline import RooflineModel
from repro.models.registry import ModelSpec, get_model
from repro.observability.metrics import get_metrics
from repro.observability.tracer import trace_span
from repro.plan import compiler as plan_compiler
from repro.plan.cache import PlanCache
from repro.plan.compiled import CompiledPlan
from repro.plan.symbolic import SymbolicPlanSet, TraceEscape, shared_plan_set

#: Live activation-gradient working set, as a fraction of the stashed
#: forward feature maps (gradient maps are produced and consumed during the
#: backward pass; frameworks keep a rolling subset alive).  Read lazily by
#: the plan compiler's allocation-trace recorder so ablations can patch it.
GRADIENT_MAP_FACTOR = 0.10
#: Host-side staging buffers (double-buffered input batches).
_INPUT_STAGING_BUFFERS = 2

_RECURRENT_KINDS = ("lstm", "gru", "rnn")


@dataclass
class IterationProfile:
    """Everything measured about one (stable-phase) training iteration."""

    model: str
    framework: str
    device: str
    batch_size: int
    iteration_time_s: float
    gpu_busy_time_s: float
    gpu_flops: float
    effective_samples: float
    cpu_core_seconds: float
    cpu_core_count: int
    peak_fp32_flops: float
    kernel_timings: list = field(default_factory=list)
    memory: object = None

    @property
    def throughput(self) -> float:
        """Samples processed per second (paper Section 3.4.3)."""
        return self.effective_samples / self.iteration_time_s

    @property
    def gpu_utilization(self) -> float:
        """Fraction of wall time the GPU is busy (paper Eq. 1)."""
        return min(1.0, self.gpu_busy_time_s / self.iteration_time_s)

    @property
    def fp32_utilization(self) -> float:
        """Achieved FLOP/s over peak while the GPU is active (paper Eq. 2).

        Clamped to [0, 1] like the other utilizations: launch latency and
        occupancy ramps keep real kernels below peak, but a degenerate
        timing input must not report more than 100%.
        """
        if self.gpu_busy_time_s <= 0:
            return 0.0
        return min(
            1.0, self.gpu_flops / (self.peak_fp32_flops * self.gpu_busy_time_s)
        )

    @property
    def cpu_utilization(self) -> float:
        """Mean utilization across all host cores (paper Eq. 3)."""
        return min(
            1.0,
            self.cpu_core_seconds / (self.cpu_core_count * self.iteration_time_s),
        )


class TrainingSession:
    """Binds a model, a framework personality and a device; compiles the
    model into cached execution plans and simulates stable-phase training
    iterations over them."""

    def __init__(
        self,
        model,
        framework="tensorflow",
        gpu: GPUSpec = QUADRO_P4000,
        cpu: CPUSpec = XEON_E5_2680,
        check_memory: bool = True,
        symbolic: bool = True,
    ):
        self.spec: ModelSpec = get_model(model) if isinstance(model, str) else model
        self.framework: Framework = get_framework(framework)
        if not self.spec.supports(self.framework.key):
            raise ValueError(
                f"the paper has no {self.framework.name} implementation of "
                f"{self.spec.display_name} (available: {self.spec.frameworks})"
            )
        self.gpu = gpu
        self.cpu = cpu
        self.check_memory = check_memory
        self.symbolic = symbolic
        self._roofline = RooflineModel(gpu)
        self._dataset = get_dataset(self.spec.dataset)
        self._pipeline = DataPipelineModel(self._dataset)
        self._plans = PlanCache()
        self._symbolic_sets: dict = {}
        self._symbolic_broken = False

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    @property
    def plan_cache(self) -> PlanCache:
        """This session's plan memo (hit/miss stats for guards/tools)."""
        return self._plans

    def compile(self, batch_size: int | None = None) -> CompiledPlan:
        """The session's compiled plan for one batch size, built at most
        once per distinct batch (graph build + kernel lowering + roofline
        timing + dispatch/execute replay + allocation trace).

        The memory-model constants are compile inputs (the allocation
        trace bakes them in), so they join the cache key — ablations that
        patch them get fresh plans instead of stale traces.

        With ``symbolic`` (the default) the plan comes from the session's
        :class:`~repro.plan.symbolic.SymbolicPlanSet`: one traced compile
        per guard region, bit-identical cheap specializations for every
        batch inside it.  Models the tracer cannot keep exact fall back to
        the concrete compiler transparently."""
        batch = batch_size if batch_size is not None else self.spec.reference_batch
        return self._plans.get(
            (int(batch), GRADIENT_MAP_FACTOR, _INPUT_STAGING_BUFFERS),
            lambda: self._build_plan(batch),
        )

    def compile_transformed(self, batch_size: int | None, pipeline) -> CompiledPlan:
        """The session's compiled plan for one batch size under a
        :class:`~repro.plan.pipeline.TransformPipeline`.

        Stages apply incrementally in the pipeline's canonical order, and
        every *prefix* of the pipeline memoizes its plan in the session's
        :class:`~repro.plan.cache.PlanCache` — so candidate pipelines that
        share a prefix (the autotuner enumerates many) share the expensive
        graph-rewrite recompiles, and the symbolic trace is reused: trace
        once, specialize per batch, then rewrite.  Bit-identical to
        ``pipeline.apply(self.compile(batch))`` (same stage sequence), and
        the pipeline's composition-wide contracts are enforced on the
        final plan either way."""
        base = self.compile(batch_size)
        if not pipeline:
            return base
        batch = base.graph.batch_size
        plan = base
        prefix_tokens = []
        for stage in pipeline:
            prefix_tokens.append(stage.token)
            prior = plan
            plan = self._plans.get(
                (
                    int(batch),
                    GRADIENT_MAP_FACTOR,
                    _INPUT_STAGING_BUFFERS,
                    "+".join(prefix_tokens),
                ),
                lambda: stage.transform.apply(prior),
            )
        pipeline.check_composition(base, plan)
        return plan

    def _build_plan(self, batch) -> CompiledPlan:
        """Plan-cache factory: symbolic specialize when possible, the
        concrete compiler otherwise (and for models that escape the
        tracer)."""
        if self.symbolic and not self._symbolic_broken:
            try:
                return self._symbolic_set().specialize(int(batch))
            except TraceEscape:
                plan = self._concrete_plan(batch)
                # The concrete pipeline handled what the tracer could not:
                # this model genuinely escapes (an error path would have
                # raised above), so stop re-trying the symbolic path.
                self._symbolic_broken = True
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.counter(
                        "plan_symbolic_fallbacks_total", {"model": self.spec.key}
                    ).inc()
                return plan
        return self._concrete_plan(batch)

    def _concrete_plan(self, batch) -> CompiledPlan:
        return plan_compiler.compile_graph(
            self.spec.build(batch),
            self.framework,
            self.gpu,
            roofline=self._roofline,
        )

    def _symbolic_set(self) -> SymbolicPlanSet:
        """The session's symbolic plans, keyed by the same memory-model
        constants as the plan cache (they are baked into traced
        allocation expressions too)."""
        key = (GRADIENT_MAP_FACTOR, _INPUT_STAGING_BUFFERS)
        sset = self._symbolic_sets.get(key)
        if sset is None:
            sset = shared_plan_set(
                self.spec,
                self.framework,
                self.gpu,
                roofline=self._roofline,
                constants=key,
            )
            self._symbolic_sets[key] = sset
        return sset

    def _iteration_kernels(self, graph: LayerGraph) -> list:
        """The specialized kernel stream of one iteration (delegates to
        the plan compiler's lowering)."""
        return plan_compiler.lower_kernels(graph, self.framework)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def profile_memory(self, batch_size: int) -> object:
        """Replay the compiled plan's allocation trace against this GPU's
        capacity; returns a :class:`~repro.hardware.memory.MemorySnapshot`.

        Raises:
            OutOfMemoryError: if the footprint exceeds GPU capacity.
        """
        with trace_span(
            "session.profile_memory", model=self.spec.key, batch_size=batch_size
        ):
            plan = self.compile(batch_size)
            snapshot = plan.check_memory(self.gpu.memory_bytes)
        self._record_memory_telemetry(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # telemetry (no-op unless repro.observability is enabled)
    # ------------------------------------------------------------------

    def _record_memory_telemetry(self, snapshot) -> None:
        """Publish the allocator's per-tag peaks as gauges."""
        metrics = get_metrics()
        if not metrics.enabled:
            return
        for tag in sorted(snapshot.peak_by_tag, key=lambda tag: tag.value):
            metrics.gauge("memory_peak_bytes", {"tag": tag.value}).set(
                snapshot.peak_by_tag[tag]
            )
        metrics.gauge("memory_peak_total_bytes").set(snapshot.peak_total)

    def _record_kernel_telemetry(self, span, timeline) -> None:
        """Attach the plan's kernel timeline to the open span and update
        the kernel-stream metrics.  Only called when telemetry is enabled,
        so the lookup never taxes the plain simulation path."""
        if span.enabled:
            span.attach_timeline(timeline)
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter("kernels_issued_total").inc(len(timeline.events))
        metrics.counter("gpu_busy_seconds_total").inc(timeline.busy_s)
        queue_delay = metrics.histogram("kernel_queue_delay_seconds")
        for event in timeline.events:
            queue_delay.observe(event.queue_delay_s)
        for cause, seconds in sorted(timeline.idle_by_cause().items()):
            metrics.counter("gpu_idle_seconds_total", {"cause": cause}).inc(seconds)
        stalls = sum(1 for gap in timeline.gaps if gap.cause == "dispatch")
        if stalls:
            metrics.counter("dispatch_stalls_total").inc(stalls)

    # ------------------------------------------------------------------
    # the headline entry points
    # ------------------------------------------------------------------

    def run_iteration(self, batch_size: int | None = None) -> IterationProfile:
        """Simulate one stable-phase training iteration.

        Raises:
            OutOfMemoryError: if ``check_memory`` and the model does not fit.
        """
        batch = batch_size if batch_size is not None else self.spec.reference_batch
        with trace_span(
            "session.run_iteration",
            model=self.spec.key,
            framework=self.framework.key,
            device=self.gpu.name,
            batch_size=batch,
        ):
            plan = self.compile(batch)
            memory = None
            if self.check_memory:
                memory = plan.check_memory(self.gpu.memory_bytes)
                self._record_memory_telemetry(memory)
            return self.execute_plan(
                plan, memory=memory, display_name=self.spec.display_name
            )

    def simulate_graph(
        self,
        graph: LayerGraph,
        memory=None,
        display_name: str | None = None,
    ) -> IterationProfile:
        """Compile and execute an arbitrary (possibly transformed) layer
        graph under this session's framework/device — the hook ad-hoc
        graph rewrites use.  Bypasses the plan cache: callers with a
        cacheable graph should go through :meth:`compile` +
        :meth:`execute_plan` instead."""
        plan = plan_compiler.compile_graph(
            graph, self.framework, self.gpu, roofline=self._roofline
        )
        return self.execute_plan(plan, memory=memory, display_name=display_name)

    def execute_plan(
        self,
        plan: CompiledPlan,
        memory=None,
        display_name: str | None = None,
    ) -> IterationProfile:
        """Derive one iteration's profile from a compiled plan.

        The plan supplies the device-side quantities (makespan, busy time,
        dispatch CPU seconds, FLOPs); this method layers the session's
        host-side costs on top.  Host costs are accounted for the
        session's model regardless of the plan's graph.
        """
        graph = plan.graph
        batch = graph.batch_size
        span = trace_span(
            "session.simulate_graph", model=graph.model_name, batch_size=batch
        )
        with span:
            timings = plan.timings
            if span.enabled or get_metrics().enabled:
                self._record_kernel_telemetry(span, plan.timeline)

            pipeline = self._pipeline.cost(
                max(1, int(batch * self.spec.pipeline_cost_scale)), self.framework
            )
            host_core_seconds = self.spec.host_cpu_cost(self.framework.key)
            host_exposed = host_core_seconds * (1.0 - self.spec.host_cpu_overlap)
            env_core_seconds = self.spec.env_cpu_core_seconds_per_sample * batch
            env_wall = env_core_seconds / self.spec.env_cpu_threads

            iteration_time = (
                plan.makespan_s + pipeline.exposed_seconds + host_exposed + env_wall
            )
            cpu_core_seconds = (
                plan.dispatch_cpu_s
                + pipeline.cpu_core_seconds
                + host_core_seconds
                + env_core_seconds
            )
            span.set_attributes(
                kernels_issued=len(timings),
                gpu_busy_s=plan.gpu_busy_s,
                iteration_time_s=iteration_time,
            )
        return IterationProfile(
            model=display_name if display_name is not None else graph.model_name,
            framework=self.framework.name,
            device=self.gpu.name,
            batch_size=batch,
            iteration_time_s=iteration_time,
            gpu_busy_time_s=plan.gpu_busy_s,
            gpu_flops=plan.total_flops,
            effective_samples=graph.effective_samples,
            cpu_core_seconds=cpu_core_seconds,
            cpu_core_count=self.cpu.core_count,
            peak_fp32_flops=self.gpu.peak_fp32_flops,
            kernel_timings=timings,
            memory=memory,
        )

    def max_batch_size(self, candidates=None, *, search: bool = False) -> int:
        """Largest sweep batch size that fits in GPU memory.

        The default path is analytic: the traced allocation expressions of
        the session's symbolic plan are evaluated per candidate and
        replayed through the memory allocator — no plan compiles at all.
        ``search=True`` forces the old probe loop (compile each candidate,
        catch OOM), kept as the differential oracle the conformance
        invariant checks the analytic answer against."""
        sizes = candidates if candidates is not None else self.spec.batch_sizes
        if not search and self.symbolic and not self._symbolic_broken:
            try:
                return self._symbolic_set().max_batch_size(
                    sizes, self.gpu.memory_bytes
                )
            except TraceEscape:
                pass  # fall through to the searched loop
        from repro.hardware.memory import OutOfMemoryError

        best = 0
        for batch in sorted(sizes):
            try:
                self.profile_memory(batch)
            except OutOfMemoryError:
                break
            best = batch
        return best
