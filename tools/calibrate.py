"""Calibration dashboard: prints every paper-relevant quantity so the
simulator's constants can be tuned against the paper's shapes.

Run:  python tools/calibrate.py
"""

from repro.hardware.devices import TITAN_XP
from repro.hardware.memory import OutOfMemoryError
from repro.models.registry import model_catalog
from repro.training.session import TrainingSession

HEADLINE = [
    ("resnet-50", "mxnet", 32), ("resnet-50", "tensorflow", 32), ("resnet-50", "cntk", 32),
    ("inception-v3", "mxnet", 32), ("inception-v3", "tensorflow", 32), ("inception-v3", "cntk", 32),
    ("nmt", "tensorflow", 128), ("sockeye", "mxnet", 64),
    ("transformer", "tensorflow", 2048), ("transformer", "tensorflow", 4096),
    ("wgan", "tensorflow", 64), ("deep-speech-2", "mxnet", 4),
    ("a3c", "mxnet", 128), ("faster-rcnn", "tensorflow", 1), ("faster-rcnn", "mxnet", 1),
]

PAPER = {  # (throughput, note) rough paper values for eyeballing
    ("resnet-50", "mxnet", 32): 89, ("resnet-50", "tensorflow", 32): 71,
    ("inception-v3", "mxnet", 32): 61, ("inception-v3", "tensorflow", 32): 42,
    ("nmt", "tensorflow", 128): 365, ("sockeye", "mxnet", 64): 229,
    ("transformer", "tensorflow", 2048): 3500, ("transformer", "tensorflow", 4096): 4500,
    ("wgan", "tensorflow", 64): 100, ("deep-speech-2", "mxnet", 4): 3.5,
    ("a3c", "mxnet", 128): 160, ("faster-rcnn", "tensorflow", 1): 2.3,
    ("faster-rcnn", "mxnet", 1): 2.3,
}


def headline() -> None:
    print("== headline table (paper target in parens) ==")
    for model, fw, b in HEADLINE:
        try:
            profile = TrainingSession(model, fw).run_iteration(b)
        except OutOfMemoryError as exc:
            print(f"{model:15s} {fw:11s} b={b:5d} OOM: {exc}")
            continue
        target = PAPER.get((model, fw, b), "?")
        fm = profile.memory.feature_map_fraction * 100
        print(
            f"{model:15s} {fw:11s} b={b:5d} thr={profile.throughput:9.1f} ({target}) "
            f"gpu={profile.gpu_utilization * 100:5.1f}% fp32={profile.fp32_utilization * 100:5.1f}% "
            f"cpu={profile.cpu_utilization * 100:5.2f}% fm%={fm:5.1f} "
            f"mem={profile.memory.peak_total / 2**30:5.2f}GB"
        )


def sweeps() -> None:
    print("\n== batch sweeps (throughput / gpu% / fp32%) ==")
    for key, spec in model_catalog().items():
        for fw in spec.frameworks:
            cells = []
            for b in spec.batch_sizes:
                try:
                    p = TrainingSession(key, fw).run_iteration(b)
                    cells.append(
                        f"{b}:{p.throughput:.0f}/{p.gpu_utilization * 100:.0f}/{p.fp32_utilization * 100:.0f}"
                    )
                except OutOfMemoryError:
                    cells.append(f"{b}:OOM")
            print(f"{key:15s} {fw:11s} " + "  ".join(cells))


def max_batches() -> None:
    print("\n== max batch that fits 8GB (sweep + extended) ==")
    extended = {
        "nmt": (4, 8, 16, 32, 64, 128, 256), "sockeye": (4, 8, 16, 32, 64, 128, 256),
        "resnet-50": (4, 8, 16, 32, 64, 128), "inception-v3": (4, 8, 16, 32, 64, 128),
        "deep-speech-2": (1, 2, 3, 4, 5, 6, 8, 12),
    }
    for key, spec in model_catalog().items():
        for fw in spec.frameworks:
            session = TrainingSession(key, fw)
            candidates = extended.get(key, spec.batch_sizes)
            print(f"{key:15s} {fw:11s} max={session.max_batch_size(candidates)}")


def titan() -> None:
    print("\n== Titan Xp vs P4000 (normalized throughput; paper fig 8) ==")
    for model, fw, b in [("resnet-50", "mxnet", 32), ("inception-v3", "mxnet", 32),
                         ("sockeye", "mxnet", 64), ("resnet-50", "tensorflow", 32),
                         ("inception-v3", "tensorflow", 32), ("nmt", "tensorflow", 128)]:
        p4 = TrainingSession(model, fw).run_iteration(b)
        xp = TrainingSession(model, fw, gpu=TITAN_XP).run_iteration(b)
        print(
            f"{model:15s} {fw:11s} xp/p4={xp.throughput / p4.throughput:4.2f} "
            f"gpu {p4.gpu_utilization * 100:.0f}->{xp.gpu_utilization * 100:.0f} "
            f"fp32 {p4.fp32_utilization * 100:.0f}->{xp.fp32_utilization * 100:.0f}"
        )


if __name__ == "__main__":
    headline()
    sweeps()
    max_batches()
    titan()
