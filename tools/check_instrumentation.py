"""Instrumentation lint: fail if a core entry point loses its telemetry.

The observability runtime only works if the instrumentation points stay
instrumented; an innocent refactor of ``TrainingSession.run_iteration``
that drops its ``trace_span`` call would silently produce empty traces.
This tool walks the source AST (no imports, no execution) and asserts that
every required entry point still contains a ``trace_span(...)`` call.

Run:  python tools/check_instrumentation.py
Exit status 0 when every entry point is instrumented, 1 otherwise.
"""

from __future__ import annotations

import ast
import os
import sys

#: (module path relative to the source root, class name or None, function
#: name) -> every listed function body must contain a trace_span(...) call.
REQUIRED = [
    ("repro/training/session.py", "TrainingSession", "run_iteration"),
    ("repro/training/session.py", "TrainingSession", "execute_plan"),
    ("repro/training/session.py", "TrainingSession", "profile_memory"),
    ("repro/plan/compiler.py", None, "compile_graph"),
    ("repro/plan/symbolic.py", None, "compile_symbolic"),
    ("repro/plan/symbolic.py", "SymbolicPlanSet", "specialize"),
    ("repro/plan/cache.py", "PlanCache", "get"),
    ("repro/plan/transform.py", "PlanTransform", "apply"),
    ("repro/core/analysis.py", "AnalysisPipeline", "run"),
    ("repro/distributed/allreduce.py", "RingAllReduceExchange", "cost"),
    ("repro/distributed/parameter_server.py", "ParameterServerExchange", "cost"),
    ("repro/distributed/data_parallel.py", "DataParallelTrainer", "run_iteration"),
    ("repro/distributed/data_parallel.py", "DataParallelTrainer", "run_step"),
    ("repro/data/pipeline.py", "DataPipelineModel", "cost"),
    ("repro/engine/executor.py", "SweepEngine", "run_grid"),
    ("repro/engine/executor.py", "SweepEngine", "_compute_inline"),
    ("repro/faults/trainer.py", "FaultTolerantTrainer", "_simulate"),
    ("repro/faults/trainer.py", "FaultTolerantTrainer", "_recover_outage"),
    ("repro/faults/trainer.py", "FaultTolerantTrainer", "_recover_crash"),
    ("repro/faults/trainer.py", "FaultTolerantTrainer", "_recover_timeout"),
    ("repro/conformance/runner.py", "ConformanceRunner", "run"),
    ("repro/conformance/generator.py", None, "shrink"),
    ("repro/bench/runner.py", "InterleavedRunner", "run"),
    ("repro/bench/suites.py", None, "run_suite"),
    ("repro/plan/pipeline.py", "TransformPipeline", "apply"),
    ("repro/tune/search.py", "Autotuner", "rank"),
    ("repro/tune/search.py", "Autotuner", "_score"),
    ("repro/engine/executor.py", "SweepEngine", "iter_grid"),
    ("repro/serve/service.py", "BenchmarkServer", "_run_job"),
    ("repro/serve/loadgen.py", None, "run_loadgen"),
    ("repro/schedule/integrator.py", None, "integrate_schedule"),
    ("repro/schedule/accuracy.py", None, "scheduled_time_to_accuracy"),
]

#: Entry points that must additionally record metrics: the function body
#: must contain a counter/gauge/histogram call (or reach the registry via
#: get_metrics).  Spans tell you *that* a bench ran; the counters are what
#: exporters scrape, so losing them silently blinds dashboards.
REQUIRED_METRICS = [
    ("repro/bench/runner.py", "InterleavedRunner", "run"),
    ("repro/plan/symbolic.py", None, "compile_symbolic"),
    ("repro/plan/symbolic.py", "SymbolicPlanSet", "specialize"),
    ("repro/tune/search.py", "Autotuner", "rank"),
    ("repro/serve/shardcache.py", "ShardedResultCache", "load"),
    ("repro/serve/shardcache.py", "ShardedResultCache", "store"),
    ("repro/serve/loadgen.py", None, "run_loadgen"),
    ("repro/schedule/integrator.py", None, "integrate_schedule"),
    ("repro/schedule/accuracy.py", None, "scheduled_time_to_accuracy"),
]

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _calls_trace_span(function: ast.FunctionDef) -> bool:
    """True if the function body contains a ``trace_span(...)`` call
    (either the module-level helper or a ``tracer.span(...)`` method)."""
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id == "trace_span":
            return True
        if isinstance(callee, ast.Attribute) and callee.attr in ("span", "trace_span"):
            return True
    return False


def _records_metrics(function: ast.FunctionDef) -> bool:
    """True if the function body touches the metrics registry: a
    ``get_metrics()`` call or a ``.counter/.gauge/.histogram`` method."""
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id == "get_metrics":
            return True
        if isinstance(callee, ast.Attribute) and callee.attr in (
            "counter",
            "gauge",
            "histogram",
            "get_metrics",
        ):
            return True
    return False


def _find_function(tree: ast.Module, class_name: str | None, function_name: str):
    scopes = [tree]
    if class_name is not None:
        scopes = [
            node
            for node in tree.body
            if isinstance(node, ast.ClassDef) and node.name == class_name
        ]
    for scope in scopes:
        for node in scope.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == function_name
            ):
                return node
    return None


def check_instrumentation(source_root: str = _SRC) -> list:
    """Returns a list of human-readable problems (empty = all good)."""
    problems = []
    trees: dict = {}

    def resolve(relative, class_name, function_name):
        path = os.path.join(source_root, relative)
        where = f"{relative}::{class_name + '.' if class_name else ''}{function_name}"
        if path not in trees:
            try:
                with open(path) as handle:
                    trees[path] = ast.parse(handle.read(), filename=path)
            except (OSError, SyntaxError) as exc:
                trees[path] = exc
        tree = trees[path]
        if isinstance(tree, Exception):
            problems.append(f"{where}: cannot parse module ({tree})")
            return where, None
        function = _find_function(tree, class_name, function_name)
        if function is None:
            problems.append(f"{where}: entry point not found")
        return where, function

    for relative, class_name, function_name in REQUIRED:
        where, function = resolve(relative, class_name, function_name)
        if function is not None and not _calls_trace_span(function):
            problems.append(f"{where}: no trace_span(...) call in body")
    for relative, class_name, function_name in REQUIRED_METRICS:
        where, function = resolve(relative, class_name, function_name)
        if function is not None and not _records_metrics(function):
            problems.append(f"{where}: no metrics (counter/gauge/histogram) call in body")
    return problems


def main() -> int:
    problems = check_instrumentation()
    if problems:
        print("instrumentation lint FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"instrumentation lint OK: {len(REQUIRED)} entry points instrumented, "
        f"{len(REQUIRED_METRICS)} recording metrics"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
